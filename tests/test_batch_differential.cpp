// Differential + edge-case harness for the batched data-plane pipeline.
//
// The batched router/gateway paths promise byte-identical verdicts, error
// codes, telemetry counters, and flight records to the scalar reference
// loops. These tests enforce that promise the hard way: twin universes
// (identical clocks, hooks, keys, and installs) consume the same seeded
// mixed packet stream — one through process(), one through
// process_batch() — and every observable is compared packet-for-packet.
// Also here: the token-bucket u64-overflow regression, SPSC ring and
// batch-ingest units, and the sharded-gateway routing/resize/runtime
// edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "colibri/common/clock.hpp"
#include "colibri/dataplane/batch.hpp"
#include "colibri/dataplane/gateway.hpp"
#include "colibri/dataplane/hvf.hpp"
#include "colibri/dataplane/router.hpp"
#include "colibri/dataplane/shard.hpp"
#include "colibri/dataplane/spscring.hpp"
#include "colibri/dataplane/tokenbucket.hpp"
#include "colibri/proto/codec.hpp"
#include "colibri/telemetry/flight_recorder.hpp"
#include "colibri/telemetry/metrics.hpp"

namespace colibri::dataplane {
namespace {

const AsId kSrcAs{1, 10};
const AsId kRouterAs{1, 20};
const AsId kEvilAs{1, 66};
const AsId kBannedAs{1, 99};

constexpr TimeNs kStart = 100 * kNsPerSec;
constexpr UnixSec kExp = 200;

drkey::Key128 key_of(std::uint8_t seed) {
  drkey::Key128 k;
  k.bytes.fill(seed);
  return k;
}

// Clock that advances a fixed step on every reading. Any difference in
// the number or order of clock samples between the scalar and batched
// paths shows up immediately as diverging timestamps, token-bucket
// refills, or expiry decisions.
class TickClock final : public Clock {
 public:
  TickClock(TimeNs start, TimeNs step) : now_(start), step_(step) {}
  TimeNs now_ns() const override {
    const TimeNs t = now_;
    now_ += step_;
    return t;
  }

 private:
  mutable TimeNs now_;
  TimeNs step_;
};

// --- token bucket: u64 overflow regression ------------------------------

TEST(TokenBucketRegression, LongIdleRefillSaturatesInsteadOfOverflowing) {
  // elapsed * rate_kbps * 125 exceeds 2^64 after ~41 s of idle at the
  // maximum rate; the wrapped product used to refill a near-random token
  // count. The refill must saturate at the burst cap.
  TokenBucket tb(/*rate_kbps=*/0xFFFF'FFFF, /*burst_bytes=*/1'000'000,
                 /*now=*/0);
  EXPECT_TRUE(tb.allow(1'000'000, 0));  // drain the full burst
  EXPECT_EQ(0u, tb.available_bytes());

  const TimeNs later = 2 * 3600 * kNsPerSec;  // two idle hours
  EXPECT_TRUE(tb.allow(1'000'000, later));
  EXPECT_EQ(0u, tb.available_bytes());  // exactly cap was refilled
}

TEST(TokenBucketRegression, RepeatedLongGapsNeverExceedBurstCap) {
  TokenBucket tb(0xFFFF'FFFF, 1500, 0);
  EXPECT_TRUE(tb.allow(1500, 0));
  for (int i = 1; i <= 50; ++i) {
    // Each gap is another overflowing product with a different wrap
    // residue; saturation must hold for all of them.
    const TimeNs now = static_cast<TimeNs>(i) * 3601 * kNsPerSec;
    EXPECT_TRUE(tb.allow(1, now)) << "gap " << i;
    EXPECT_EQ(1499u, tb.available_bytes()) << "gap " << i;
  }
}

// --- packet construction helpers ----------------------------------------

FastPacket make_eer(AsId src, ResId id, BwKbps bw, UnixSec exp, ResVer version,
                    std::uint8_t hop, std::uint32_t payload, std::uint32_t ts) {
  FastPacket p;
  p.type = proto::PacketType::kData;
  p.is_eer = true;
  p.num_hops = 3;
  p.current_hop = hop;
  p.resinfo = {src, id, bw, exp, version};
  p.eerinfo = {HostAddr::from_u64(0xAAA), HostAddr::from_u64(0xBBB)};
  p.payload_bytes = payload;
  p.ifaces[0] = {0, 1};
  p.ifaces[1] = {2, 3};
  p.ifaces[2] = {4, 0};
  p.timestamp = ts;
  return p;
}

// Computes the correct HVF for the packet's current hop under `key` —
// what the gateway of the source AS would have stamped.
void sign_hop(const crypto::Aes128& key, FastPacket& p) {
  const IfPair hop = p.ifaces[p.current_hop];
  const HopAuth sigma =
      compute_hopauth(key, p.resinfo, p.eerinfo, hop.in, hop.eg);
  p.hvfs[p.current_hop] = compute_data_hvf(sigma, p.timestamp, p.wire_size());
}

// Generates the harness's mixed stream: valid mid-path and last-hop EER
// data, SegR control (valid and corrupted), corrupted HVFs, expired
// reservations, replays of earlier packets, an overusing flow, a
// blocklisted source AS, and malformed headers.
class RouterStream {
 public:
  explicit RouterStream(std::uint32_t seed)
      : rng_(seed), key_cipher_(key_of(1).bytes.data()) {}

  FastPacket next() {
    gen_now_ += 1000;  // 1 us per packet: unique per-packet timestamps
    const std::uint32_t kind = rng_() % 100;
    if (kind < 35) return valid(1);
    if (kind < 45) return valid(2);  // last hop: kDeliver
    if (kind < 53) {
      FastPacket p = valid(1);
      p.hvfs[1][0] ^= 0x5A;
      return p;
    }
    if (kind < 60) return expired();
    if (kind < 67) return malformed(kind % 3);
    if (kind < 74) return seg(kind % 2 == 0);
    if (kind < 82 && !history_.empty()) {
      return history_[rng_() % history_.size()];  // replay
    }
    if (kind < 91) return evil();
    return banned();
  }

 private:
  std::uint32_t ts() const {
    return PacketTimestamp::encode(gen_now_, kExp);
  }

  FastPacket valid(std::uint8_t hop) {
    FastPacket p = make_eer(kSrcAs, 100 + rng_() % 8, 100'000, kExp, 1, hop,
                            rng_() % 1200, ts());
    sign_hop(key_cipher_, p);
    history_.push_back(p);
    return p;
  }

  FastPacket expired() {
    // Expiry short-circuits before the HVF, so no signing needed.
    return make_eer(kSrcAs, 100, 100'000, /*exp=*/1, 1, 1, 64, 0);
  }

  FastPacket malformed(std::uint32_t variant) {
    FastPacket p = make_eer(kSrcAs, 100, 100'000, kExp, 1, 1, 64, ts());
    if (variant == 0) {
      p.num_hops = 0;
    } else if (variant == 1) {
      p.current_hop = p.num_hops;
    } else {
      p.num_hops = kMaxHops + 1;
    }
    return p;
  }

  FastPacket seg(bool valid_token) {
    FastPacket p = make_eer(kSrcAs, 300, 100'000, kExp, 1, 1, 0, ts());
    p.type = proto::PacketType::kSegRenewal;
    p.is_eer = false;
    p.hvfs[1] = compute_seg_hvf(key_cipher_, p.resinfo, p.ifaces[1].in,
                                p.ifaces[1].eg);
    if (!valid_token) p.hvfs[1][2] ^= 0xFF;
    return p;
  }

  FastPacket evil() {
    // An 8 kbps reservation hammered with kilobyte packets: the OFD
    // flags it, confirms overuse, and the blocklist then drops the whole
    // AS — cross-packet state the batched path must apply in arrival
    // order.
    FastPacket p = make_eer(kEvilAs, 666, 8, kExp, 1, 1, 1000, ts());
    sign_hop(key_cipher_, p);
    return p;
  }

  FastPacket banned() {
    // Blocked before the HVF is ever checked; no signing needed.
    return make_eer(kBannedAs, 900, 100'000, kExp, 1, 1, 64, ts());
  }

  std::mt19937 rng_;
  crypto::Aes128 key_cipher_;
  TimeNs gen_now_ = kStart;
  std::vector<FastPacket> history_;
};

// One complete router environment: its own clock and hook state, so two
// universes share nothing but the packet stream.
struct RouterUniverse {
  explicit RouterUniverse(TimeNs clock_step)
      : clock(kStart, clock_step),
        blocklist(nullptr),
        dupsup(small_dupsup(), nullptr),
        ofd(OfdConfig{}, nullptr),
        router(kRouterAs, key_of(1), clock, nullptr) {
    router.attach_blocklist(&blocklist);
    router.attach_dupsup(&dupsup);
    router.attach_ofd(&ofd);
    blocklist.block(kBannedAs);
  }

  static DupSupConfig small_dupsup() {
    DupSupConfig cfg;
    cfg.bits_per_filter = 1 << 16;
    return cfg;
  }

  TickClock clock;
  Blocklist blocklist;
  DuplicateSuppression dupsup;
  OverUseFlowDetector ofd;
  BorderRouter router;
};

void expect_router_stats_eq(const RouterStats& a, const RouterStats& b) {
  EXPECT_EQ(a.forwarded, b.forwarded);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.bad_hvf, b.bad_hvf);
  EXPECT_EQ(a.expired, b.expired);
  EXPECT_EQ(a.malformed, b.malformed);
  EXPECT_EQ(a.blocked, b.blocked);
  EXPECT_EQ(a.replayed, b.replayed);
  EXPECT_EQ(a.overuse_dropped, b.overuse_dropped);
}

void expect_record_eq(const telemetry::FlightRecord& a,
                      const telemetry::FlightRecord& b, size_t i) {
  EXPECT_EQ(a.seq, b.seq) << "record " << i;
  EXPECT_EQ(a.time_ns, b.time_ns) << "record " << i;
  EXPECT_EQ(a.component, b.component) << "record " << i;
  EXPECT_EQ(a.verdict, b.verdict) << "record " << i;
  EXPECT_EQ(a.errc, b.errc) << "record " << i;
  EXPECT_EQ(a.forced_by_drop, b.forced_by_drop) << "record " << i;
  EXPECT_EQ(a.src_as, b.src_as) << "record " << i;
  EXPECT_EQ(a.res_id, b.res_id) << "record " << i;
  EXPECT_EQ(a.version, b.version) << "record " << i;
  EXPECT_EQ(a.hop, b.hop) << "record " << i;
  EXPECT_EQ(a.if_in, b.if_in) << "record " << i;
  EXPECT_EQ(a.if_eg, b.if_eg) << "record " << i;
  EXPECT_EQ(a.timestamp, b.timestamp) << "record " << i;
  EXPECT_EQ(a.wire_bytes, b.wire_bytes) << "record " << i;
  EXPECT_EQ(a.exp_time, b.exp_time) << "record " << i;
  EXPECT_EQ(a.hvf_got, b.hvf_got) << "record " << i;
  EXPECT_EQ(a.hvf_want, b.hvf_want) << "record " << i;
  EXPECT_EQ(a.hvf_checked, b.hvf_checked) << "record " << i;
  EXPECT_EQ(a.dupsup_verdict, b.dupsup_verdict) << "record " << i;
  EXPECT_EQ(a.ofd_verdict, b.ofd_verdict) << "record " << i;
  EXPECT_EQ(a.bucket_available_bytes, b.bucket_available_bytes)
      << "record " << i;
  EXPECT_EQ(a.bucket_checked, b.bucket_checked) << "record " << i;
}

void run_router_differential(size_t batch_size, size_t total_packets,
                             bool with_recorder) {
  SCOPED_TRACE("batch_size=" + std::to_string(batch_size));
  RouterUniverse scalar(1);
  RouterUniverse batched(1);
  telemetry::FlightRecorder rec_s({1 << 15, /*sample_every=*/3, true});
  telemetry::FlightRecorder rec_b({1 << 15, /*sample_every=*/3, true});
  if (with_recorder) {
    scalar.router.attach_flight_recorder(&rec_s);
    batched.router.attach_flight_recorder(&rec_b);
  }

  RouterStream stream(0xC011B1 + static_cast<std::uint32_t>(batch_size));
  std::array<bool, BorderRouter::kNumVerdicts> seen{};
  size_t done = 0;
  while (done < total_packets) {
    const size_t n = std::min(batch_size, total_packets - done);
    PacketBatch batch;
    std::array<FastPacket, PacketBatch::kCapacity> scalar_pkts;
    for (size_t i = 0; i < n; ++i) {
      const FastPacket p = stream.next();
      batch.push(p);
      scalar_pkts[i] = p;
    }
    std::array<BorderRouter::Verdict, PacketBatch::kCapacity> vs, vb;
    for (size_t i = 0; i < n; ++i) vs[i] = scalar.router.process(scalar_pkts[i]);
    batched.router.process_batch(batch, vb.data());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(vs[i], vb[i]) << "packet " << done + i;
      ASSERT_EQ(errc_from_verdict(vs[i]), errc_from_verdict(vb[i]));
      // The cursor advance is part of the observable contract.
      ASSERT_EQ(scalar_pkts[i].current_hop, batch[i].current_hop)
          << "packet " << done + i;
      seen[static_cast<size_t>(vs[i])] = true;
    }
    done += n;
  }

  expect_router_stats_eq(scalar.router.snapshot(), batched.router.snapshot());
  EXPECT_EQ(scalar.dupsup.snapshot().duplicates,
            batched.dupsup.snapshot().duplicates);
  EXPECT_EQ(scalar.dupsup.snapshot().stale, batched.dupsup.snapshot().stale);
  EXPECT_EQ(scalar.ofd.snapshot().flagged, batched.ofd.snapshot().flagged);
  EXPECT_EQ(scalar.ofd.snapshot().confirmed, batched.ofd.snapshot().confirmed);
  EXPECT_EQ(scalar.ofd.snapshot().watchlist, batched.ofd.snapshot().watchlist);
  EXPECT_EQ(scalar.blocklist.snapshot().blocked_ases,
            batched.blocklist.snapshot().blocked_ases);
  EXPECT_EQ(scalar.blocklist.snapshot().reports,
            batched.blocklist.snapshot().reports);

  // The stream must actually have exercised every verdict class,
  // otherwise the parity claim is vacuous for the missing ones.
  for (size_t v = 0; v < BorderRouter::kNumVerdicts; ++v) {
    EXPECT_TRUE(seen[v]) << "verdict " << v << " never occurred";
  }

  if (with_recorder) {
    const auto a = rec_s.drain();
    const auto b = rec_b.drain();
    ASSERT_EQ(a.size(), b.size());
    EXPECT_GT(a.size(), 0u);
    for (size_t i = 0; i < a.size(); ++i) expect_record_eq(a[i], b[i], i);
  }
}

TEST(RouterDifferential, ParityAcrossBatchSizes) {
  for (size_t bs : {size_t{1}, size_t{7}, size_t{32}, PacketBatch::kCapacity}) {
    run_router_differential(bs, 10'000, /*with_recorder=*/false);
  }
}

TEST(RouterDifferential, FlightRecorderParity) {
  run_router_differential(7, 6'000, /*with_recorder=*/true);
  run_router_differential(32, 6'000, /*with_recorder=*/true);
}

// Runs one batched universe over the canonical stream with the given
// recorder attached; `profile` additionally enables the stage profiler,
// which must be invisible to the recorder.
void run_batched_with_recorder(telemetry::FlightRecorder& rec, bool profile,
                               size_t total,
                               size_t* drops_out = nullptr) {
  RouterUniverse u(1);
  u.router.attach_flight_recorder(&rec);
  u.router.profiler().set_enabled(profile);
  RouterStream stream(0xFEED5EED);
  size_t drops = 0;
  size_t done = 0;
  while (done < total) {
    const size_t n = std::min(size_t{32}, total - done);
    PacketBatch batch;
    for (size_t i = 0; i < n; ++i) batch.push(stream.next());
    std::array<BorderRouter::Verdict, PacketBatch::kCapacity> v;
    u.router.process_batch(batch, v.data());
    for (size_t i = 0; i < n; ++i) {
      if (errc_from_verdict(v[i]) != Errc::kOk) ++drops;
    }
    done += n;
  }
  if (drops_out != nullptr) *drops_out = drops;
}

TEST(BatchedFlightRecorderTest, SamplingIsDeterministicAndProfilerInvisible) {
  // 1-in-7 sampling, drop capture off: the batched path must commit
  // exactly every 7th processed packet, reproducibly.
  telemetry::FlightRecorder plain({1 << 12, /*sample_every=*/7, false});
  telemetry::FlightRecorder profiled({1 << 12, /*sample_every=*/7, false});
  run_batched_with_recorder(plain, /*profile=*/false, 2'000);
  run_batched_with_recorder(profiled, /*profile=*/true, 2'000);

  const auto a = plain.drain();
  const auto b = profiled.drain();
  EXPECT_EQ(a.size(), 2'000u / 7u);
  ASSERT_EQ(a.size(), b.size());
  // Turning the profiler on must not perturb what gets recorded.
  for (size_t i = 0; i < a.size(); ++i) expect_record_eq(a[i], b[i], i);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_FALSE(a[i].forced_by_drop) << "record " << i;
  }
  // And the profiler actually ran in the second universe's batches.
  // (Nothing to check on `plain`: its universe had profiling off.)
}

TEST(BatchedFlightRecorderTest, EveryDropIsRecordedWithoutSampling) {
  // Sampling off, record-on-drop on: the committed records are exactly
  // the dropped packets, in processing order.
  telemetry::FlightRecorder rec({1 << 12, /*sample_every=*/0, true});
  size_t drops = 0;
  run_batched_with_recorder(rec, /*profile=*/false, 2'000, &drops);
  const auto records = rec.drain();
  EXPECT_GT(drops, 0u);
  ASSERT_EQ(records.size(), drops);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_TRUE(records[i].forced_by_drop) << "record " << i;
    EXPECT_NE(
        errc_from_verdict(static_cast<BorderRouter::Verdict>(
            records[i].verdict)),
        Errc::kOk)
        << "record " << i;
    if (i > 0) EXPECT_GT(records[i].seq, records[i - 1].seq);
  }
}

TEST(RouterDifferential, OveruseBlocksLaterPacketsWithinTheSameBatch) {
  // Deterministic cross-packet state inside one batch: the overusing
  // flow is flagged (forwarded), watched (forwarded), confirmed
  // (kOveruse + blocklist report), after which the rest of the batch
  // from that AS must be kBlocked — in both paths.
  RouterUniverse scalar(1);
  RouterUniverse batched(1);
  const crypto::Aes128 key(key_of(1).bytes.data());

  PacketBatch batch;
  std::vector<FastPacket> pkts;
  for (int i = 0; i < 8; ++i) {
    FastPacket p = make_eer(kEvilAs, 666, /*bw=*/8, kExp, 1, 1, 1000,
                            PacketTimestamp::encode(kStart + i * 1000, kExp));
    sign_hop(key, p);
    pkts.push_back(p);
    batch.push(p);
  }
  std::array<BorderRouter::Verdict, 8> vs, vb;
  for (size_t i = 0; i < pkts.size(); ++i) {
    vs[i] = scalar.router.process(pkts[i]);
  }
  batched.router.process_batch(batch, vb.data());

  for (size_t i = 0; i < pkts.size(); ++i) EXPECT_EQ(vs[i], vb[i]) << i;
  EXPECT_EQ(BorderRouter::Verdict::kOveruse, vb[2]);
  for (size_t i = 3; i < pkts.size(); ++i) {
    EXPECT_EQ(BorderRouter::Verdict::kBlocked, vb[i]) << i;
  }
  EXPECT_TRUE(batched.blocklist.blocked(kEvilAs));
}

TEST(RouterDifferential, ReservationExpiringMidBatch) {
  // The clock crosses the reservation's expiry boundary inside a single
  // batch; the split between forwarded and expired packets must land on
  // the same index in both paths (one clock reading per packet).
  const TimeNs boundary = static_cast<TimeNs>(kExp) * kNsPerSec;
  TickClock clk_s(boundary - 5, 1);
  TickClock clk_b(boundary - 5, 1);
  BorderRouter rs(kRouterAs, key_of(1), clk_s, nullptr);
  BorderRouter rb(kRouterAs, key_of(1), clk_b, nullptr);
  const crypto::Aes128 key(key_of(1).bytes.data());

  PacketBatch batch;
  std::vector<FastPacket> pkts;
  for (int i = 0; i < 12; ++i) {
    FastPacket p =
        make_eer(kSrcAs, 50, 100'000, kExp, 1, 1, 100,
                 PacketTimestamp::encode(boundary - 1'000'000 + i, kExp));
    sign_hop(key, p);
    pkts.push_back(p);
    batch.push(p);
  }
  std::array<BorderRouter::Verdict, 12> vs, vb;
  for (size_t i = 0; i < pkts.size(); ++i) vs[i] = rs.process(pkts[i]);
  rb.process_batch(batch, vb.data());

  bool saw_forward = false, saw_expired = false;
  for (size_t i = 0; i < pkts.size(); ++i) {
    EXPECT_EQ(vs[i], vb[i]) << i;
    saw_forward |= vb[i] == BorderRouter::Verdict::kForward;
    saw_expired |= vb[i] == BorderRouter::Verdict::kExpired;
  }
  // The boundary really did fall inside the batch.
  EXPECT_TRUE(saw_forward);
  EXPECT_TRUE(saw_expired);
}

TEST(RouterDifferential, VersionRolloverWithinBatch) {
  // A reservation version rolling over 255 -> 0 mid-batch changes the
  // MAC inputs per packet; both paths must key each packet by its own
  // version.
  TickClock clk_s(kStart, 1);
  TickClock clk_b(kStart, 1);
  BorderRouter rs(kRouterAs, key_of(1), clk_s, nullptr);
  BorderRouter rb(kRouterAs, key_of(1), clk_b, nullptr);
  const crypto::Aes128 key(key_of(1).bytes.data());

  PacketBatch batch;
  std::vector<FastPacket> pkts;
  for (int i = 0; i < 16; ++i) {
    const ResVer version = i < 8 ? 255 : 0;
    FastPacket p = make_eer(kSrcAs, 70, 100'000, kExp, version, 1, 100,
                            PacketTimestamp::encode(kStart + i * 1000, kExp));
    sign_hop(key, p);
    pkts.push_back(p);
    batch.push(p);
  }
  std::array<BorderRouter::Verdict, 16> vs, vb;
  for (size_t i = 0; i < pkts.size(); ++i) vs[i] = rs.process(pkts[i]);
  rb.process_batch(batch, vb.data());
  for (size_t i = 0; i < pkts.size(); ++i) {
    EXPECT_EQ(vs[i], vb[i]) << i;
    EXPECT_EQ(BorderRouter::Verdict::kForward, vb[i]) << i;
  }
}

// --- gateway differential ------------------------------------------------

std::vector<topology::Hop> test_path() {
  return {{kSrcAs, kNoInterface, 1}, {kRouterAs, 2, 3}, {AsId{1, 30}, 4, kNoInterface}};
}

std::vector<HopAuth> test_sigmas(const proto::ResInfo& ri,
                                 const proto::EerInfo& ei) {
  std::vector<HopAuth> sigmas;
  std::uint8_t seed = 1;
  for (const auto& hop : test_path()) {
    const crypto::Aes128 cipher(key_of(seed++).bytes.data());
    sigmas.push_back(compute_hopauth(cipher, ri, ei, hop.ingress, hop.egress));
  }
  return sigmas;
}

template <typename GW>
void install_one(GW& gw, ResId id, BwKbps bw, UnixSec exp, ResVer version = 1) {
  const proto::ResInfo ri{kSrcAs, id, bw, exp, version};
  const proto::EerInfo ei{HostAddr::from_u64(id), HostAddr::from_u64(id + 1)};
  ASSERT_TRUE(gw.install(ri, ei, test_path(), test_sigmas(ri, ei)));
}

// ids 1..20 healthy, 30 rate-limits after ~2 KB, 40 already expired.
template <typename GW>
void install_fixture(GW& gw) {
  for (ResId id = 1; id <= 20; ++id) install_one(gw, id, 100'000, kExp);
  install_one(gw, 30, 8, kExp);
  install_one(gw, 40, 100'000, 1);
}

void expect_fast_eq(const FastPacket& a, const FastPacket& b, size_t i) {
  ASSERT_EQ(a.type, b.type) << "packet " << i;
  ASSERT_EQ(a.is_eer, b.is_eer) << "packet " << i;
  ASSERT_EQ(a.num_hops, b.num_hops) << "packet " << i;
  ASSERT_EQ(a.current_hop, b.current_hop) << "packet " << i;
  ASSERT_EQ(a.resinfo, b.resinfo) << "packet " << i;
  ASSERT_EQ(a.eerinfo, b.eerinfo) << "packet " << i;
  ASSERT_EQ(a.timestamp, b.timestamp) << "packet " << i;
  ASSERT_EQ(a.payload_bytes, b.payload_bytes) << "packet " << i;
  for (std::uint8_t h = 0; h < a.num_hops; ++h) {
    ASSERT_EQ(a.ifaces[h].in, b.ifaces[h].in) << "packet " << i << " hop " << +h;
    ASSERT_EQ(a.ifaces[h].eg, b.ifaces[h].eg) << "packet " << i << " hop " << +h;
    ASSERT_EQ(a.hvfs[h], b.hvfs[h]) << "packet " << i << " hop " << +h;
  }
}

void expect_gateway_stats_eq(const GatewayStats& a, const GatewayStats& b) {
  EXPECT_EQ(a.forwarded, b.forwarded);
  EXPECT_EQ(a.no_reservation, b.no_reservation);
  EXPECT_EQ(a.rate_limited, b.rate_limited);
  EXPECT_EQ(a.expired, b.expired);
}

void run_gateway_differential(size_t batch_size, size_t total) {
  SCOPED_TRACE("batch_size=" + std::to_string(batch_size));
  TickClock clk_s(kStart, 1);
  TickClock clk_b(kStart, 1);
  Gateway gs(kSrcAs, clk_s, {}, nullptr);
  Gateway gb(kSrcAs, clk_b, {}, nullptr);
  telemetry::FlightRecorder rec_s({1 << 15, /*sample_every=*/5, true});
  telemetry::FlightRecorder rec_b({1 << 15, /*sample_every=*/5, true});
  gs.attach_flight_recorder(&rec_s);
  gb.attach_flight_recorder(&rec_b);
  install_fixture(gs);
  install_fixture(gb);

  // Mixed id stream: healthy, rate-limited, expired, unknown — with
  // repeats inside a batch so duplicate ids drain the bucket in order.
  std::mt19937 rng(777 + static_cast<std::uint32_t>(batch_size));
  std::vector<ResId> ids(total);
  std::vector<std::uint32_t> pls(total);
  for (size_t i = 0; i < total; ++i) {
    const std::uint32_t kind = rng() % 100;
    if (kind < 70) {
      ids[i] = 1 + rng() % 20;
    } else if (kind < 80) {
      ids[i] = 30;
    } else if (kind < 85) {
      ids[i] = 40;
    } else {
      ids[i] = 999 + rng() % 4;  // never installed
    }
    pls[i] = rng() % 1400;
  }

  std::vector<FastPacket> out_s(total), out_b(total);
  std::vector<Gateway::Verdict> vs(total), vb(total);
  size_t ok_s = 0;
  for (size_t i = 0; i < total; ++i) {
    vs[i] = gs.process(ids[i], pls[i], out_s[i]);
    if (vs[i] == Gateway::Verdict::kOk) ++ok_s;
  }
  size_t ok_b = 0;
  for (size_t off = 0; off < total; off += batch_size) {
    const size_t n = std::min(batch_size, total - off);
    ok_b += gb.process_batch(ids.data() + off, pls.data() + off, n,
                             out_b.data() + off, vb.data() + off);
  }
  EXPECT_EQ(ok_s, ok_b);

  std::array<bool, Gateway::kNumVerdicts> seen{};
  for (size_t i = 0; i < total; ++i) {
    ASSERT_EQ(vs[i], vb[i]) << "packet " << i;
    if (vs[i] == Gateway::Verdict::kOk) expect_fast_eq(out_s[i], out_b[i], i);
    seen[static_cast<size_t>(vs[i])] = true;
  }
  for (size_t v = 0; v < Gateway::kNumVerdicts; ++v) {
    EXPECT_TRUE(seen[v]) << "verdict " << v << " never occurred";
  }

  expect_gateway_stats_eq(gs.snapshot(), gb.snapshot());
  const auto ra = rec_s.drain();
  const auto rb = rec_b.drain();
  ASSERT_EQ(ra.size(), rb.size());
  EXPECT_GT(ra.size(), 0u);
  for (size_t i = 0; i < ra.size(); ++i) expect_record_eq(ra[i], rb[i], i);
}

TEST(GatewayDifferential, ParityAcrossBatchSizes) {
  // Includes n > 64 so the internal chunking is crossed.
  for (size_t bs : {size_t{1}, size_t{7}, size_t{32}, size_t{64}, size_t{200},
                    size_t{1000}}) {
    run_gateway_differential(bs, 4'000);
  }
}

// --- sharded gateway -----------------------------------------------------

TEST(ShardedGatewayTest, MatchesSingleGatewayByteForByte) {
  SimClock clock(kStart);
  Gateway single(kSrcAs, clock, {}, nullptr);
  ShardedGateway sharded(kSrcAs, clock, 4, {}, nullptr);
  install_fixture(single);
  install_fixture(sharded);
  EXPECT_EQ(single.reservation_count(), sharded.reservation_count());

  std::mt19937 rng(42);
  constexpr size_t kN = 2'000;
  std::vector<ResId> ids(kN);
  std::vector<std::uint32_t> pls(kN);
  for (size_t i = 0; i < kN; ++i) {
    ids[i] = (rng() % 100 < 85) ? 1 + rng() % 20 : 999;
    pls[i] = rng() % 800;
  }

  std::vector<FastPacket> out_s(kN), out_m(kN);
  std::vector<Gateway::Verdict> vs(kN), vm(kN);
  size_t ok_s = 0;
  for (size_t i = 0; i < kN; ++i) {
    vs[i] = single.process(ids[i], pls[i], out_s[i]);
    if (vs[i] == Gateway::Verdict::kOk) ++ok_s;
  }
  size_t ok_m = 0;
  constexpr size_t kStride = 96;  // crosses the internal 64-chunk boundary
  for (size_t off = 0; off < kN; off += kStride) {
    const size_t n = std::min(kStride, kN - off);
    ok_m += sharded.process_batch(ids.data() + off, pls.data() + off, n,
                                  out_m.data() + off, vm.data() + off);
  }
  EXPECT_EQ(ok_s, ok_m);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(vs[i], vm[i]) << i;
    if (vs[i] == Gateway::Verdict::kOk) expect_fast_eq(out_s[i], out_m[i], i);
  }
  expect_gateway_stats_eq(single.snapshot(), sharded.snapshot());
}

TEST(ShardedGatewayTest, ShardRoutingIsStableAndCoversAllShards) {
  // Routing depends only on (id, count): recomputing yields the same
  // shard, and a healthy spread uses every shard.
  std::vector<size_t> hits(4, 0);
  for (ResId id = 1; id <= 256; ++id) {
    const size_t s = ShardedGateway::shard_of(id, 4);
    ASSERT_LT(s, 4u);
    ASSERT_EQ(s, ShardedGateway::shard_of(id, 4));
    ++hits[s];
  }
  for (size_t s = 0; s < 4; ++s) EXPECT_GT(hits[s], 0u) << "shard " << s;
}

std::map<ResId, std::uint64_t> bucket_fills(const ShardedGateway& gw) {
  std::map<ResId, std::uint64_t> fills;
  for (size_t s = 0; s < gw.shard_count(); ++s) {
    gw.shard(s).for_each_entry([&](ResId id, const GatewayEntry& e) {
      fills[id] = e.bucket.available_bytes();
    });
  }
  return fills;
}

TEST(ShardedGatewayTest, ResizePreservesEntriesAndBucketFill) {
  SimClock clock(kStart);
  ShardedGateway gw(kSrcAs, clock, 4, {}, nullptr);
  for (ResId id = 1; id <= 32; ++id) install_one(gw, id, 100'000, kExp);

  // Drain some tokens so the fill levels are distinguishable.
  FastPacket out;
  for (ResId id = 1; id <= 32; ++id) {
    for (ResId k = 0; k < id % 5; ++k) {
      ASSERT_EQ(ShardedGateway::Verdict::kOk, gw.process(id, 500, out));
    }
  }
  const auto before = bucket_fills(gw);
  ASSERT_EQ(32u, before.size());

  // Record where each id lives at the original count.
  std::vector<size_t> placement4(33);
  for (ResId id = 1; id <= 32; ++id) placement4[id] = gw.shard_of(id);

  gw.resize(8);
  EXPECT_EQ(8u, gw.shard_count());
  EXPECT_EQ(32u, gw.reservation_count());
  EXPECT_EQ(bucket_fills(gw), before);  // token-bucket fill survives
  // Counters restart from zero after a resize.
  EXPECT_EQ(0u, gw.snapshot().forwarded);
  // Every entry sits in the shard the stable hash names.
  for (size_t s = 0; s < 8; ++s) {
    gw.shard(s).for_each_entry([&](ResId id, const GatewayEntry&) {
      EXPECT_EQ(s, ShardedGateway::shard_of(id, 8)) << "id " << id;
    });
  }

  gw.resize(4);
  EXPECT_EQ(32u, gw.reservation_count());
  EXPECT_EQ(bucket_fills(gw), before);
  // Same count -> identical placement as before the round-trip.
  for (ResId id = 1; id <= 32; ++id) {
    EXPECT_EQ(placement4[id], gw.shard_of(id)) << "id " << id;
  }
  // Still fully operational.
  EXPECT_EQ(ShardedGateway::Verdict::kOk, gw.process(1, 100, out));
}

TEST(ShardedRuntimeTest, DrainsEverySubmittedRequest) {
  SimClock clock(kStart);
  ShardedGateway gw(kSrcAs, clock, 4, {}, nullptr);
  for (ResId id = 1; id <= 64; ++id) install_one(gw, id, 4'000'000, kExp);

  ShardedGatewayRuntime rt(gw, /*ring_capacity=*/256);
  EXPECT_EQ(4u, rt.shard_count());
  rt.start();
  EXPECT_TRUE(rt.running());

  constexpr size_t kN = 20'000;
  std::mt19937 rng(5);
  for (size_t i = 0; i < kN; ++i) {
    const ResId id = 1 + rng() % 80;  // ids 65..80 are never installed
    while (!rt.submit(id, 100)) std::this_thread::yield();
  }
  rt.drain();
  EXPECT_TRUE(rt.idle());

  std::uint64_t processed = 0, ok = 0;
  for (size_t s = 0; s < rt.shard_count(); ++s) {
    const auto ws = rt.worker_stats(s);
    processed += ws.processed;
    ok += ws.ok;
    EXPECT_GT(ws.batches, 0u) << "shard " << s;
  }
  EXPECT_EQ(kN, processed);
  const GatewayStats stats = gw.snapshot();
  EXPECT_EQ(ok, stats.forwarded);
  EXPECT_EQ(kN, stats.forwarded + stats.no_reservation + stats.rate_limited +
                    stats.expired);

  rt.stop();
  EXPECT_FALSE(rt.running());
  rt.stop();  // idempotent
}

TEST(ShardedRuntimeTest, HealthSurfaceCountsSubmissionsAndRejections) {
  SimClock clock(kStart);
  telemetry::MetricsRegistry registry;
  ShardedGateway gw(kSrcAs, clock, 2, {}, nullptr);
  for (ResId id = 1; id <= 16; ++id) install_one(gw, id, 4'000'000, kExp);

  ShardedGatewayRuntime rt(gw, /*ring_capacity=*/8, &registry);
  rt.start();
  constexpr size_t kN = 5'000;
  std::uint64_t accepted = 0, bounced = 0;
  std::mt19937 rng(7);
  for (size_t i = 0; i < kN; ++i) {
    const ResId id = 1 + rng() % 20;  // ids 17..20 are never installed
    if (rt.submit(id, 100)) {
      ++accepted;
    } else {
      ++bounced;  // tiny ring: backpressure is expected
      std::this_thread::yield();
    }
  }
  rt.drain();

  std::uint64_t submitted = 0, processed = 0, rejected = 0;
  for (size_t s = 0; s < rt.shard_count(); ++s) {
    const auto h = rt.shard_health(s);
    submitted += h.submitted;
    processed += h.processed;
    rejected += h.rejected;
    EXPECT_EQ(h.ring_depth, 0u) << "shard " << s;  // drained
    EXPECT_LE(h.high_watermark, 8u) << "shard " << s;
    EXPECT_GT(h.heartbeats, 0u) << "shard " << s;
  }
  EXPECT_EQ(submitted, accepted);
  EXPECT_EQ(processed, accepted);
  EXPECT_EQ(rejected, bounced);

  // Live workers are never reported stalled: the first call only
  // baselines the heartbeats, later calls see them advancing.
  (void)rt.check_stalls();
  EXPECT_TRUE(rt.check_stalls().empty());

  // The registry export carries the per-shard health series.
  const telemetry::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.gauges.at("gateway_runtime.shard.count"), 2);
  EXPECT_EQ(snap.counters.at("gateway_runtime.shard.0.submitted") +
                snap.counters.at("gateway_runtime.shard.1.submitted"),
            accepted);
  EXPECT_EQ(snap.counters.at("gateway_runtime.shard.0.rejected") +
                snap.counters.at("gateway_runtime.shard.1.rejected"),
            bounced);
  EXPECT_EQ(snap.gauges.at("gateway_runtime.shard.0.ring_depth"), 0);
  EXPECT_GT(snap.counters.at("gateway_runtime.shard.0.heartbeats"), 0u);
  rt.stop();
}

TEST(ShardedRuntimeTest, StallDetectorFlagsBackloggedShardWithFrozenWorker) {
  SimClock clock(kStart);
  ShardedGateway gw(kSrcAs, clock, 2, {}, nullptr);
  install_one(gw, 1, 4'000'000, kExp);

  ShardedGatewayRuntime rt(gw, /*ring_capacity=*/16);
  // Workers never started: submissions queue up and heartbeats stay
  // frozen — indistinguishable from a wedged worker, which is exactly
  // what the detector must flag.
  const size_t target = ShardedGateway::shard_of(1, 2);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(rt.submit(1, 100));
  EXPECT_EQ(rt.shard_health(target).ring_depth, 4u);

  EXPECT_TRUE(rt.check_stalls().empty());  // first call: baseline only
  const std::vector<size_t> stalled = rt.check_stalls();
  ASSERT_EQ(stalled.size(), 1u);
  EXPECT_EQ(stalled[0], target);

  // Once the workers run and clear the backlog, the verdict clears too.
  rt.start();
  rt.drain();
  (void)rt.check_stalls();
  EXPECT_TRUE(rt.check_stalls().empty());
  rt.stop();
}

// --- SPSC ring -----------------------------------------------------------

TEST(SpscRingTest, FifoOrderAndWraparound) {
  SpscRing<int> ring(4);
  EXPECT_EQ(4u, ring.capacity());
  EXPECT_TRUE(ring.empty());

  // Fill, overflow is rejected.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));

  // Partial drain, refill across the wrap point, drain in order.
  int v = -1;
  EXPECT_TRUE(ring.try_pop(v));
  EXPECT_EQ(0, v);
  EXPECT_TRUE(ring.try_pop(v));
  EXPECT_EQ(1, v);
  EXPECT_TRUE(ring.try_push(4));
  EXPECT_TRUE(ring.try_push(5));
  for (int want = 2; want <= 5; ++want) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(want, v);
  }
  EXPECT_FALSE(ring.try_pop(v));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingTest, BurstsRoundTrip) {
  SpscRing<int> ring(8);
  int in[6] = {10, 11, 12, 13, 14, 15};
  EXPECT_EQ(6u, ring.push_burst(in, 6));
  EXPECT_EQ(2u, ring.push_burst(in, 6));  // only 2 slots left
  int out[8] = {};
  EXPECT_EQ(8u, ring.pop_burst(out, 8));
  EXPECT_EQ(10, out[0]);
  EXPECT_EQ(15, out[5]);
  EXPECT_EQ(10, out[6]);  // wrapped refill came from the same source
  EXPECT_EQ(0u, ring.pop_burst(out, 8));
}

TEST(SpscRingTest, TwoThreadStressKeepsOrderAndLosesNothing) {
  SpscRing<std::uint32_t> ring(64);
  constexpr std::uint32_t kN = 200'000;
  std::thread producer([&] {
    for (std::uint32_t i = 0; i < kN; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  std::uint32_t expect_next = 0;
  std::uint32_t buf[32];
  while (expect_next < kN) {
    const size_t m = ring.pop_burst(buf, 32);
    if (m == 0) {
      std::this_thread::yield();
      continue;
    }
    for (size_t i = 0; i < m; ++i) {
      ASSERT_EQ(expect_next, buf[i]);
      ++expect_next;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// --- batch ingest --------------------------------------------------------

proto::Packet sample_wire_packet(size_t hops) {
  proto::Packet pkt;
  pkt.type = proto::PacketType::kData;
  pkt.is_eer = true;
  pkt.current_hop = 1;
  pkt.resinfo = {kSrcAs, 77, 100'000, kExp, 3};
  pkt.eerinfo = {HostAddr::from_u64(0x1111), HostAddr::from_u64(0x2222)};
  pkt.timestamp = 0xDEADBEEF;
  pkt.path.resize(hops);
  pkt.hvfs.resize(hops);
  for (size_t i = 0; i < hops; ++i) {
    pkt.path[i] = {AsId{1, 10 + i}, static_cast<IfId>(i),
                   static_cast<IfId>(i + 1)};
    pkt.hvfs[i] = {static_cast<std::uint8_t>(i), 2, 3, 4};
  }
  pkt.payload.assign(48, 0xAB);
  return pkt;
}

TEST(BatchIngestTest, RoundTripsDecodableFrames) {
  const proto::Packet pkt = sample_wire_packet(3);
  const Bytes frame = proto::encode_packet(pkt);
  PacketBatch batch;
  ASSERT_TRUE(batch_ingest(frame, batch));
  ASSERT_EQ(1u, batch.size);
  expect_fast_eq(batch[0], to_fast(pkt), 0);
}

TEST(BatchIngestTest, RejectsTruncatedOversizedAndFullBatch) {
  const Bytes frame = proto::encode_packet(sample_wire_packet(3));
  PacketBatch batch;

  // Truncation anywhere must leave the batch unchanged.
  for (size_t cut : {size_t{1}, size_t{8}, frame.size() - 1}) {
    EXPECT_FALSE(batch_ingest(BytesView(frame.data(), frame.size() - cut),
                              batch));
    EXPECT_EQ(0u, batch.size);
  }
  EXPECT_FALSE(batch_ingest(BytesView(frame.data(), 0), batch));

  // More hops than FastPacket can hold: parseable but not ingestable.
  const Bytes big = proto::encode_packet(sample_wire_packet(kMaxHops + 1));
  EXPECT_FALSE(batch_ingest(big, batch));
  EXPECT_EQ(0u, batch.size);

  // A full batch rejects even a valid frame.
  while (!batch.full()) ASSERT_TRUE(batch_ingest(frame, batch));
  EXPECT_FALSE(batch_ingest(frame, batch));
  EXPECT_EQ(PacketBatch::kCapacity, batch.size);
}

// --- telemetry re-export -------------------------------------------------

struct CaptureSink final : telemetry::MetricSink {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  void counter(std::string_view name, std::uint64_t value) override {
    counters[std::string(name)] = value;
  }
  void gauge(std::string_view name, std::int64_t value) override {
    gauges[std::string(name)] = value;
  }
  void histogram(std::string_view,
                 const telemetry::HistogramSnapshot&) override {}
};

TEST(ShardedGatewayTest, ExportsPerShardMetricsUnderPrefixedNames) {
  SimClock clock(kStart);
  ShardedGateway gw(kSrcAs, clock, 2, {}, nullptr);
  install_one(gw, 7, 100'000, kExp);
  FastPacket out;
  ASSERT_EQ(ShardedGateway::Verdict::kOk, gw.process(7, 100, out));

  CaptureSink sink;
  gw.collect_metrics(sink);
  EXPECT_EQ(2, sink.gauges.at("gateway_shard.count"));
  const std::string fwd =
      "gateway_shard." + std::to_string(gw.shard_of(7)) + ".forwarded";
  EXPECT_EQ(1u, sink.counters.at(fwd));
  // Both shards report, including the idle one.
  EXPECT_EQ(1u, sink.counters.count("gateway_shard.0.forwarded"));
  EXPECT_EQ(1u, sink.counters.count("gateway_shard.1.forwarded"));
}

}  // namespace
}  // namespace colibri::dataplane
