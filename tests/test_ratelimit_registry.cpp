// Direct unit tests for control-plane building blocks: request limiters,
// the SegR registry/whitelists, and the message bus.
#include <gtest/gtest.h>

#include "colibri/cserv/bus.hpp"
#include "colibri/cserv/ratelimit.hpp"
#include "colibri/cserv/registry.hpp"

namespace colibri::cserv {
namespace {

TEST(RequestLimiterTest, AllowsBurstThenThrottles) {
  RequestLimiter limiter(/*rate=*/10.0, /*burst=*/5.0);
  int allowed = 0;
  for (int i = 0; i < 20; ++i) allowed += limiter.allow(1, 0);
  EXPECT_EQ(allowed, 5);  // burst only, no time passed
}

TEST(RequestLimiterTest, RefillsOverTime) {
  RequestLimiter limiter(10.0, 5.0);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(limiter.allow(1, 0));
  ASSERT_FALSE(limiter.allow(1, 0));
  // 0.5 s -> 5 tokens.
  EXPECT_TRUE(limiter.allow(1, kNsPerSec / 2));
}

TEST(RequestLimiterTest, KeysAreIndependent) {
  RequestLimiter limiter(1.0, 1.0);
  EXPECT_TRUE(limiter.allow(1, 0));
  EXPECT_FALSE(limiter.allow(1, 0));
  EXPECT_TRUE(limiter.allow(2, 0));  // other key unaffected
}

TEST(RequestLimiterTest, ExpireDropsIdleEntries) {
  RequestLimiter limiter(1.0, 1.0);
  limiter.allow(1, 0);
  limiter.allow(2, 5 * kNsPerSec);
  EXPECT_EQ(limiter.tracked(), 2u);
  limiter.expire(6 * kNsPerSec, 2 * kNsPerSec);
  EXPECT_EQ(limiter.tracked(), 1u);  // key 1 idle > 2 s
}

TEST(ControlRateLimiterTest, SeparatesRequestAndRenewalBudgets) {
  RateLimitConfig cfg;
  cfg.per_as_requests_per_sec = 100;
  cfg.per_as_burst = 2;
  cfg.renewals_per_reservation_per_sec = 1;
  cfg.renewal_burst = 1;
  ControlRateLimiter limiter(cfg);
  const AsId as{1, 5};
  const ResKey key{as, 7};
  EXPECT_TRUE(limiter.allow_request(as, 0));
  EXPECT_TRUE(limiter.allow_renewal(key, 0));
  EXPECT_FALSE(limiter.allow_renewal(key, 0));  // renewal budget spent
  EXPECT_TRUE(limiter.allow_request(as, 0));    // request budget separate
}

SegrAdvert advert(AsId first, AsId last, ResId id, UnixSec exp = 1000,
                  std::vector<AsId> whitelist = {}) {
  SegrAdvert a;
  a.key = ResKey{first, id};
  a.seg_type = topology::SegType::kUp;
  a.hops = {topology::Hop{first, kNoInterface, 1},
            topology::Hop{last, 2, kNoInterface}};
  a.bw_kbps = 1000;
  a.exp_time = exp;
  a.whitelist = std::move(whitelist);
  return a;
}

TEST(RegistryTest, QueryByEndpoints) {
  SegrRegistry reg;
  const AsId a{1, 1}, b{1, 2}, c{1, 3};
  reg.register_segr(advert(a, b, 1));
  reg.register_segr(advert(a, c, 2));
  EXPECT_EQ(reg.query(a, a, b, 0).size(), 1u);
  EXPECT_EQ(reg.query_from(a, a, 0).size(), 2u);
  EXPECT_EQ(reg.query_to(a, c, 0).size(), 1u);
  EXPECT_TRUE(reg.query(a, b, a, 0).empty());
}

TEST(RegistryTest, ExpiredAdvertsFiltered) {
  SegrRegistry reg;
  const AsId a{1, 1}, b{1, 2};
  reg.register_segr(advert(a, b, 1, /*exp=*/100));
  EXPECT_EQ(reg.query(a, a, b, 99).size(), 1u);
  EXPECT_TRUE(reg.query(a, a, b, 100).empty());
  EXPECT_EQ(reg.expire(100), 1u);
  EXPECT_EQ(reg.size(), 0u);
}

TEST(RegistryTest, WhitelistFiltersQueries) {
  SegrRegistry reg;
  const AsId a{1, 1}, b{1, 2}, friend_as{1, 5}, stranger{1, 6};
  reg.register_segr(advert(a, b, 1, 1000, {friend_as}));
  EXPECT_EQ(reg.query(friend_as, a, b, 0).size(), 1u);
  EXPECT_TRUE(reg.query(stranger, a, b, 0).empty());
  // The initiator itself always passes.
  EXPECT_EQ(reg.query(a, a, b, 0).size(), 1u);
}

TEST(RegistryTest, InvalidateRemovesCachedAdvert) {
  SegrRegistry reg;
  const AsId a{1, 1}, b{1, 2};
  reg.cache_remote(advert(a, b, 1));
  ASSERT_TRUE(reg.find(ResKey{a, 1}).has_value());
  reg.invalidate(ResKey{a, 1});
  EXPECT_FALSE(reg.find(ResKey{a, 1}).has_value());
}

TEST(RegistryTest, ReRegistrationOverwrites) {
  SegrRegistry reg;
  const AsId a{1, 1}, b{1, 2};
  reg.register_segr(advert(a, b, 1, 100));
  auto updated = advert(a, b, 1, 900);
  updated.bw_kbps = 7777;
  reg.register_segr(updated);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.find(ResKey{a, 1})->bw_kbps, 7777u);
}

TEST(MessageBusTest, RoutesToHandler) {
  MessageBus bus;
  const AsId a{1, 1};
  bus.attach(a, [](BytesView req) {
    Bytes resp(req.begin(), req.end());
    resp.push_back(0xFF);
    return resp;
  });
  ASSERT_TRUE(bus.reachable(a));
  const Bytes req = {1, 2, 3};
  const Bytes resp = bus.call(a, req);
  ASSERT_EQ(resp.size(), 4u);
  EXPECT_EQ(resp.back(), 0xFF);
  EXPECT_EQ(bus.message_count(), 1u);
  EXPECT_EQ(bus.byte_count(), 3u);
}

TEST(MessageBusTest, UnreachableReturnsEmpty) {
  MessageBus bus;
  EXPECT_FALSE(bus.reachable(AsId{9, 9}));
  EXPECT_TRUE(bus.call(AsId{9, 9}, Bytes{1}).empty());
  EXPECT_EQ(bus.message_count(), 0u);
}

TEST(MessageBusTest, DetachStopsDelivery) {
  MessageBus bus;
  const AsId a{1, 1};
  bus.attach(a, [](BytesView) { return Bytes{1}; });
  bus.detach(a);
  EXPECT_FALSE(bus.reachable(a));
  EXPECT_TRUE(bus.call(a, {}).empty());
}

}  // namespace
}  // namespace colibri::cserv
