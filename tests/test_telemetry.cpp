// Telemetry layer: counter/gauge/histogram semantics, concurrent
// increments, source aggregation, JSON snapshot round-trip, span
// tracing, and the verdict→Errc mapping used for counter names.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "colibri/common/errors.hpp"
#include "colibri/dataplane/gateway.hpp"
#include "colibri/dataplane/router.hpp"
#include "colibri/telemetry/metrics.hpp"
#include "colibri/telemetry/trace.hpp"

namespace colibri {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::HistogramSnapshot;
using telemetry::MetricsRegistry;

TEST(CounterTest, IncAndBump) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.bump(8);
  EXPECT_EQ(c.value(), 50u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(CounterTest, ConcurrentIncrementsFromManyThreads) {
  Counter c;
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record_shared(static_cast<std::uint64_t>(t * 1000 + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.snapshot().count, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(HistogramTest, BucketsByPowerOfTwoAndPercentiles) {
  Histogram h;
  h.record(0);      // bucket 0
  h.record(1);      // bucket 1: [1,1]
  h.record(3);      // bucket 2: [2,3]
  h.record(1000);   // bucket 10: [512,1023]
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 1004u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[10], 1u);
  // p100 upper bound covers the largest sample, p0 the smallest bucket.
  EXPECT_GE(s.percentile(1.0), 1000.0);
  EXPECT_EQ(s.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 1004.0 / 4.0);
}

TEST(HistogramTest, OverflowLandsInLastBucket) {
  Histogram h;
  h.record(~std::uint64_t{0});
  const auto s = h.snapshot();
  EXPECT_EQ(s.buckets[telemetry::kHistogramBuckets - 1], 1u);
}

TEST(HistogramTest, MergeIsBucketwise) {
  Histogram a, b;
  a.record(3);
  b.record(3);
  b.record(1000);
  auto sa = a.snapshot();
  sa.merge(b.snapshot());
  EXPECT_EQ(sa.count, 3u);
  EXPECT_EQ(sa.buckets[2], 2u);
  EXPECT_EQ(sa.buckets[10], 1u);
}

TEST(RegistryTest, OwnedMetricsAreGetOrCreate) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("x.count");
  Counter& c2 = reg.counter("x.count");
  EXPECT_EQ(&c1, &c2);
  c1.inc(5);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("x.count"), 5u);
}

class FakeSource final : public telemetry::MetricsSource {
 public:
  explicit FakeSource(std::uint64_t v) : v_(v) {}
  void collect_metrics(telemetry::MetricSink& sink) const override {
    sink.counter("fake.count", v_);
    sink.gauge("fake.gauge", static_cast<std::int64_t>(v_));
    HistogramSnapshot h;
    h.count = 1;
    h.sum = v_;
    h.buckets[3] = 1;
    sink.histogram("fake.hist", h);
  }

 private:
  std::uint64_t v_;
};

TEST(RegistryTest, SourcesAggregateBySummation) {
  MetricsRegistry reg;
  FakeSource a(10), b(32);
  {
    telemetry::ScopedSource sa(&reg, &a);
    telemetry::ScopedSource sb(&reg, &b);
    EXPECT_EQ(reg.source_count(), 2u);
    const auto snap = reg.snapshot();
    EXPECT_EQ(snap.counters.at("fake.count"), 42u);
    EXPECT_EQ(snap.gauges.at("fake.gauge"), 42);
    EXPECT_EQ(snap.histograms.at("fake.hist").count, 2u);
    EXPECT_EQ(snap.histograms.at("fake.hist").buckets[3], 2u);
  }
  EXPECT_EQ(reg.source_count(), 0u);  // ScopedSource detached both
}

// Tiny JSON validator: structure only (balanced, quoted keys), enough to
// catch malformed exporter output without a JSON dependency.
bool json_is_balanced(const std::string& s) {
  int depth = 0;
  bool in_str = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_str) {
      if (c == '\\') ++i;
      else if (c == '"') in_str = false;
      continue;
    }
    if (c == '"') in_str = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_str;
}

TEST(RegistryTest, JsonSnapshotRoundTrip) {
  MetricsRegistry reg;
  reg.counter("a.count").inc(3);
  reg.gauge("a.gauge").set(-7);
  reg.histogram("a.lat_ns").record_shared(100);
  reg.histogram("a.lat_ns").record_shared(200);
  const std::string json = reg.to_json();
  EXPECT_TRUE(json_is_balanced(json)) << json;
  EXPECT_NE(json.find("\"a.count\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"a.gauge\":-7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"a.lat_ns\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sum\":300"), std::string::npos) << json;

  reg.reset();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("a.count"), 0u);
  EXPECT_EQ(snap.histograms.at("a.lat_ns").count, 0u);
}

TEST(RegistryTest, JsonEscapesSpecialCharacters) {
  MetricsRegistry reg;
  reg.counter("weird\"name\\with\nstuff").inc();
  const std::string json = reg.to_json();
  EXPECT_TRUE(json_is_balanced(json)) << json;
  EXPECT_NE(json.find("weird\\\"name\\\\with\\nstuff"), std::string::npos)
      << json;
}

TEST(ErrcFromVerdictTest, RouterMappingIsExhaustiveAndDistinct) {
  using V = dataplane::BorderRouter::Verdict;
  // Success verdicts map to kOk.
  EXPECT_EQ(dataplane::errc_from_verdict(V::kForward), Errc::kOk);
  EXPECT_EQ(dataplane::errc_from_verdict(V::kDeliver), Errc::kOk);
  // Every drop verdict maps to a distinct, non-kOk error whose name
  // telemetry uses as the counter label.
  const std::vector<V> drops = {V::kBadHvf,  V::kExpired, V::kMalformed,
                                V::kBlocked, V::kReplay,  V::kOveruse};
  std::set<Errc> seen;
  for (const V v : drops) {
    const Errc e = dataplane::errc_from_verdict(v);
    EXPECT_NE(e, Errc::kOk);
    EXPECT_STRNE(errc_name(e), "unknown");
    seen.insert(e);
  }
  EXPECT_EQ(seen.size(), drops.size());
  EXPECT_EQ(dataplane::errc_from_verdict(V::kBadHvf), Errc::kAuthFailed);
  EXPECT_EQ(dataplane::errc_from_verdict(V::kOveruse), Errc::kOveruse);
}

TEST(ErrcFromVerdictTest, GatewayMappingIsExhaustiveAndDistinct) {
  using V = dataplane::Gateway::Verdict;
  EXPECT_EQ(dataplane::errc_from_verdict(V::kOk), Errc::kOk);
  const std::vector<V> drops = {V::kNoReservation, V::kRateLimited,
                                V::kExpired};
  std::set<Errc> seen;
  for (const V v : drops) {
    const Errc e = dataplane::errc_from_verdict(v);
    EXPECT_NE(e, Errc::kOk);
    seen.insert(e);
  }
  EXPECT_EQ(seen.size(), drops.size());
}

TEST(SpanTraceTest, NestedSpansAndSelfTime) {
  telemetry::SpanCollector col;
  EXPECT_FALSE(col.enabled());
  col.enable();
  // Simulated 3-hop chain: A calls B calls C (times in ns).
  const auto a = col.open("1-110", 0, 100);
  const auto b = col.open("1-100", 100, 80);
  const auto c = col.open("2-200", 150, 60);
  col.close(c, 250);  // C took 100
  col.close(b, 400);  // B subtree took 300
  col.close(a, 500);  // A subtree took 500
  const auto trace = col.take();
  ASSERT_EQ(trace.spans.size(), 3u);
  EXPECT_EQ(trace.spans[0].parent, -1);
  EXPECT_EQ(trace.spans[1].parent, 0);
  EXPECT_EQ(trace.spans[2].parent, 1);
  EXPECT_EQ(trace.spans[0].depth, 0);
  EXPECT_EQ(trace.spans[2].depth, 2);
  EXPECT_EQ(trace.spans[0].duration_ns, 500);
  EXPECT_EQ(trace.spans[1].duration_ns, 300);
  EXPECT_EQ(trace.spans[2].duration_ns, 100);
  // Self time excludes direct children: A = 500-300, B = 300-100, C = 100.
  EXPECT_EQ(trace.self_time_ns(0), 200);
  EXPECT_EQ(trace.self_time_ns(1), 200);
  EXPECT_EQ(trace.self_time_ns(2), 100);
  EXPECT_TRUE(json_is_balanced(trace.to_json()));
  // take() drained the collector.
  EXPECT_TRUE(col.trace().spans.empty());
}

}  // namespace
}  // namespace colibri
