// Telemetry layer: counter/gauge/histogram semantics, concurrent
// increments, source aggregation, JSON snapshot round-trip, span
// tracing, the stage profiler, the Perfetto trace export, and the
// verdict→Errc mapping used for counter names. Ends with a concurrent
// stress test meant to run under the TSan preset.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "colibri/common/clock.hpp"
#include "colibri/common/errors.hpp"
#include "colibri/dataplane/gateway.hpp"
#include "colibri/dataplane/router.hpp"
#include "colibri/telemetry/events.hpp"
#include "colibri/telemetry/flight_recorder.hpp"
#include "colibri/telemetry/metrics.hpp"
#include "colibri/telemetry/openmetrics.hpp"
#include "colibri/telemetry/profiler.hpp"
#include "colibri/telemetry/trace.hpp"
#include "colibri/telemetry/trace_assembler.hpp"
#include "colibri/telemetry/trace_export.hpp"

namespace colibri {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::HistogramSnapshot;
using telemetry::MetricsRegistry;
using telemetry::MetricsSnapshot;

TEST(CounterTest, IncAndBump) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.bump(8);
  EXPECT_EQ(c.value(), 50u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(CounterTest, ConcurrentIncrementsFromManyThreads) {
  Counter c;
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record_shared(static_cast<std::uint64_t>(t * 1000 + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.snapshot().count, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(HistogramTest, BucketsByPowerOfTwoAndPercentiles) {
  Histogram h;
  h.record(0);      // bucket 0
  h.record(1);      // bucket 1: [1,1]
  h.record(3);      // bucket 2: [2,3]
  h.record(1000);   // bucket 10: [512,1023]
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 1004u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[10], 1u);
  // p100 upper bound covers the largest sample, p0 the smallest bucket.
  EXPECT_GE(s.percentile(1.0), 1000.0);
  EXPECT_EQ(s.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 1004.0 / 4.0);
}

TEST(HistogramTest, OverflowLandsInLastBucket) {
  Histogram h;
  h.record(~std::uint64_t{0});
  const auto s = h.snapshot();
  EXPECT_EQ(s.buckets[telemetry::kHistogramBuckets - 1], 1u);
}

TEST(HistogramTest, MergeIsBucketwise) {
  Histogram a, b;
  a.record(3);
  b.record(3);
  b.record(1000);
  auto sa = a.snapshot();
  sa.merge(b.snapshot());
  EXPECT_EQ(sa.count, 3u);
  EXPECT_EQ(sa.buckets[2], 2u);
  EXPECT_EQ(sa.buckets[10], 1u);
}

TEST(RegistryTest, OwnedMetricsAreGetOrCreate) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("x.count");
  Counter& c2 = reg.counter("x.count");
  EXPECT_EQ(&c1, &c2);
  c1.inc(5);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("x.count"), 5u);
}

class FakeSource final : public telemetry::MetricsSource {
 public:
  explicit FakeSource(std::uint64_t v) : v_(v) {}
  void collect_metrics(telemetry::MetricSink& sink) const override {
    sink.counter("fake.count", v_);
    sink.gauge("fake.gauge", static_cast<std::int64_t>(v_));
    HistogramSnapshot h;
    h.count = 1;
    h.sum = v_;
    h.buckets[3] = 1;
    sink.histogram("fake.hist", h);
  }

 private:
  std::uint64_t v_;
};

TEST(RegistryTest, SourcesAggregateBySummation) {
  MetricsRegistry reg;
  FakeSource a(10), b(32);
  {
    telemetry::ScopedSource sa(&reg, &a);
    telemetry::ScopedSource sb(&reg, &b);
    EXPECT_EQ(reg.source_count(), 2u);
    const auto snap = reg.snapshot();
    EXPECT_EQ(snap.counters.at("fake.count"), 42u);
    EXPECT_EQ(snap.gauges.at("fake.gauge"), 42);
    EXPECT_EQ(snap.histograms.at("fake.hist").count, 2u);
    EXPECT_EQ(snap.histograms.at("fake.hist").buckets[3], 2u);
  }
  EXPECT_EQ(reg.source_count(), 0u);  // ScopedSource detached both
}

// Tiny JSON validator: structure only (balanced, quoted keys), enough to
// catch malformed exporter output without a JSON dependency.
bool json_is_balanced(const std::string& s) {
  int depth = 0;
  bool in_str = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_str) {
      if (c == '\\') ++i;
      else if (c == '"') in_str = false;
      continue;
    }
    if (c == '"') in_str = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_str;
}

TEST(RegistryTest, JsonSnapshotRoundTrip) {
  MetricsRegistry reg;
  reg.counter("a.count").inc(3);
  reg.gauge("a.gauge").set(-7);
  reg.histogram("a.lat_ns").record_shared(100);
  reg.histogram("a.lat_ns").record_shared(200);
  const std::string json = reg.to_json();
  EXPECT_TRUE(json_is_balanced(json)) << json;
  EXPECT_NE(json.find("\"a.count\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"a.gauge\":-7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"a.lat_ns\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sum\":300"), std::string::npos) << json;

  reg.reset();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("a.count"), 0u);
  EXPECT_EQ(snap.histograms.at("a.lat_ns").count, 0u);
}

TEST(RegistryTest, JsonEscapesSpecialCharacters) {
  MetricsRegistry reg;
  reg.counter("weird\"name\\with\nstuff").inc();
  const std::string json = reg.to_json();
  EXPECT_TRUE(json_is_balanced(json)) << json;
  EXPECT_NE(json.find("weird\\\"name\\\\with\\nstuff"), std::string::npos)
      << json;
}

TEST(ErrcFromVerdictTest, RouterMappingIsExhaustiveAndDistinct) {
  using V = dataplane::BorderRouter::Verdict;
  // Success verdicts map to kOk.
  EXPECT_EQ(dataplane::errc_from_verdict(V::kForward), Errc::kOk);
  EXPECT_EQ(dataplane::errc_from_verdict(V::kDeliver), Errc::kOk);
  // Every drop verdict maps to a distinct, non-kOk error whose name
  // telemetry uses as the counter label.
  const std::vector<V> drops = {V::kBadHvf,  V::kExpired, V::kMalformed,
                                V::kBlocked, V::kReplay,  V::kOveruse};
  std::set<Errc> seen;
  for (const V v : drops) {
    const Errc e = dataplane::errc_from_verdict(v);
    EXPECT_NE(e, Errc::kOk);
    EXPECT_STRNE(errc_name(e), "unknown");
    seen.insert(e);
  }
  EXPECT_EQ(seen.size(), drops.size());
  EXPECT_EQ(dataplane::errc_from_verdict(V::kBadHvf), Errc::kAuthFailed);
  EXPECT_EQ(dataplane::errc_from_verdict(V::kOveruse), Errc::kOveruse);
}

TEST(ErrcFromVerdictTest, GatewayMappingIsExhaustiveAndDistinct) {
  using V = dataplane::Gateway::Verdict;
  EXPECT_EQ(dataplane::errc_from_verdict(V::kOk), Errc::kOk);
  const std::vector<V> drops = {V::kNoReservation, V::kRateLimited,
                                V::kExpired};
  std::set<Errc> seen;
  for (const V v : drops) {
    const Errc e = dataplane::errc_from_verdict(v);
    EXPECT_NE(e, Errc::kOk);
    seen.insert(e);
  }
  EXPECT_EQ(seen.size(), drops.size());
}

TEST(SpanTraceTest, NestedSpansAndSelfTime) {
  telemetry::SpanCollector col;
  EXPECT_FALSE(col.enabled());
  col.enable();
  // Simulated 3-hop chain: A calls B calls C (times in ns).
  const auto a = col.open("1-110", 0, 100);
  const auto b = col.open("1-100", 100, 80);
  const auto c = col.open("2-200", 150, 60);
  col.close(c, 250);  // C took 100
  col.close(b, 400);  // B subtree took 300
  col.close(a, 500);  // A subtree took 500
  const auto trace = col.take();
  ASSERT_EQ(trace.spans.size(), 3u);
  EXPECT_EQ(trace.spans[0].parent, -1);
  EXPECT_EQ(trace.spans[1].parent, 0);
  EXPECT_EQ(trace.spans[2].parent, 1);
  EXPECT_EQ(trace.spans[0].depth, 0);
  EXPECT_EQ(trace.spans[2].depth, 2);
  EXPECT_EQ(trace.spans[0].duration_ns, 500);
  EXPECT_EQ(trace.spans[1].duration_ns, 300);
  EXPECT_EQ(trace.spans[2].duration_ns, 100);
  // Self time excludes direct children: A = 500-300, B = 300-100, C = 100.
  EXPECT_EQ(trace.self_time_ns(0), 200);
  EXPECT_EQ(trace.self_time_ns(1), 200);
  EXPECT_EQ(trace.self_time_ns(2), 100);
  EXPECT_TRUE(json_is_balanced(trace.to_json()));
  // take() drained the collector.
  EXPECT_TRUE(col.trace().spans.empty());
}

// --- SpanCollector edge cases (drain/re-enable with open spans) --------------

TEST(SpanCollectorTest, TakeClosesOpenSpansAsTruncated) {
  telemetry::SpanCollector col;
  col.enable();
  const auto a = col.open("1-110", 0, 10);
  const auto b = col.open("1-100", 50, 5);
  col.close(b, 80);
  const auto c = col.open("2-200", 90, 7);
  // a and c are still open when the trace is drained.
  const auto trace = col.take();
  ASSERT_EQ(trace.spans.size(), 3u);
  EXPECT_TRUE(trace.spans[0].truncated);
  EXPECT_EQ(trace.spans[0].duration_ns, -1);
  EXPECT_FALSE(trace.spans[1].truncated);
  EXPECT_EQ(trace.spans[1].duration_ns, 30);
  EXPECT_TRUE(trace.spans[2].truncated);
  EXPECT_EQ(trace.spans[2].duration_ns, -1);

  // Tokens from before the drain are stale: closing them is a no-op
  // and must not corrupt the next trace.
  col.close(a, 1'000);
  col.close(c, 1'000);
  EXPECT_TRUE(col.trace().spans.empty());
  const auto d = col.open("3-300", 0, 1);
  col.close(d, 10);
  const auto next = col.take();
  ASSERT_EQ(next.spans.size(), 1u);
  EXPECT_EQ(next.spans[0].name, "3-300");
  EXPECT_EQ(next.spans[0].duration_ns, 10);
  EXPECT_FALSE(next.spans[0].truncated);
}

TEST(SpanCollectorTest, ReenableInvalidatesOutstandingTokens) {
  telemetry::SpanCollector col;
  col.enable();
  const auto a = col.open("1-110", 0, 10);
  col.enable();  // clears the trace and bumps the epoch
  EXPECT_FALSE(col.in_span());
  const auto b = col.open("1-100", 5, 1);
  col.close(a, 50);  // stale epoch: must not close b
  EXPECT_TRUE(col.in_span());
  col.close(b, 60);
  const auto trace = col.take();
  ASSERT_EQ(trace.spans.size(), 1u);
  EXPECT_EQ(trace.spans[0].name, "1-100");
  EXPECT_EQ(trace.spans[0].duration_ns, 55);
}

TEST(SpanCollectorTest, AnnotateAttachesToInnermostOpenSpan) {
  telemetry::SpanCollector col;
  col.annotate("ignored", "collector disabled");  // no-op, no crash
  col.enable();
  col.annotate("ignored", "no span open");  // no-op, no crash
  EXPECT_FALSE(col.in_span());
  const auto a = col.open("1-110", 0, 1);
  col.annotate("outer", "x");
  const auto b = col.open("1-100", 1, 1);
  col.annotate("res_id", "42");
  col.close(b, 2);
  col.annotate("verdict", "admitted");  // b closed: attaches to a again
  col.close(a, 3);
  const auto trace = col.take();
  ASSERT_EQ(trace.spans.size(), 2u);
  ASSERT_EQ(trace.spans[0].args.size(), 2u);
  EXPECT_EQ(trace.spans[0].args[0].first, "outer");
  EXPECT_EQ(trace.spans[0].args[1].first, "verdict");
  EXPECT_EQ(trace.spans[0].args[1].second, "admitted");
  ASSERT_EQ(trace.spans[1].args.size(), 1u);
  EXPECT_EQ(trace.spans[1].args[0].first, "res_id");
  EXPECT_EQ(trace.spans[1].args[0].second, "42");
}

TEST(SpanCollectorTest, SpanIdsNeverReusedAcrossDrains) {
  telemetry::SpanCollector col;
  col.enable();
  col.close(col.open("x", 0, 0), 1);
  const auto t1 = col.take();
  col.close(col.open("y", 0, 0), 1);
  const auto t2 = col.take();
  ASSERT_EQ(t1.spans.size(), 1u);
  ASSERT_EQ(t2.spans.size(), 1u);
  EXPECT_NE(t1.spans[0].id, t2.spans[0].id);
}

// --- StageProfiler -----------------------------------------------------------

// MetricSink that captures everything emitted, for name/value asserts.
struct CaptureSink final : telemetry::MetricSink {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> hists;
  void counter(std::string_view name, std::uint64_t value) override {
    counters[std::string(name)] += value;
  }
  void gauge(std::string_view name, std::int64_t value) override {
    gauges[std::string(name)] = value;
  }
  void histogram(std::string_view name,
                 const HistogramSnapshot& h) override {
    hists[std::string(name)] = h;
  }
};

TEST(StageProfilerTest, DisabledProfilerEmitsNothing) {
  telemetry::StageProfiler prof{"alpha", "beta"};
  EXPECT_FALSE(prof.enabled());
  EXPECT_EQ(prof.begin(), 0);  // disabled begin() never reads the clock
  EXPECT_EQ(prof.stage_count(), 2u);
  EXPECT_EQ(prof.stage_name(0), "alpha");
  CaptureSink sink;
  prof.collect_metrics(sink);
  EXPECT_TRUE(sink.hists.empty());  // never-run stages are elided
}

TEST(StageProfilerTest, PerStageHistogramsAndOccupancy) {
  telemetry::StageProfiler prof{"alpha", "beta"};
  prof.set_enabled(true);
  prof.record(0, 100, 228);  // 128 ns
  prof.record(0, 0, 100);
  prof.record(1, 0, 5'000);
  prof.record(1, 10, 5);    // clock went backwards: clamped to 0, counted
  prof.record(7, 0, 1);     // out-of-range stage index: ignored
  prof.count_batch(32);
  prof.count_batch(64);
  EXPECT_EQ(prof.batches(), 2u);

  EXPECT_EQ(prof.stage_snapshot(0).count, 2u);
  EXPECT_EQ(prof.stage_snapshot(0).sum, 228u);
  EXPECT_EQ(prof.stage_snapshot(1).count, 2u);
  EXPECT_EQ(prof.stage_snapshot(1).sum, 5'000u);
  const HistogramSnapshot occ = prof.occupancy_snapshot();
  EXPECT_EQ(occ.count, 2u);
  EXPECT_EQ(occ.sum, 96u);

  CaptureSink sink;
  prof.collect_metrics(sink);
  ASSERT_EQ(sink.hists.count("stage.alpha_ns"), 1u);
  ASSERT_EQ(sink.hists.count("stage.beta_ns"), 1u);
  ASSERT_EQ(sink.hists.count("batch_occupancy"), 1u);
  EXPECT_EQ(sink.hists.at("stage.alpha_ns").sum, 228u);

  prof.reset();
  EXPECT_EQ(prof.batches(), 0u);
  CaptureSink after;
  prof.collect_metrics(after);
  EXPECT_TRUE(after.hists.empty());
}

TEST(StageProfilerTest, SpanCaptureKeepsMostRecentWindowOldestFirst) {
  telemetry::StageProfiler prof{"stage"};
  prof.set_enabled(true);
  EXPECT_FALSE(prof.capturing());
  EXPECT_TRUE(prof.spans().empty());
  prof.set_span_capture(4);
  EXPECT_TRUE(prof.capturing());
  for (int i = 0; i < 6; ++i) {
    prof.record(0, i * 10, i * 10 + 5);
    prof.count_batch(1);
  }
  const auto spans = prof.spans();
  ASSERT_EQ(spans.size(), 4u);  // window of the most recent 4 of 6
  EXPECT_EQ(spans.front().t0_ns, 20);
  EXPECT_EQ(spans.front().batch, 2u);
  EXPECT_EQ(spans.back().t0_ns, 50);
  EXPECT_EQ(spans.back().batch, 5u);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LT(spans[i - 1].t0_ns, spans[i].t0_ns);  // oldest-first
  }
  prof.clear_spans();
  EXPECT_TRUE(prof.spans().empty());
}

// --- Perfetto trace export ---------------------------------------------------

TEST(PerfettoExportTest, TracksAreStableAndMetadataEmitted) {
  telemetry::PerfettoTraceBuilder builder;
  const auto t1 = builder.track("control-plane", "1-110");
  const auto t2 = builder.track("control-plane", "1-100");
  const auto t3 = builder.track("data-plane", "1-110");
  const auto t1again = builder.track("control-plane", "1-110");
  EXPECT_EQ(t1.pid, t1again.pid);
  EXPECT_EQ(t1.tid, t1again.tid);
  EXPECT_EQ(t1.pid, t2.pid);   // same process
  EXPECT_NE(t1.tid, t2.tid);   // distinct thread per track
  EXPECT_NE(t1.pid, t3.pid);   // distinct process
  EXPECT_EQ(builder.track_count(), 3u);

  builder.add_complete(t1, "work", "bus", 1'000, 500, {{"res_id", "7"}});
  builder.add_instant(t2, "mark", "lifecycle", 2'000);
  EXPECT_EQ(builder.event_count(), 2u);
  const std::string json = builder.to_json();
  EXPECT_TRUE(json_is_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"res_id\":\"7\""), std::string::npos);
}

TEST(PerfettoExportTest, SpanTraceGetsOneTrackPerAsAndTruncatedInstants) {
  telemetry::SpanCollector col;
  col.enable();
  const auto a = col.open("1-110", 0, 10);
  const auto b = col.open("1-100", 100, 5);
  col.close(b, 300);
  (void)a;  // left open: drained as truncated
  const auto trace = col.take();

  telemetry::PerfettoTraceBuilder builder;
  builder.add_span_trace(trace, "control-plane", "setup");
  EXPECT_EQ(builder.track_count(), 2u);  // one per AS
  EXPECT_EQ(builder.event_count(), 2u);  // one complete + one instant
  const std::string json = builder.to_json();
  EXPECT_TRUE(json_is_balanced(json)) << json;
  EXPECT_NE(json.find("truncated"), std::string::npos) << json;
  EXPECT_NE(json.find("setup: "), std::string::npos) << json;
}

TEST(PerfettoExportTest, EventsGroupByAsFieldThenComponent) {
  SimClock clock(1'000);
  telemetry::EventLog log(clock);
  log.emit(telemetry::Severity::kInfo, "cserv", "eer.admitted")
      .str("as", "1-110")
      .u64("res_id", 7);
  clock.advance(10);
  log.emit(telemetry::Severity::kInfo, "cserv", "segr.expired")
      .str("as", "1-100");
  clock.advance(10);
  log.emit(telemetry::Severity::kWarn, "renewal", "segr.failed");  // no AS

  telemetry::PerfettoTraceBuilder builder;
  builder.add_events(log.events(), "lifecycle");
  EXPECT_EQ(builder.track_count(), 3u);  // 1-110, 1-100, renewal
  EXPECT_EQ(builder.event_count(), 3u);
  EXPECT_TRUE(json_is_balanced(builder.to_json()));
}

TEST(PerfettoExportTest, StageSpansRenderOnOneTrack) {
  telemetry::StageProfiler prof{"alpha", "beta"};
  prof.set_enabled(true);
  prof.set_span_capture(8);
  prof.record(0, 1'000, 1'500);
  prof.record(1, 1'500, 1'800);
  prof.count_batch(64);

  telemetry::PerfettoTraceBuilder builder;
  builder.add_stage_spans(prof, prof.spans(), "data-plane", "gateway 1-110");
  EXPECT_EQ(builder.track_count(), 1u);
  EXPECT_EQ(builder.event_count(), 2u);
  const std::string json = builder.to_json();
  EXPECT_TRUE(json_is_balanced(json)) << json;
  EXPECT_NE(json.find("alpha"), std::string::npos);
  EXPECT_NE(json.find("beta"), std::string::npos);
}

// --- Cross-AS trace assembly -------------------------------------------------

// A span as the bus would record it: wire ids stamped, duration known.
telemetry::Span traced_span(std::string name, std::uint64_t span_id,
                            std::uint64_t parent_id, std::int64_t start_ns,
                            std::int64_t duration_ns) {
  telemetry::Span s;
  s.name = std::move(name);
  s.category = "bus";
  s.start_ns = start_ns;
  s.duration_ns = duration_ns;
  s.trace_hi = 0xABCD;
  s.trace_lo = 0x1234;
  s.ctx_span = span_id;
  s.ctx_parent = parent_id;
  return s;
}

TEST(TraceAssemblerTest, StitchesSpansAcrossIndependentCaptures) {
  // The root hop in one capture, its two downstream hops in another —
  // the wire ids alone must reconstruct the tree.
  telemetry::SpanTrace cap_a;
  cap_a.spans.push_back(traced_span("1-100", /*span=*/10, /*parent=*/0,
                                    /*start=*/0, /*dur=*/1'000));
  telemetry::SpanTrace cap_b;
  cap_b.spans.push_back(traced_span("1-110", 11, 10, 100, 400));
  cap_b.spans.push_back(traced_span("1-120", 12, 11, 150, 250));

  telemetry::TraceAssembler assembler;
  assembler.add_capture(cap_b);  // order of captures must not matter
  assembler.add_capture(cap_a);
  const auto traces = assembler.assemble();

  ASSERT_EQ(traces.size(), 1u);
  const auto& t = traces[0];
  ASSERT_EQ(t.hops.size(), 3u);
  // DFS order = path traversal order for a linear chain.
  EXPECT_EQ(t.hops[0].as, "1-100");
  EXPECT_EQ(t.hops[1].as, "1-110");
  EXPECT_EQ(t.hops[2].as, "1-120");
  EXPECT_EQ(t.hops[0].depth, 0);
  EXPECT_EQ(t.hops[1].depth, 1);
  EXPECT_EQ(t.hops[2].depth, 2);
  EXPECT_EQ(t.hops[1].parent_span_id, t.hops[0].span_id);
  EXPECT_EQ(t.hops[2].parent_span_id, t.hops[1].span_id);
  // Latency attribution: self = subtree minus direct children.
  EXPECT_EQ(t.total_ns(), 1'000);
  EXPECT_EQ(t.hops[0].self_ns, 600);
  EXPECT_EQ(t.hops[1].self_ns, 150);
  EXPECT_EQ(t.hops[2].self_ns, 250);
  EXPECT_EQ(t.bottleneck(), 0u);
  EXPECT_FALSE(t.hops[0].orphan);
  EXPECT_EQ(t.trace_id_hex(),
            "000000000000abcd0000000000001234");
}

TEST(TraceAssemblerTest, SeparateTraceIdsYieldSeparateTrees) {
  telemetry::SpanTrace cap;
  cap.spans.push_back(traced_span("1-100", 1, 0, 0, 100));
  telemetry::Span other = traced_span("2-200", 2, 0, 50, 80);
  other.trace_lo = 0x9999;  // different trace id
  cap.spans.push_back(other);

  telemetry::TraceAssembler assembler;
  assembler.add_capture(cap);
  const auto traces = assembler.assemble();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].hops.size(), 1u);
  EXPECT_EQ(traces[1].hops.size(), 1u);
}

TEST(TraceAssemblerTest, MissingParentBecomesCountedOrphanRoot) {
  MetricsRegistry registry;
  telemetry::TraceAssembler assembler(&registry);
  telemetry::SpanTrace cap;
  cap.spans.push_back(traced_span("1-100", 10, 0, 0, 500));
  cap.spans.push_back(traced_span("1-999", 20, /*parent=*/77, 100, 50));
  assembler.add_capture(cap);
  const auto traces = assembler.assemble();

  ASSERT_EQ(traces.size(), 1u);
  ASSERT_EQ(traces[0].hops.size(), 2u);
  // The orphan is kept as a second root at depth 0, flagged.
  EXPECT_FALSE(traces[0].hops[0].orphan);
  EXPECT_TRUE(traces[0].hops[1].orphan);
  EXPECT_EQ(traces[0].hops[1].depth, 0);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("cserv.trace.orphan_spans"), 1u);
  EXPECT_EQ(snap.counters.at("cserv.trace.assembled"), 1u);
}

TEST(TraceAssemblerTest, UntracedAndTruncatedSpansAreCounted) {
  MetricsRegistry registry;
  telemetry::TraceAssembler assembler(&registry);
  telemetry::SpanTrace cap;
  telemetry::Span plain;  // no trace ids: pre-extension span
  plain.name = "1-100";
  plain.duration_ns = 10;
  cap.spans.push_back(plain);
  telemetry::Span cut = traced_span("1-110", 5, 0, 0, -1);
  cut.truncated = true;
  cap.spans.push_back(cut);
  assembler.add_capture(cap);
  const auto traces = assembler.assemble();

  ASSERT_EQ(traces.size(), 1u);  // only the traced span forms a tree
  EXPECT_TRUE(traces[0].hops[0].truncated);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("cserv.trace.untraced_spans"), 1u);
  EXPECT_EQ(snap.counters.at("cserv.trace.truncated_spans"), 1u);
}

TEST(TraceAssemblerTest, MetricsIncludePerHopLatencyHistograms) {
  MetricsRegistry registry;
  telemetry::TraceAssembler assembler(&registry);
  telemetry::SpanTrace cap;
  telemetry::Span root = traced_span("1-100", 1, 0, 0, 1'000);
  root.args.emplace_back("admission_ns", "250");
  cap.spans.push_back(root);
  assembler.add_capture(cap);
  (void)assembler.assemble();

  const auto snap = registry.snapshot();
  ASSERT_TRUE(snap.histograms.count("cserv.trace.hop_total_ns"));
  ASSERT_TRUE(snap.histograms.count("cserv.trace.hop_self_ns"));
  ASSERT_TRUE(snap.histograms.count("cserv.trace.admission_ns"));
  EXPECT_EQ(snap.histograms.at("cserv.trace.hop_total_ns").count, 1u);
  EXPECT_EQ(snap.histograms.at("cserv.trace.admission_ns").sum, 250u);
}

TEST(TraceAssemblerTest, FindByResIdAndWaterfall) {
  telemetry::SpanTrace cap;
  telemetry::Span root = traced_span("1-100", 1, 0, 0, 1'000);
  root.args.emplace_back("res_id", "42");
  root.args.emplace_back("verdict", "segr.admitted");
  cap.spans.push_back(root);
  cap.spans.push_back(traced_span("1-110", 2, 1, 100, 800));

  telemetry::TraceAssembler assembler;
  assembler.add_capture(cap);
  const auto traces = assembler.assemble();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].res_id(), 42);
  EXPECT_EQ(telemetry::TraceAssembler::find_by_res_id(traces, 42),
            &traces[0]);
  EXPECT_EQ(telemetry::TraceAssembler::find_by_res_id(traces, 7), nullptr);

  const std::string w = traces[0].waterfall();
  EXPECT_NE(w.find("res_id=42"), std::string::npos) << w;
  EXPECT_NE(w.find("1-100"), std::string::npos);
  EXPECT_NE(w.find("1-110"), std::string::npos);
  EXPECT_NE(w.find("<-- bottleneck"), std::string::npos);
  EXPECT_NE(w.find("[segr.admitted]"), std::string::npos);
  // The downstream hop holds the larger self time, so it is the
  // bottleneck row (marked with '*').
  EXPECT_EQ(traces[0].bottleneck(), 1u);
  EXPECT_NE(w.find("* [1] 1-110"), std::string::npos) << w;
}

TEST(TraceAssemblerTest, ChildBeforeParentInOneCaptureStillLinks) {
  // Causal order violated inside a single capture: both children appear
  // before the root span. Linking goes through the wire ids over the
  // whole member set, so arrival order must not create orphans.
  MetricsRegistry registry;
  telemetry::TraceAssembler assembler(&registry);
  telemetry::SpanTrace cap;
  cap.spans.push_back(traced_span("1-120", 12, 11, 150, 250));
  cap.spans.push_back(traced_span("1-110", 11, 10, 100, 400));
  cap.spans.push_back(traced_span("1-100", 10, 0, 0, 1'000));
  assembler.add_capture(cap);
  const auto traces = assembler.assemble();

  ASSERT_EQ(traces.size(), 1u);
  ASSERT_EQ(traces[0].hops.size(), 3u);
  EXPECT_EQ(traces[0].hops[0].as, "1-100");
  EXPECT_EQ(traces[0].hops[1].as, "1-110");
  EXPECT_EQ(traces[0].hops[2].as, "1-120");
  for (const auto& h : traces[0].hops) EXPECT_FALSE(h.orphan);
  EXPECT_EQ(registry.snapshot().counters.at("cserv.trace.orphan_spans"), 0u);
}

TEST(TraceAssemblerTest, DuplicateSpanIdsLinkToTheFirstOccurrence) {
  // Two spans claim wire id 11 (a buggy or adversarial reporter). The
  // first occurrence wins the id table: the child links to it, and the
  // impostor survives as a plain sibling — never a crash, never a cycle.
  telemetry::SpanTrace cap;
  cap.spans.push_back(traced_span("1-100", 10, 0, 0, 1'000));
  cap.spans.push_back(traced_span("1-110", 11, 10, 100, 400));
  telemetry::Span impostor = traced_span("9-999", 11, 10, 600, 50);
  cap.spans.push_back(impostor);
  cap.spans.push_back(traced_span("1-120", 12, 11, 150, 250));

  telemetry::TraceAssembler assembler;
  assembler.add_capture(cap);
  const auto traces = assembler.assemble();

  ASSERT_EQ(traces.size(), 1u);
  ASSERT_EQ(traces[0].hops.size(), 4u);
  // DFS: root -> first 11 -> its child 12, then the impostor sibling.
  EXPECT_EQ(traces[0].hops[0].as, "1-100");
  EXPECT_EQ(traces[0].hops[1].as, "1-110");
  EXPECT_EQ(traces[0].hops[2].as, "1-120");
  EXPECT_EQ(traces[0].hops[2].depth, 2);
  EXPECT_EQ(traces[0].hops[3].as, "9-999");
  EXPECT_EQ(traces[0].hops[3].depth, 1);
  EXPECT_FALSE(traces[0].hops[3].orphan);  // its parent id resolves fine
}

TEST(TraceAssemblerTest, SelfParentedSpanBecomesCountedOrphanRoot) {
  // ctx_parent == ctx_span would be a cycle; the assembler must break
  // it into an orphan root rather than recurse.
  MetricsRegistry registry;
  telemetry::TraceAssembler assembler(&registry);
  telemetry::SpanTrace cap;
  cap.spans.push_back(traced_span("1-100", 7, 7, 0, 100));
  assembler.add_capture(cap);
  const auto traces = assembler.assemble();

  ASSERT_EQ(traces.size(), 1u);
  ASSERT_EQ(traces[0].hops.size(), 1u);
  EXPECT_TRUE(traces[0].hops[0].orphan);
  EXPECT_EQ(traces[0].hops[0].depth, 0);
  EXPECT_EQ(registry.snapshot().counters.at("cserv.trace.orphan_spans"), 1u);
}

TEST(TraceAssemblerTest, IrregularityCountersAccumulateAcrossRounds) {
  // assemble() consumes pending spans but the cserv.trace.* counters
  // are cumulative — a monitoring plane reads them as rates.
  MetricsRegistry registry;
  telemetry::TraceAssembler assembler(&registry);
  for (int round = 0; round < 3; ++round) {
    telemetry::SpanTrace cap;
    // Orphan: parent 99 exists in no capture of this round.
    telemetry::Span lost = traced_span("1-110", 20 + round, 99, 0, 50);
    // Truncated child of it would stay orphaned too; keep one truncated
    // root alongside.
    telemetry::Span cut = traced_span("1-100", 40 + round, 0, 0, -1);
    cut.truncated = true;
    cap.spans.push_back(lost);
    cap.spans.push_back(cut);
    telemetry::Span plain;  // untraced
    plain.name = "1-120";
    cap.spans.push_back(plain);
    assembler.add_capture(cap);
    const auto traces = assembler.assemble();
    ASSERT_EQ(traces.size(), 1u);
    EXPECT_TRUE(assembler.assemble().empty());  // pending was consumed
  }
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("cserv.trace.assembled"), 3u);
  EXPECT_EQ(snap.counters.at("cserv.trace.orphan_spans"), 3u);
  EXPECT_EQ(snap.counters.at("cserv.trace.truncated_spans"), 3u);
  EXPECT_EQ(snap.counters.at("cserv.trace.untraced_spans"), 3u);
}

TEST(PerfettoExportTest, FlowArrowsLinkParentAndChildTracks) {
  telemetry::SpanTrace cap;
  cap.spans.push_back(traced_span("1-100", 10, 0, 0, 1'000));
  cap.spans.push_back(traced_span("1-110", 11, 10, 100, 400));

  telemetry::PerfettoTraceBuilder builder;
  builder.add_span_trace(cap, "control-plane", "setup");
  const std::string json = builder.to_json();
  EXPECT_TRUE(json_is_balanced(json)) << json;
  // One hop boundary: a flow start on the parent's track, the finish on
  // the child's, bound by the child's wire span id.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"id\":11"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"id\":10"), std::string::npos) << json;  // root: none
}

TEST(PerfettoExportTest, NoFlowArrowsWithoutWireIds) {
  telemetry::SpanCollector col;
  col.enable();
  const auto a = col.open("1-100", 0, 10);
  col.close(a, 500);
  telemetry::PerfettoTraceBuilder builder;
  builder.add_span_trace(col.take(), "control-plane", "setup");
  const std::string json = builder.to_json();
  EXPECT_EQ(json.find("\"ph\":\"s\""), std::string::npos) << json;
  EXPECT_EQ(json.find("\"ph\":\"f\""), std::string::npos) << json;
}

// --- Concurrent stress (run under the tsan preset) ---------------------------

// Writer threads hammer the shared-safe surfaces (Counter, Histogram::
// record_shared, EventLog) plus thread-owned single-writer facilities
// (StageProfiler, FlightRecorder — one instance per thread, per their
// documented contracts) while a reader concurrently snapshots the
// registry and renders both exports. TSan proves the synchronization;
// the final counts prove nothing was lost.
TEST(TelemetryStressTest, ConcurrentWritersWhileReaderSnapshots) {
  SystemClock clock;
  MetricsRegistry registry;
  telemetry::EventLog events(clock, 1024);
  Counter& ops = registry.counter("stress.ops");
  Histogram& lat = registry.histogram("stress.lat_ns");

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_written{0};
  constexpr int kWriters = 3;
  std::vector<std::thread> writers;
  writers.reserve(kWriters + 1);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      telemetry::FlightRecorder recorder({.capacity = 64, .sample_every = 1,
                                          .record_drops = true});
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ops.inc();
        lat.record_shared(n % 4'096);
        events.emit(telemetry::Severity::kInfo, "stress", "tick")
            .u64("n", n)
            .u64("writer", static_cast<std::uint64_t>(w));
        if (recorder.sample_tick()) {
          telemetry::FlightRecord r;
          r.res_id = n;
          recorder.commit(r);
        }
        ++n;
      }
      EXPECT_EQ(recorder.committed(), n);  // ring stayed thread-local
      total_written.fetch_add(n, std::memory_order_relaxed);
    });
  }
  // Single-writer profiler on its own thread (span capture off: the
  // span ring is part of the single-writer surface, not the shared one).
  writers.emplace_back([&] {
    telemetry::StageProfiler prof{"hot", "cold"};
    prof.set_enabled(true);
    std::int64_t t = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      prof.record(0, t, t + 10);
      prof.record(1, t + 10, t + 30);
      prof.count_batch(32);
      t += 30;
    }
    EXPECT_EQ(prof.stage_snapshot(0).count, prof.batches());
  });

  // Reader: concurrent snapshots + both text exports must be torn-free
  // (every counter monotone, every histogram internally consistent).
  std::uint64_t last_ops = 0;
  for (int i = 0; i < 25; ++i) {
    const MetricsSnapshot snap = registry.snapshot();
    EXPECT_GE(snap.counters.at("stress.ops"), last_ops);
    last_ops = snap.counters.at("stress.ops");
    EXPECT_TRUE(json_is_balanced(snap.to_json()));
    const std::string om = telemetry::to_openmetrics(snap);
    EXPECT_NE(om.find("# EOF"), std::string::npos);
    (void)events.size();
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : writers) th.join();

  EXPECT_EQ(ops.value(), total_written.load());
  EXPECT_EQ(lat.snapshot().count, total_written.load());
  EXPECT_EQ(events.size() + events.dropped(), total_written.load());
}

}  // namespace
}  // namespace colibri
