// Unit tests: DRKey derivation, secret-value schedule, key server, cache,
// simulated PKI.
#include <gtest/gtest.h>

#include "colibri/drkey/drkey.hpp"
#include "colibri/drkey/keyserver.hpp"

namespace colibri::drkey {
namespace {

Key128 master(std::uint8_t seed) {
  Key128 k;
  k.bytes.fill(seed);
  return k;
}

const AsId kAsA{1, 10};
const AsId kAsB{1, 20};
const AsId kAsC{2, 30};

TEST(DeriveTest, DeterministicAndDirectional) {
  const Key128 sv = master(1);
  EXPECT_EQ(derive_as_key(sv, kAsB), derive_as_key(sv, kAsB));
  EXPECT_NE(derive_as_key(sv, kAsB), derive_as_key(sv, kAsC));
}

TEST(DeriveTest, AsymmetricBetweenAses) {
  // K_{A->B} (from A's secret) != K_{B->A} (from B's secret).
  EXPECT_NE(derive_as_key(master(1), kAsB), derive_as_key(master(2), kAsA));
}

TEST(DeriveTest, HostKeysDifferPerHost) {
  const Key128 as_key = derive_as_key(master(1), kAsB);
  const auto h1 = derive_host_key(as_key, HostAddr::from_u64(1));
  const auto h2 = derive_host_key(as_key, HostAddr::from_u64(2));
  EXPECT_NE(h1, h2);
  EXPECT_NE(h1, as_key);
}

TEST(ScheduleTest, EpochAlignment) {
  SecretValueSchedule sched(master(3), kAsA, 3600);
  const Epoch e = sched.epoch_at(7500);
  EXPECT_EQ(e.begin, 7200u);
  EXPECT_EQ(e.end, 10800u);
  EXPECT_TRUE(e.contains(7200));
  EXPECT_TRUE(e.contains(10799));
  EXPECT_FALSE(e.contains(10800));
}

TEST(ScheduleTest, SecretValueStablePerEpochRotatesAcross) {
  SecretValueSchedule sched(master(3), kAsA, 3600);
  EXPECT_EQ(sched.secret_value(7200), sched.secret_value(10799));
  EXPECT_NE(sched.secret_value(7200), sched.secret_value(10800));
}

TEST(ScheduleTest, DifferentOwnersDifferentValues) {
  SecretValueSchedule a(master(3), kAsA, 3600);
  SecretValueSchedule b(master(3), kAsB, 3600);
  EXPECT_NE(a.secret_value(100), b.secret_value(100));
}

TEST(EngineTest, FastSideMatchesSlowSideFetch) {
  SimulatedPki pki;
  Engine engine_a(master(7), kAsA);
  KeyServer server_a(engine_a, pki.enroll(kAsA));

  // B fetches K_{A->B} and must get exactly what A derives on the fly.
  const UnixSec now = 123456;
  const KeyResponse resp = server_a.fetch(kAsB, now);
  EXPECT_EQ(resp.key, engine_a.as_key(kAsB, now));

  KeyCache cache_b(kAsB, pki);
  EXPECT_TRUE(cache_b.insert(kAsA, resp));
  auto cached = cache_b.lookup(kAsA, now);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(*cached, engine_a.as_key(kAsB, now));
}

TEST(KeyCacheTest, RejectsForgedResponse) {
  SimulatedPki pki;
  Engine engine_a(master(7), kAsA);
  KeyServer server_a(engine_a, pki.enroll(kAsA));
  KeyResponse resp = server_a.fetch(kAsB, 100);
  resp.key.bytes[0] ^= 1;  // tamper

  KeyCache cache_b(kAsB, pki);
  EXPECT_FALSE(cache_b.insert(kAsA, resp));
  EXPECT_EQ(cache_b.size(), 0u);
}

TEST(KeyCacheTest, RejectsUnknownSigner) {
  SimulatedPki pki;
  Engine engine_a(master(7), kAsA);
  // A was never enrolled in this PKI instance.
  Key128 rogue;
  rogue.bytes.fill(9);
  KeyServer server_a(engine_a, rogue);
  KeyCache cache_b(kAsB, pki);
  EXPECT_FALSE(cache_b.insert(kAsA, server_a.fetch(kAsB, 100)));
}

TEST(KeyCacheTest, MissOutsideEpoch) {
  SimulatedPki pki;
  Engine engine_a(master(7), kAsA);  // default epoch: 1 day
  KeyServer server_a(engine_a, pki.enroll(kAsA));
  KeyCache cache_b(kAsB, pki);
  ASSERT_TRUE(cache_b.insert(kAsA, server_a.fetch(kAsB, 1000)));
  EXPECT_TRUE(cache_b.lookup(kAsA, 1000).has_value());
  EXPECT_FALSE(cache_b.lookup(kAsA, kDefaultEpochSeconds + 5).has_value());
}

TEST(KeyCacheTest, ExpireDropsOldEpochs) {
  SimulatedPki pki;
  Engine engine_a(master(7), kAsA, 100);
  KeyServer server_a(engine_a, pki.enroll(kAsA));
  KeyCache cache_b(kAsB, pki);
  ASSERT_TRUE(cache_b.insert(kAsA, server_a.fetch(kAsB, 50)));
  ASSERT_TRUE(cache_b.insert(kAsA, server_a.fetch(kAsB, 150)));
  EXPECT_EQ(cache_b.size(), 2u);
  EXPECT_EQ(cache_b.expire(120), 1u);
  EXPECT_EQ(cache_b.size(), 1u);
}

TEST(PkiTest, EnrollIsIdempotent) {
  SimulatedPki pki;
  const Key128 k1 = pki.enroll(kAsA);
  const Key128 k2 = pki.enroll(kAsA);
  EXPECT_EQ(k1, k2);
  EXPECT_NE(k1, pki.enroll(kAsB));
}

TEST(PkiTest, SignVerifyRoundTrip) {
  SimulatedPki pki;
  const Key128 secret = pki.enroll(kAsA);
  const Bytes msg = {1, 2, 3};
  const auto sig = SimulatedPki::sign(secret, msg);
  EXPECT_TRUE(pki.verify(kAsA, msg, sig));
  EXPECT_FALSE(pki.verify(kAsB, msg, sig));
  Bytes other = {1, 2, 4};
  EXPECT_FALSE(pki.verify(kAsA, other, sig));
}

// Property: keys for many (owner, peer, epoch) combinations are distinct.
TEST(DeriveTest, NoAccidentalCollisionsAcrossPeers) {
  const Key128 sv = master(5);
  std::set<std::array<std::uint8_t, 16>> seen;
  for (std::uint64_t as = 1; as <= 200; ++as) {
    const auto k = derive_as_key(sv, AsId{1, as});
    EXPECT_TRUE(seen.insert(k.bytes).second) << "collision at " << as;
  }
}

}  // namespace
}  // namespace colibri::drkey
