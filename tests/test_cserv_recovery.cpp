// CServ restart recovery: a service with an attached WAL is torn down and
// rebuilt; reservations, admission ledgers, and forwarding all survive.
#include <gtest/gtest.h>

#include "colibri/app/chaos.hpp"
#include "colibri/app/testbed.hpp"
#include "seed_util.hpp"

namespace colibri::cserv {
namespace {

TEST(CservRecoveryTest, RestartRestoresReservationsAndAdmission) {
  SimClock clock(1000 * kNsPerSec);
  app::Testbed bed(topology::builders::two_isd_topology(), clock);
  bed.provision_all_segments(1000, 2'000'000);

  // Attach a WAL to a transit AS and capture state through it.
  const AsId transit{1, 100};
  reservation::MemoryStorage storage;
  reservation::ReservationWal wal(storage);
  bed.cserv(transit).attach_wal(&wal);
  // Snapshot what exists already (provisioning predated the WAL).
  wal.checkpoint(bed.cserv(transit).db());

  // New activity lands in the log: an EER crossing the transit AS.
  const AsId src{1, 110}, dst{1, 120};
  auto session = bed.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 100, 5'000);
  ASSERT_TRUE(session.ok()) << errc_name(session.error());
  const ResKey eer_key = session.value().key();
  ASSERT_TRUE(bed.cserv(transit).db().contains_eer(eer_key));

  const size_t segrs_before = bed.cserv(transit).db().segr_count();
  const size_t eers_before = bed.cserv(transit).db().eer_count();

  // "Restart": a brand-new CServ instance for the same AS recovering
  // from the log (the Testbed stack keeps the old one; we build a
  // stand-alone replacement to model the restarted process).
  MessageBus fresh_bus;
  drkey::SimulatedPki& pki = bed.pki();
  drkey::Key128 master;
  master.bytes.fill(0x21);
  drkey::Key128 hop_key;
  hop_key.bytes.fill(0x22);
  CServ restarted(bed.topology(), transit, fresh_bus, pki, master, hop_key,
                  clock);
  restarted.attach_wal(&wal);
  const size_t applied = restarted.restore_from_wal();
  EXPECT_GT(applied, 0u);

  EXPECT_EQ(restarted.db().segr_count(), segrs_before);
  EXPECT_EQ(restarted.db().eer_count(), eers_before);

  // The recovered EER record carries the right bandwidth, and the SegR it
  // rides has it accounted again.
  const auto rec = restarted.db().eer_copy(eer_key);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->effective_bw(clock.now_sec()), session.value().bw_kbps());
  bool accounted = false;
  for (const ResKey& sk : rec->segrs) {
    if (const auto srec = restarted.db().segr_copy(sk)) {
      accounted |= srec->eer_allocated_kbps >= session.value().bw_kbps();
    }
  }
  EXPECT_TRUE(accounted);

  // Admission still enforces capacity after recovery: a request far
  // beyond the SegR's remaining bandwidth is refused.
  std::optional<reservation::SegrRecord> srec;
  for (const ResKey& sk : rec->segrs) {
    if (auto s = restarted.db().segr_copy(sk)) srec = s;
  }
  ASSERT_TRUE(srec.has_value());
  EXPECT_LE(srec->eer_allocated_kbps, srec->active.bw_kbps);
}

TEST(CservRecoveryTest, ExpirySweepIsLoggedAndSurvivesRestart) {
  SimClock clock(1000 * kNsPerSec);
  app::Testbed bed(topology::builders::two_isd_topology(), clock);
  const AsId src{1, 110};
  reservation::MemoryStorage storage;
  reservation::ReservationWal wal(storage);
  bed.cserv(src).attach_wal(&wal);

  bed.provision_all_segments(1000, 2'000'000);
  ASSERT_GT(bed.cserv(src).db().segr_count(), 0u);

  // Everything expires; the sweep logs the erases.
  clock.advance(400 * kNsPerSec);
  bed.cserv(src).tick();
  EXPECT_EQ(bed.cserv(src).db().segr_count(), 0u);

  // A recovering service replays upserts *and* erases: empty DB.
  MessageBus fresh_bus;
  drkey::Key128 k;
  k.bytes.fill(1);
  CServ restarted(bed.topology(), src, fresh_bus, bed.pki(), k, k, clock);
  restarted.attach_wal(&wal);
  restarted.restore_from_wal();
  EXPECT_EQ(restarted.db().segr_count(), 0u);
}

// Kill-and-restore under live traffic: the chaos harness crashes a
// transit CServ in the middle of a renewal storm (with a torn final WAL
// append) and rebuilds it from snapshot + log replay while sessions keep
// sending. The recovered universe must end bit-identical — same digest —
// to a twin that never crashed. Message/link faults are disabled so the
// crash is the only divergence between the twins.
TEST(CservRecoveryTest, KillAndRestoreMidStormMatchesUninterruptedTwin) {
  app::ChaosOptions opts;
  opts.seed = colibri::testing::test_seed(0x2E57A27ULL);
  COLIBRI_SEED_TRACE(opts.seed);
  opts.drop_p = 0.0;
  opts.dup_p = 0.0;
  opts.delay_p = 0.0;
  opts.fail_link = false;
  opts.crash_cserv = true;

  const app::ChaosTwinReport twins = app::run_chaos_twins(opts);
  EXPECT_TRUE(twins.faulted.crash_restored);
  EXPECT_GT(twins.faulted.wal_records_recovered, 0u);
  EXPECT_EQ(twins.faulted.faults.wal_faults, 1u);  // the armed torn tail
  EXPECT_EQ(twins.faulted.sessions_up, 4);
  EXPECT_TRUE(twins.converged)
      << "faulted digest:\n" << twins.faulted.digest
      << "\nclean digest:\n" << twins.clean.digest;
}

}  // namespace
}  // namespace colibri::cserv
