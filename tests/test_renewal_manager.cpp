// Tests: automatic SegR renewal — reservations stay alive indefinitely,
// demands track utilization, whitelists survive version bumps, and live
// EER sessions keep flowing across a 20-minute simulated run.
#include <gtest/gtest.h>

#include "colibri/app/testbed.hpp"
#include "colibri/cserv/renewal_manager.hpp"

namespace colibri::cserv {
namespace {

class RenewalManagerTest : public ::testing::Test {
 protected:
  RenewalManagerTest()
      : clock_(1000 * kNsPerSec),
        bed_(topology::builders::two_isd_topology(), clock_) {
    bed_.provision_all_segments(1000, 2'000'000);
  }

  SimClock clock_;
  app::Testbed bed_;
};

TEST_F(RenewalManagerTest, ManageAllLocalPicksUpOwnSegrs) {
  const AsId src{1, 110};
  RenewalManager mgr(bed_.cserv(src));
  const size_t n = mgr.manage_all_local();
  EXPECT_GT(n, 0u);
  EXPECT_EQ(mgr.managed(), n);
  // Idempotent.
  EXPECT_EQ(mgr.manage_all_local(), 0u);
}

TEST_F(RenewalManagerTest, RenewsAheadOfExpiryAndActivates) {
  const AsId src{1, 110};
  RenewalManager mgr(bed_.cserv(src));
  mgr.manage_all_local();

  ResKey any_key;
  bed_.cserv(src).db().for_each_segr(
      [&](const reservation::SegrRecord& rec) {
        if (rec.key.src_as == src) any_key = rec.key;
      });
  const auto rec = bed_.cserv(src).db().segr_copy(any_key);
  ASSERT_TRUE(rec.has_value());
  const UnixSec first_expiry = rec->active.exp_time;

  // Within the lead window nothing happens...
  mgr.tick(clock_.now_sec());
  EXPECT_EQ(mgr.stats().renewed, 0u);

  // ...but inside it, every managed SegR is renewed and activated.
  clock_.advance(static_cast<TimeNs>(first_expiry - 30 - clock_.now_sec()) *
                 kNsPerSec);
  mgr.tick(clock_.now_sec());
  EXPECT_EQ(mgr.stats().renewed, mgr.managed());
  EXPECT_EQ(mgr.stats().activated, mgr.managed());

  const auto renewed = bed_.cserv(src).db().segr_copy(any_key);
  ASSERT_TRUE(renewed.has_value());
  EXPECT_GT(renewed->active.exp_time, first_expiry);
  EXPECT_GT(renewed->active.version, 0);
  EXPECT_FALSE(renewed->pending.has_value());
}

TEST_F(RenewalManagerTest, PlanBucketsDueKeysByShardInOrder) {
  const AsId src{1, 110};
  auto& db = bed_.cserv(src).db();
  RenewalManager mgr(bed_.cserv(src));
  const size_t managed = mgr.manage_all_local();
  ASSERT_GT(managed, 0u);

  // Nothing due outside the lead window.
  EXPECT_TRUE(mgr.plan(clock_.now_sec()).empty());

  // Everything was provisioned together, so the whole fleet comes due in
  // the same window — the correlated storm, planned as per-shard batches.
  clock_.advance(260 * kNsPerSec);
  const auto batches = mgr.plan(clock_.now_sec());
  size_t total = 0;
  size_t last_shard = 0;
  for (size_t i = 0; i < batches.size(); ++i) {
    const auto& batch = batches[i];
    EXPECT_FALSE(batch.due.empty());
    if (i > 0) EXPECT_GT(batch.shard, last_shard);  // ascending shards
    last_shard = batch.shard;
    ResId prev = 0;
    for (const ResKey& key : batch.due) {
      EXPECT_EQ(db.shard_of(key.res_id), batch.shard);
      EXPECT_GE(key.res_id, prev);  // ResId-ordered inside the batch
      prev = key.res_id;
      ++total;
    }
  }
  EXPECT_EQ(total, managed);

  // The tick drains exactly those batches and reports them.
  mgr.tick(clock_.now_sec());
  EXPECT_EQ(mgr.stats().renewed, managed);
  EXPECT_EQ(mgr.stats().batches, batches.size());
}

TEST_F(RenewalManagerTest, WhitelistSurvivesVersionBump) {
  const AsId src{1, 110};
  ResKey key;
  bed_.cserv(src).db().for_each_segr(
      [&](const reservation::SegrRecord& rec) {
        if (rec.key.src_as == src) key = rec.key;
      });
  const AsId vip{1, 120};
  ASSERT_TRUE(bed_.cserv(src).publish_segr(key, {vip}));

  RenewalManager mgr(bed_.cserv(src));
  mgr.manage(key);
  clock_.advance(260 * kNsPerSec);  // inside the 60 s lead window
  mgr.tick(clock_.now_sec());
  ASSERT_GE(mgr.stats().activated, 1u);

  auto advert = bed_.cserv(src).registry().find(key);
  ASSERT_TRUE(advert.has_value());
  EXPECT_EQ(advert->whitelist, std::vector<AsId>{vip});
  EXPECT_GT(advert->exp_time, 1000u + 300u);  // refreshed expiry
}

TEST_F(RenewalManagerTest, SessionsSurviveTwentyMinutes) {
  // The headline behaviour: with renewal managers running at every AS,
  // SegRs never expire underneath EERs, so a session can renew itself
  // far beyond the 5-minute SegR lifetime.
  std::vector<std::unique_ptr<RenewalManager>> managers;
  for (AsId as : bed_.topology().as_ids()) {
    auto mgr = std::make_unique<RenewalManager>(bed_.cserv(as));
    mgr->manage_all_local();
    managers.push_back(std::move(mgr));
  }

  const AsId src{1, 110}, dst{2, 212};
  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 100, 5'000);
  ASSERT_TRUE(session.ok());
  const auto rec = bed_.cserv(src).db().eer_copy(session.value().key());
  ASSERT_TRUE(rec.has_value());

  for (int second = 0; second < 1200; ++second) {
    clock_.advance(kNsPerSec);
    if (second % 10 == 0) {
      const UnixSec now = clock_.now_sec();
      for (auto& mgr : managers) mgr->tick(now);
      bed_.tick_all();
    }
    ASSERT_TRUE(session.value().maybe_renew()) << "second " << second;
    if (second % 7 == 0) {
      dataplane::FastPacket pkt;
      ASSERT_EQ(session.value().send(500, pkt),
                dataplane::Gateway::Verdict::kOk)
          << "second " << second;
      for (size_t i = 0; i < rec->path.size(); ++i) {
        const auto v = bed_.router(rec->path[i].as).process(pkt);
        ASSERT_TRUE(v == dataplane::BorderRouter::Verdict::kForward ||
                    v == dataplane::BorderRouter::Verdict::kDeliver)
            << "second " << second << " hop " << i;
      }
    }
  }
  // The SegRs rolled over several versions along the way.
  bool versioned = false;
  bed_.cserv(src).db().for_each_segr(
      [&](const reservation::SegrRecord& r) {
        versioned |= r.active.version >= 3;
      });
  EXPECT_TRUE(versioned);
}

TEST_F(RenewalManagerTest, DemandTracksUtilization) {
  const AsId src{1, 110};
  ResKey key;
  bed_.cserv(src).db().for_each_segr(
      [&](const reservation::SegrRecord& rec) {
        if (rec.key.src_as == src) key = rec.key;
      });
  ASSERT_TRUE(bed_.cserv(src).db().contains_segr(key));

  RenewalManager mgr(bed_.cserv(src));
  mgr.manage(key);
  // Simulate sustained 1.5 Gbps of EER usage being observed.
  bed_.cserv(src).db().with_segr(key, [](reservation::SegrRecord* rec) {
    if (rec != nullptr) rec->eer_allocated_kbps = 1'500'000;
  });
  for (int i = 0; i < 50; ++i) mgr.tick(clock_.now_sec());

  clock_.advance(260 * kNsPerSec);
  mgr.tick(clock_.now_sec());
  const auto renewed = bed_.cserv(src).db().segr_copy(key);
  ASSERT_TRUE(renewed.has_value());
  // Renewed at >= utilization (with forecaster headroom), not at some
  // unrelated static size.
  EXPECT_GE(renewed->active.bw_kbps, 1'500'000u);
}

}  // namespace
}  // namespace colibri::cserv
