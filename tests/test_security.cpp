// Security suite mapped to the paper's §5 DDoS-resilience analysis: each
// test reproduces one attack from the catalog and verifies the defence
// the paper claims stops it.
#include <gtest/gtest.h>

#include "colibri/app/testbed.hpp"
#include "colibri/common/rand.hpp"

namespace colibri {
namespace {

using app::Testbed;

class SecurityTest : public ::testing::Test {
 protected:
  SecurityTest()
      : clock_(1000 * kNsPerSec),
        bed_(topology::builders::two_isd_topology(), clock_) {
    bed_.provision_all_segments(1000, 2'000'000);
  }

  SimClock clock_;
  Testbed bed_;
};

// §5.1 (ii): bogus Colibri traffic — an off-path adversary fabricates
// packets with guessed HVFs. Efficient symmetric verification drops them;
// the 4-byte truncation leaves a 2^-32 per-packet guess probability.
TEST_F(SecurityTest, BogusColibriPacketsDropped) {
  const AsId victim_as{1, 100};
  auto& router = bed_.router(victim_as);
  Rng rng(1);
  int accepted = 0;
  for (int i = 0; i < 20'000; ++i) {
    dataplane::FastPacket pkt;
    pkt.is_eer = true;
    pkt.num_hops = 3;
    pkt.current_hop = 1;
    pkt.resinfo.src_as = AsId{1, 110};
    pkt.resinfo.res_id = static_cast<ResId>(1 + rng.below(100));
    pkt.resinfo.bw_kbps = 1'000'000;
    pkt.resinfo.exp_time = clock_.now_sec() + 100;
    pkt.ifaces[1] = dataplane::IfPair{1, 2};
    pkt.timestamp = static_cast<std::uint32_t>(rng.next());
    rng.fill(pkt.hvfs[1].data(), pkt.hvfs[1].size());
    accepted += router.process(pkt) ==
                dataplane::BorderRouter::Verdict::kForward;
  }
  EXPECT_EQ(accepted, 0);
  EXPECT_EQ(router.stats().bad_hvf, 20'000u);
}

// §5.1 framing (i): source-AS spoofing. A malicious AS stamps packets
// claiming another AS's reservation; since σ_i binds SrcAS, the forged
// attribution fails verification and the victim cannot be framed.
TEST_F(SecurityTest, SourceSpoofingFailsVerification) {
  const AsId victim{1, 110}, dst{1, 120};
  auto session = bed_.daemon(victim).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 100, 1000);
  ASSERT_TRUE(session.ok());
  dataplane::FastPacket pkt;
  ASSERT_EQ(session.value().send(100, pkt), dataplane::Gateway::Verdict::kOk);
  // The adversary rewrites the source AS to frame AS 1-111.
  pkt.resinfo.src_as = AsId{1, 111};
  const auto rec = bed_.cserv(victim).db().eer_copy(session.value().key());
  EXPECT_EQ(bed_.router(rec->path[0].as).process(pkt),
            dataplane::BorderRouter::Verdict::kBadHvf);
}

// §5.1 framing (ii): replay. An on-path adversary re-sends captured
// packets to overuse the victim's reservation; duplicate suppression at
// benign ASes discards every copy.
TEST_F(SecurityTest, ReplayFloodDiscarded) {
  const AsId src{1, 110}, dst{1, 120};
  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 100, 1000);
  ASSERT_TRUE(session.ok());
  const auto rec = bed_.cserv(src).db().eer_copy(session.value().key());
  const AsId transit = rec->path[1].as;
  dataplane::DuplicateSuppression dupsup;
  bed_.router(transit).attach_dupsup(&dupsup);

  dataplane::FastPacket original;
  ASSERT_EQ(session.value().send(100, original),
            dataplane::Gateway::Verdict::kOk);
  ASSERT_EQ(bed_.router(rec->path[0].as).process(original),
            dataplane::BorderRouter::Verdict::kForward);

  // First copy passes; 1000 replays all die at the transit AS.
  dataplane::FastPacket first = original;
  ASSERT_EQ(bed_.router(transit).process(first),
            dataplane::BorderRouter::Verdict::kForward);
  int replayed_through = 0;
  for (int i = 0; i < 1000; ++i) {
    dataplane::FastPacket copy = original;
    replayed_through += bed_.router(transit).process(copy) ==
                        dataplane::BorderRouter::Verdict::kForward;
    clock_.advance(1000);
  }
  EXPECT_EQ(replayed_through, 0);
  EXPECT_EQ(dupsup.duplicates_seen(), 1000u);
}

// §5.2: admission-algorithm gaming. An attacker AS floods SegReqs trying
// to monopolize a shared egress; bounded tube fairness caps its total at
// its share, so within one renewal round a late-arriving benign AS
// obtains its proportional minimum ("a benign AS can always obtain a
// finite minimum bandwidth").
TEST_F(SecurityTest, BotnetCannotStarveBenignAs) {
  const AsId benign{1, 112};
  const auto seg = *bed_.pathdb().up_segments_from(benign).front();

  // The attacker floods 20 maximal requests over the same bottleneck
  // (1-110 -> 1-100, which the benign grandchild also transits).
  const AsId attacker{1, 110};
  const auto attacker_seg = *bed_.pathdb().up_segments_from(attacker).front();
  std::vector<ResKey> attacker_keys;
  for (int i = 0; i < 20; ++i) {
    auto r = bed_.cserv(attacker).setup_segr(attacker_seg, 1, 30'000'000);
    if (r.ok()) attacker_keys.push_back(r.value().key);
  }
  // Flooding does not multiply the attacker's holdings: its grants are
  // bounded by its share of the egress, not by the number of requests.
  ASSERT_FALSE(attacker_keys.empty());

  // The benign AS's first attempt may race into a saturated interface —
  // but it registers demand, so the attacker's *mandatory* renewals
  // (reservations live ~5 min) shrink toward the fair share.
  (void)bed_.cserv(benign).setup_segr(seg, 100'000, 5'000'000);
  clock_.advance(2 * kNsPerSec);
  for (const auto& key : attacker_keys) {
    (void)bed_.cserv(attacker).renew_segr(key, 1, 30'000'000);
  }

  // Retry: the benign AS now obtains at least its modest minimum.
  auto r = bed_.cserv(benign).setup_segr(seg, 100'000, 5'000'000);
  ASSERT_TRUE(r.ok()) << errc_name(r.error());
  EXPECT_GE(r.value().bw_kbps, 100'000u);
}

// §5.2: a malicious source AS forwards EEReqs for more bandwidth than its
// SegR holds; transit ASes independently check the SegR and clamp.
TEST_F(SecurityTest, EerCannotExceedSegr) {
  const AsId src{1, 110}, dst{1, 120};
  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 100,
      /*max_bw=*/0x7FFF'FFFF);
  ASSERT_TRUE(session.ok());
  // Clamped to the 2 Gbps SegRs (x the per-host policy).
  EXPECT_LE(session.value().bw_kbps(), 2'000'000u);
}

// §5.3 DoC (i): request flooding at the CServ. Per-AS rate limiting caps
// the attacker; an AS under a different ID is served normally.
TEST_F(SecurityTest, RequestFloodRateLimited) {
  const AsId attacker{1, 110}, benign{1, 111}, target{1, 100};
  const auto seg = *bed_.pathdb().up_segments_from(attacker).front();
  ASSERT_EQ(seg.hops.back().as, target);

  int rejected = 0;
  for (int i = 0; i < 500; ++i) {
    auto r = bed_.cserv(attacker).setup_segr(seg, 1, 10);
    rejected += !r.ok() && r.error() == Errc::kRateLimited;
  }
  EXPECT_GT(rejected, 200);  // the flood was curbed

  // The benign AS is unaffected (separate budget).
  const auto benign_seg = *bed_.pathdb().up_segments_from(benign).front();
  EXPECT_TRUE(bed_.cserv(benign).setup_segr(benign_seg, 1, 10).ok());
}

// §5.3 DoC: forged control messages cost the CServ one symmetric MAC
// check each and never reach admission.
TEST_F(SecurityTest, ForgedControlPlaneFilteredCheaply) {
  const AsId target{1, 100};
  const auto before = bed_.cserv(target).stats();

  proto::SegRequest msg;
  msg.seg_type = topology::SegType::kUp;
  msg.max_bw_kbps = 1000;
  msg.ases = {AsId{1, 110}, target};
  proto::Packet pkt;
  pkt.type = proto::PacketType::kSegSetup;
  pkt.path = {topology::Hop{AsId{1, 110}, 0, 1}, topology::Hop{target, 2, 0}};
  pkt.resinfo.src_as = AsId{1, 110};
  pkt.resinfo.res_id = 999;
  pkt.resinfo.exp_time = clock_.now_sec() + 300;
  pkt.current_hop = 1;
  proto::AuthedPayload ap;
  ap.message = msg;
  ap.macs.assign(2, proto::Mac16{});  // all-zero forgeries
  pkt.payload = proto::encode_authed(ap);

  Bytes framed;
  framed.push_back(0);
  append_bytes(framed, proto::encode_packet(pkt));
  for (int i = 0; i < 100; ++i) (void)bed_.bus().call(target, framed);

  const auto after = bed_.cserv(target).stats();
  EXPECT_EQ(after.auth_failures - before.auth_failures, 100u);
  EXPECT_EQ(after.seg_granted, before.seg_granted);  // none admitted
}

// §5.3: renewals ride the existing reservation and survive a best-effort
// flood that (in this model) partitions the *initial-request* channel.
TEST_F(SecurityTest, RenewalsWorkWhileSetupChannelDegraded) {
  const AsId src{1, 110};
  const auto seg = *bed_.pathdb().up_segments_from(src).front();
  auto setup = bed_.cserv(src).setup_segr(seg, 1000, 1'000'000);
  ASSERT_TRUE(setup.ok());

  // The reservation can be renewed repeatedly over itself regardless of
  // best-effort conditions (control traffic is in the protected class).
  for (int i = 0; i < 5; ++i) {
    clock_.advance(2 * kNsPerSec);
    auto renewed = bed_.cserv(src).renew_segr(setup.value().key, 1000,
                                              1'000'000 + i * 1000);
    ASSERT_TRUE(renewed.ok()) << i << ": " << errc_name(renewed.error());
    ASSERT_TRUE(
        bed_.cserv(src).activate_segr(setup.value().key, renewed.value().version)
            .ok());
  }
}

// §4.5: 4-byte HVFs — a brute-force token guess succeeds with ~2^-32 per
// packet. Statistical sanity: across 100k random guesses, zero hits.
TEST_F(SecurityTest, HvfBruteForceInfeasibleWithinLifetime) {
  const AsId target{1, 100};
  auto& router = bed_.router(target);
  Rng rng(5);
  dataplane::FastPacket pkt;
  pkt.is_eer = false;  // SegR packet: token checked directly (Eq. 3)
  pkt.num_hops = 2;
  pkt.current_hop = 0;
  pkt.resinfo.src_as = AsId{1, 110};
  pkt.resinfo.res_id = 1;
  pkt.resinfo.bw_kbps = 1000;
  pkt.resinfo.exp_time = clock_.now_sec() + 300;
  pkt.ifaces[0] = dataplane::IfPair{1, 2};
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) {
    rng.fill(pkt.hvfs[0].data(), pkt.hvfs[0].size());
    pkt.current_hop = 0;
    hits += router.process(pkt) != dataplane::BorderRouter::Verdict::kBadHvf;
  }
  EXPECT_EQ(hits, 0);
}

}  // namespace
}  // namespace colibri
