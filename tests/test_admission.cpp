// Unit + property tests for the admission algorithms (paper §4.7):
// bounded tube fairness, botnet-size independence, no-over-allocation,
// EER counter checks, and transfer-AS proportional splitting.
#include <gtest/gtest.h>

#include "colibri/admission/eer_admission.hpp"
#include "colibri/admission/segr_admission.hpp"
#include "colibri/common/rand.hpp"

namespace colibri::admission {
namespace {

const AsId kSrcA{1, 1};
const AsId kSrcB{1, 2};
const AsId kSrcC{1, 3};

ResKey key(AsId src, ResId id) { return ResKey{src, id}; }

TEST(TubeLedgerTest, UncontendedGrantsFullDemand) {
  TubeLedger ledger;
  ledger.set_egress_capacity(2, 1000);
  const TubeGrant g = ledger.evaluate(kSrcA, 1000, 2, 300);
  EXPECT_EQ(g.adjusted_demand_kbps, 300u);
  EXPECT_EQ(g.granted_kbps, 300u);
}

TEST(TubeLedgerTest, DemandCappedByIngressAndEgress) {
  TubeLedger ledger;
  ledger.set_egress_capacity(2, 1000);
  EXPECT_EQ(ledger.evaluate(kSrcA, 100, 2, 500).adjusted_demand_kbps, 100u);
  EXPECT_EQ(ledger.evaluate(kSrcA, 5000, 2, 5000).adjusted_demand_kbps, 1000u);
}

TEST(TubeLedgerTest, UnknownEgressGrantsNothing) {
  TubeLedger ledger;
  EXPECT_EQ(ledger.evaluate(kSrcA, 100, 9, 100).granted_kbps, 0u);
}

TEST(TubeLedgerTest, ContendedGrantCappedByResidualCapacity) {
  TubeLedger ledger;
  ledger.set_egress_capacity(2, 1000);
  // A records 800 demand (granted in full, uncontended); B then asks 800:
  // total 1600 > 1000. B's proportional share would be 500, but only 200
  // remain un-granted — the hard no-over-allocation bound wins until
  // renewals rebalance.
  TubeGrant ga = ledger.evaluate(kSrcA, 10000, 2, 800);
  ledger.record(kSrcA, 2, ga);
  EXPECT_EQ(ga.granted_kbps, 800u);
  const TubeGrant gb = ledger.evaluate(kSrcB, 10000, 2, 800);
  EXPECT_EQ(gb.granted_kbps, 200u);
}

TEST(SegrAdmissionTest, RenewalsConvergeTowardFairShares) {
  // After the contended situation above, the paper's short SegR lifetimes
  // let renewals rebalance: when A renews, its allocation shrinks to its
  // proportional share, freeing bandwidth for B's renewal.
  SegrAdmission adm;
  adm.set_interface_capacity(1, 100'000);
  adm.set_interface_capacity(2, 1000);
  SegrAdmissionRequest a;
  a.src_as = kSrcA;
  a.key = key(kSrcA, 1);
  a.ingress = 1;
  a.egress = 2;
  a.demand_kbps = 800;
  SegrAdmissionRequest b = a;
  b.src_as = kSrcB;
  b.key = key(kSrcB, 1);

  ASSERT_EQ(adm.admit(a).value(), 800u);
  ASSERT_EQ(adm.admit(b).value(), 200u);
  // Renewal round: both re-ask at 800 under full contention.
  const BwKbps a2 = adm.admit(a).value();
  const BwKbps b2 = adm.admit(b).value();
  // A's share shrank from 800, B's grew from 200.
  EXPECT_LT(a2, 800u);
  EXPECT_GT(b2, 200u);
  // Total never exceeds capacity.
  EXPECT_LE(adm.ledger().granted_total(2), 1000u);
  // Another round converges further toward 500/500.
  const BwKbps a3 = adm.admit(a).value();
  const BwKbps b3 = adm.admit(b).value();
  EXPECT_NEAR(static_cast<double>(a3), 500.0, 120.0);
  EXPECT_NEAR(static_cast<double>(b3), 500.0, 120.0);
}

TEST(TubeLedgerTest, GrantsNeverExceedCapacity) {
  // Hard invariant from §5.1 regardless of arrival order.
  Rng rng(21);
  TubeLedger ledger;
  ledger.set_egress_capacity(1, 10'000);
  std::uint64_t total_granted = 0;
  for (int i = 0; i < 500; ++i) {
    const AsId src{1, 1 + rng.below(20)};
    const BwKbps demand = static_cast<BwKbps>(1 + rng.below(3000));
    const TubeGrant g = ledger.evaluate(src, 1'000'000, 1, demand);
    ledger.record(src, 1, g);
    total_granted += g.granted_kbps;
    ASSERT_LE(ledger.granted_total(1), 10'000u) << "iteration " << i;
  }
  EXPECT_LE(total_granted, 10'000u);
}

TEST(TubeLedgerTest, BotnetSizeIndependence) {
  // One source splitting demand across many reservations gains no more
  // than a source asking once: its contribution to the denominator is
  // capped at the egress capacity (step 3 of §4.7).
  TubeLedger greedy;
  greedy.set_egress_capacity(1, 1000);
  // Attacker floods 50 reservations of 1000 each.
  for (int i = 0; i < 50; ++i) {
    const TubeGrant g = greedy.evaluate(kSrcA, 1'000'000, 1, 1000);
    greedy.record(kSrcA, 1, g);
  }
  // A benign source's share denominator saw the attacker capped at 1000,
  // not at 50*1000.
  const TubeGrant benign = greedy.evaluate(kSrcB, 1'000'000, 1, 1000);
  // With cap: total = 1000 (attacker, capped) + 1000 (benign) = 2000
  // => share = 1000 * 1000/2000 = 500 MINUS whatever is already granted.
  // The proportional share computation must see 500, i.e. the attacker
  // cannot push the benign ideal share toward zero.
  const double total = greedy.total_adjusted_demand(1);
  EXPECT_LE(total, 2001.0);
  EXPECT_GE(1000.0 * 1000.0 / (total + 1000.0), 333.0);
  (void)benign;
}

TEST(TubeLedgerTest, ReleaseRestoresState) {
  TubeLedger ledger;
  ledger.set_egress_capacity(1, 1000);
  const TubeGrant g = ledger.evaluate(kSrcA, 10000, 1, 600);
  ledger.record(kSrcA, 1, g);
  EXPECT_GT(ledger.total_adjusted_demand(1), 0.0);
  ledger.release(kSrcA, 1, g);
  EXPECT_DOUBLE_EQ(ledger.total_adjusted_demand(1), 0.0);
  EXPECT_EQ(ledger.granted_total(1), 0u);
  // After release, a fresh request gets the full uncontended grant again.
  EXPECT_EQ(ledger.evaluate(kSrcB, 10000, 1, 600).granted_kbps, 600u);
}

TEST(TubeLedgerTest, RecordReleaseSymmetryRandomized) {
  Rng rng(31);
  TubeLedger ledger;
  ledger.set_egress_capacity(1, 50'000);
  std::vector<std::tuple<AsId, TubeGrant>> live;
  for (int i = 0; i < 1000; ++i) {
    if (live.empty() || rng.below(2) == 0) {
      const AsId src{1, 1 + rng.below(10)};
      const TubeGrant g =
          ledger.evaluate(src, 100'000, 1, static_cast<BwKbps>(1 + rng.below(5000)));
      ledger.record(src, 1, g);
      live.emplace_back(src, g);
    } else {
      const size_t idx = rng.below(live.size());
      ledger.release(std::get<0>(live[idx]), 1, std::get<1>(live[idx]));
      live.erase(live.begin() + static_cast<long>(idx));
    }
  }
  for (const auto& [src, g] : live) ledger.release(src, 1, g);
  EXPECT_NEAR(ledger.total_adjusted_demand(1), 0.0, 1e-6);
  EXPECT_EQ(ledger.granted_total(1), 0u);
}

TEST(SegrAdmissionTest, AdmitRecordsAndReleases) {
  SegrAdmission adm;
  adm.set_interface_capacity(1, 10'000);
  adm.set_interface_capacity(2, 10'000);
  SegrAdmissionRequest req;
  req.src_as = kSrcA;
  req.key = key(kSrcA, 1);
  req.ingress = 1;
  req.egress = 2;
  req.min_bw_kbps = 100;
  req.demand_kbps = 1000;
  auto r = adm.admit(req);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 1000u);
  EXPECT_EQ(adm.tracked(), 1u);
  adm.release(req.key);
  EXPECT_EQ(adm.tracked(), 0u);
  EXPECT_EQ(adm.ledger().granted_total(2), 0u);
}

TEST(SegrAdmissionTest, BelowMinRejectsAndRollsBack) {
  SegrAdmission adm;
  adm.set_interface_capacity(1, 1000);
  adm.set_interface_capacity(2, 1000);
  // Fill the egress.
  SegrAdmissionRequest fill;
  fill.src_as = kSrcA;
  fill.key = key(kSrcA, 1);
  fill.ingress = 1;
  fill.egress = 2;
  fill.demand_kbps = 1000;
  ASSERT_TRUE(adm.admit(fill).ok());
  // B needs at least 900 — impossible now.
  SegrAdmissionRequest req = fill;
  req.src_as = kSrcB;
  req.key = key(kSrcB, 1);
  req.min_bw_kbps = 900;
  auto r = adm.admit(req);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errc::kBandwidthUnavailable);
  EXPECT_EQ(adm.tracked(), 1u);  // nothing recorded for B
}

TEST(SegrAdmissionTest, RenewalReplacesNotAdds) {
  SegrAdmission adm;
  adm.set_interface_capacity(1, 1000);
  adm.set_interface_capacity(2, 1000);
  SegrAdmissionRequest req;
  req.src_as = kSrcA;
  req.key = key(kSrcA, 1);
  req.ingress = 1;
  req.egress = 2;
  req.demand_kbps = 600;
  ASSERT_EQ(adm.admit(req).value(), 600u);
  // Renewal at the same demand must not be treated as 1200 total.
  auto r2 = adm.admit(req);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value(), 600u);
  EXPECT_EQ(adm.ledger().granted_total(2), 600u);
  EXPECT_EQ(adm.tracked(), 1u);
}

TEST(SegrAdmissionTest, FailedRenewalKeepsOldAllocation) {
  SegrAdmission adm;
  adm.set_interface_capacity(1, 1000);
  adm.set_interface_capacity(2, 1000);
  SegrAdmissionRequest req;
  req.src_as = kSrcA;
  req.key = key(kSrcA, 1);
  req.ingress = 1;
  req.egress = 2;
  req.demand_kbps = 400;
  ASSERT_TRUE(adm.admit(req).ok());
  // Competitor takes the rest.
  SegrAdmissionRequest other = req;
  other.src_as = kSrcB;
  other.key = key(kSrcB, 1);
  other.demand_kbps = 600;
  ASSERT_TRUE(adm.admit(other).ok());
  // A now asks to renew at min 900 — must fail but keep A's 400 recorded.
  req.min_bw_kbps = 900;
  req.demand_kbps = 900;
  EXPECT_FALSE(adm.admit(req).ok());
  EXPECT_EQ(adm.tracked(), 2u);
  EXPECT_EQ(adm.ledger().granted_total(2), 1000u);
}

TEST(SegrAdmissionTest, FirstAsHasNoIngressCap) {
  SegrAdmission adm;
  adm.set_interface_capacity(2, 1000);
  SegrAdmissionRequest req;
  req.src_as = kSrcA;
  req.key = key(kSrcA, 1);
  req.ingress = kNoInterface;  // source AS of the segment
  req.egress = 2;
  req.demand_kbps = 800;
  EXPECT_EQ(adm.admit(req).value(), 800u);
}

// --- EER admission ---------------------------------------------------------

reservation::SegrRecord make_segr(AsId src, ResId id, BwKbps bw,
                                  topology::SegType type) {
  reservation::SegrRecord r;
  r.key = ResKey{src, id};
  r.seg_type = type;
  r.hops = {topology::Hop{src, kNoInterface, 1},
            topology::Hop{AsId{1, 99}, 1, kNoInterface}};
  r.local_hop = 1;
  r.active = reservation::SegrVersion{0, bw, 10'000};
  return r;
}

BwKbps eer_allocated(const reservation::ReservationDb& db, const ResKey& k) {
  const auto rec = db.segr_copy(k);
  return rec ? rec->eer_allocated_kbps : 0;
}

TEST(EerAdmissionTest, TransitGrantsWithinSegr) {
  reservation::ReservationDb db(kSrcA);
  const auto segr_key = key(kSrcA, 1);
  db.upsert_segr(make_segr(kSrcA, 1, 1000, topology::SegType::kUp));
  EerAdmission adm;
  EerAdmission::Request req;
  req.eer_key = key(kSrcA, 100);
  req.demand_kbps = 400;
  req.segr_in = segr_key;
  EXPECT_EQ(adm.admit(db, req, 0).value(), 400u);
  EXPECT_EQ(eer_allocated(db, segr_key), 400u);

  // Second EER takes what remains.
  req.eer_key = key(kSrcA, 101);
  req.demand_kbps = 800;
  EXPECT_EQ(adm.admit(db, req, 0).value(), 600u);
  EXPECT_EQ(eer_allocated(db, segr_key), 1000u);

  // Third gets nothing.
  req.eer_key = key(kSrcA, 102);
  req.min_bw_kbps = 1;
  EXPECT_FALSE(adm.admit(db, req, 0).ok());
}

TEST(EerAdmissionTest, ReleaseReturnsBandwidth) {
  reservation::ReservationDb db(kSrcA);
  const auto segr_key = key(kSrcA, 1);
  db.upsert_segr(make_segr(kSrcA, 1, 1000, topology::SegType::kUp));
  EerAdmission adm;
  EerAdmission::Request req;
  req.eer_key = key(kSrcA, 100);
  req.demand_kbps = 700;
  req.segr_in = segr_key;
  ASSERT_TRUE(adm.admit(db, req, 0).ok());
  adm.release(db, req.eer_key);
  EXPECT_EQ(eer_allocated(db, segr_key), 0u);
  EXPECT_EQ(adm.tracked(), 0u);
}

TEST(EerAdmissionTest, RenewalAdjustsAllocation) {
  reservation::ReservationDb db(kSrcA);
  const auto segr_key = key(kSrcA, 1);
  db.upsert_segr(make_segr(kSrcA, 1, 1000, topology::SegType::kUp));
  EerAdmission adm;
  EerAdmission::Request req;
  req.eer_key = key(kSrcA, 100);
  req.demand_kbps = 700;
  req.segr_in = segr_key;
  ASSERT_EQ(adm.admit(db, req, 0).value(), 700u);
  // Renewal down to 300 frees 400.
  req.demand_kbps = 300;
  ASSERT_EQ(adm.admit(db, req, 0).value(), 300u);
  EXPECT_EQ(eer_allocated(db, segr_key), 300u);
  // Renewal up to 900 succeeds because only the delta competes.
  req.demand_kbps = 900;
  ASSERT_EQ(adm.admit(db, req, 0).value(), 900u);
  EXPECT_EQ(eer_allocated(db, segr_key), 900u);
}

TEST(EerAdmissionTest, TransferChecksBothSegrs) {
  reservation::ReservationDb db(kSrcA);
  const auto up_key = key(kSrcA, 1);
  const auto core_key = key(AsId{1, 99}, 2);
  db.upsert_segr(make_segr(kSrcA, 1, 1000, topology::SegType::kUp));
  db.upsert_segr(make_segr(AsId{1, 99}, 2, 300, topology::SegType::kCore));
  EerAdmission adm;
  EerAdmission::Request req;
  req.eer_key = key(kSrcA, 100);
  req.demand_kbps = 800;
  req.segr_in = up_key;
  req.segr_out = core_key;
  // Grant limited by the core SegR's 300.
  EXPECT_EQ(adm.admit(db, req, 0).value(), 300u);
  EXPECT_EQ(eer_allocated(db, up_key), 300u);
  EXPECT_EQ(eer_allocated(db, core_key), 300u);
}

TEST(TransferLedgerTest, UncontendedPassesThrough) {
  TransferLedger ledger;
  const ResKey up = key(kSrcA, 1), core = key(kSrcB, 2);
  EXPECT_EQ(ledger.evaluate(up, 1000, core, 1000, 200), 200u);
}

TEST(TransferLedgerTest, ContendedSplitsProportionally) {
  TransferLedger ledger;
  const ResKey up1 = key(kSrcA, 1), up2 = key(kSrcB, 1);
  const ResKey core = key(AsId{1, 99}, 2);
  // up1 demands 900 (capped by up bw 600 -> 600), up2 demands 300.
  ledger.record(up1, 600, core, 900, 0);
  ledger.record(up2, 600, core, 300, 0);
  EXPECT_DOUBLE_EQ(ledger.total_capped_demand(core), 900.0);
  // Core EER capacity 450: up2's share = 450 * 300/900 = 150 for a
  // fresh request of 300 via up2... demand grows to 600 -> capped 600;
  // total 1200; share = 450*600/1200 = 225.
  EXPECT_NEAR(ledger.evaluate(up2, 600, core, 450, 300), 225u, 1);
}

TEST(TransferLedgerTest, ReleaseUnwinds) {
  TransferLedger ledger;
  const ResKey up = key(kSrcA, 1), core = key(kSrcB, 2);
  ledger.record(up, 500, core, 400, 100);
  ledger.release(up, 500, core, 400, 100);
  EXPECT_DOUBLE_EQ(ledger.total_capped_demand(core), 0.0);
}

TEST(EerAdmissionTest, NoSegrRejected) {
  reservation::ReservationDb db(kSrcA);
  EerAdmission adm;
  EerAdmission::Request req;
  req.eer_key = key(kSrcA, 100);
  req.demand_kbps = 10;
  auto r = adm.admit(db, req, 0);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errc::kNoSuchSegment);
}

// Property: under random admissions/releases, a SegR's EER allocation
// never exceeds its bandwidth and never goes negative.
TEST(EerAdmissionTest, AllocationInvariantRandomized) {
  Rng rng(77);
  reservation::ReservationDb db(kSrcA, 4);
  const auto segr_key = key(kSrcA, 1);
  db.upsert_segr(make_segr(kSrcA, 1, 10'000, topology::SegType::kUp));
  EerAdmission adm(4);
  std::vector<ResKey> live;
  for (int i = 0; i < 2000; ++i) {
    if (live.empty() || rng.below(3) != 0) {
      EerAdmission::Request req;
      req.eer_key = key(kSrcA, static_cast<ResId>(1000 + i));
      req.demand_kbps = static_cast<BwKbps>(1 + rng.below(2000));
      req.segr_in = segr_key;
      if (adm.admit(db, req, 0).ok()) live.push_back(req.eer_key);
    } else {
      const size_t idx = rng.below(live.size());
      adm.release(db, live[idx]);
      live.erase(live.begin() + static_cast<long>(idx));
    }
    ASSERT_LE(eer_allocated(db, segr_key), 10'000u);
  }
  for (const auto& k : live) adm.release(db, k);
  EXPECT_EQ(eer_allocated(db, segr_key), 0u);
}

}  // namespace
}  // namespace colibri::admission
