// Tests: synthetic Internet-scale topology generator + control-plane
// scalability on generated topologies.
#include <gtest/gtest.h>

#include "colibri/app/testbed.hpp"
#include "colibri/topology/beacon.hpp"
#include "colibri/topology/generator.hpp"

namespace colibri::topology {
namespace {

TEST(GeneratorTest, ProducesExpectedAsCount) {
  GeneratorConfig cfg;
  cfg.isds = 2;
  cfg.cores_per_isd = 2;
  cfg.fanout = 3;
  cfg.depth = 2;
  const Topology topo = generate_topology(cfg);
  EXPECT_EQ(topo.as_count(), expected_as_count(cfg));
  // 2 ISDs x 2 cores x (1 + 3 + 9) = 52.
  EXPECT_EQ(topo.as_count(), 52u);
  EXPECT_EQ(topo.core_ases().size(), 4u);
}

TEST(GeneratorTest, DeterministicForSeed) {
  GeneratorConfig cfg;
  cfg.seed = 42;
  const Topology a = generate_topology(cfg);
  const Topology b = generate_topology(cfg);
  ASSERT_EQ(a.as_count(), b.as_count());
  for (AsId id : a.as_ids()) {
    ASSERT_TRUE(b.has_as(id));
    EXPECT_EQ(a.node(id).interfaces.size(), b.node(id).interfaces.size());
  }
}

TEST(GeneratorTest, EveryNonCoreHasAProvider) {
  const Topology topo = generate_topology(GeneratorConfig{});
  for (AsId id : topo.as_ids()) {
    const AsNode& node = topo.node(id);
    if (node.core) continue;
    bool has_provider = false;
    for (const auto& intf : node.interfaces) {
      has_provider |= intf.to_parent;
    }
    EXPECT_TRUE(has_provider) << id.to_string();
  }
}

TEST(GeneratorTest, IsdPairsConnected) {
  GeneratorConfig cfg;
  cfg.core_mesh_density = 0.0;  // force the fallback single links
  const Topology topo = generate_topology(cfg);
  // Each core AS must reach the other ISDs through some core link.
  for (AsId a : topo.core_ases()) {
    int cross_isd = 0;
    for (const auto& intf : topo.node(a).interfaces) {
      if (intf.type == LinkType::kCore &&
          intf.neighbor.isd() != a.isd()) {
        ++cross_isd;
      }
    }
    (void)cross_isd;  // at least the first core of each ISD has one
  }
  // Structural check: beaconing can discover a core segment between ISDs.
  const auto segs = discover_segments(topo, BeaconConfig{1, 6});
  bool cross = false;
  for (const auto& s : segs) {
    if (s.type == SegType::kCore &&
        s.first_as().isd() != s.last_as().isd()) {
      cross = true;
      break;
    }
  }
  EXPECT_TRUE(cross);
}

TEST(GeneratorTest, MultihomingCreatesPathDiversity) {
  GeneratorConfig with;
  with.multihome_prob = 1.0;
  with.seed = 7;
  GeneratorConfig without = with;
  without.multihome_prob = 0.0;

  auto count_parent_links = [](const Topology& t) {
    size_t n = 0;
    for (AsId id : t.as_ids()) {
      for (const auto& intf : t.node(id).interfaces) {
        n += intf.to_parent;
      }
    }
    return n;
  };
  EXPECT_GT(count_parent_links(generate_topology(with)),
            count_parent_links(generate_topology(without)));
}

TEST(GeneratorTest, FullControlPlaneRunsOnGeneratedTopology) {
  // End-to-end: a ~100-AS generated topology, full Testbed, SegR
  // provisioning, and an EER across ISDs — the control plane scales
  // beyond the hand-built fixtures.
  GeneratorConfig cfg;
  cfg.isds = 2;
  cfg.cores_per_isd = 2;
  cfg.fanout = 4;
  cfg.depth = 2;
  cfg.multihome_prob = 0.25;
  cfg.seed = 5;
  Topology topo = generate_topology(cfg);
  ASSERT_GE(topo.as_count(), 80u);

  SimClock clock(1000 * kNsPerSec);
  app::Testbed bed(std::move(topo), clock);
  const size_t provisioned = bed.provision_all_segments(100, 500'000);
  EXPECT_GT(provisioned, 100u);

  // Pick a leaf in each ISD (highest AS numbers are the deepest).
  AsId src, dst;
  for (AsId id : bed.topology().as_ids()) {
    if (bed.topology().node(id).core) continue;
    if (id.isd() == 1) src = id;
    if (id.isd() == 2) dst = id;
  }
  ASSERT_TRUE(src.valid());
  ASSERT_TRUE(dst.valid());

  auto session = bed.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 10, 1000);
  ASSERT_TRUE(session.ok()) << errc_name(session.error());

  // The packet verifies along the whole (generated) path.
  const auto rec = bed.cserv(src).db().eer_copy(session.value().key());
  ASSERT_TRUE(rec.has_value());
  dataplane::FastPacket pkt;
  ASSERT_EQ(session.value().send(100, pkt), dataplane::Gateway::Verdict::kOk);
  for (size_t i = 0; i < rec->path.size(); ++i) {
    const auto v = bed.router(rec->path[i].as).process(pkt);
    ASSERT_TRUE(v == dataplane::BorderRouter::Verdict::kForward ||
                v == dataplane::BorderRouter::Verdict::kDeliver)
        << "hop " << i;
  }
}

}  // namespace
}  // namespace colibri::topology
