// Plain-ctest driver for the wire fuzz harness: replays every file under
// the given corpus paths through LLVMFuzzerTestOneInput. This keeps the
// fuzzer's invariants in the regular test suite on toolchains without
// libFuzzer; crashes found while fuzzing get their reproducers checked
// into the corpus and regress here forever.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::size_t replayed = 0;
  for (int a = 1; a < argc; ++a) {
    const fs::path root(argv[a]);
    if (!fs::exists(root)) {
      std::fprintf(stderr, "corpus path missing: %s\n", argv[a]);
      return 1;
    }
    std::vector<fs::path> files;
    if (fs::is_directory(root)) {
      for (const auto& e : fs::recursive_directory_iterator(root)) {
        if (e.is_regular_file()) files.push_back(e.path());
      }
    } else {
      files.push_back(root);
    }
    std::sort(files.begin(), files.end());
    for (const auto& f : files) {
      std::ifstream in(f, std::ios::binary);
      std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                      std::istreambuf_iterator<char>());
      LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
      ++replayed;
    }
  }
  if (replayed == 0) {
    std::fprintf(stderr, "no corpus inputs replayed\n");
    return 1;
  }
  std::printf("replayed %zu corpus inputs, all invariants held\n", replayed);
  return 0;
}
