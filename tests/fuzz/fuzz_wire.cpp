// Wire-format fuzz harness.
//
// One entry point, two drivers: under COLIBRI_FUZZING it is a libFuzzer
// target exploring the packet codec coverage-guided; without libFuzzer
// the same function replays the checked-in corpus as a plain ctest case
// (see replay_main.cpp). Either way, every input must uphold the wire
// invariants:
//
//   1. decode -> encode is the byte-identical identity on accepted
//      frames (the codec has one canonical form, no accepted aliases);
//   2. decode(encode(p)) == p;
//   3. batch_ingest accepts exactly the decodable frames whose hop
//      count fits a FastPacket;
//   4. the FastPacket round trip preserves every header field
//      forwarding reads;
//   5. the scalar and batched router paths return the same verdict and
//      cursor position for the decoded packet — parity must hold for
//      arbitrary adversarial input, not just well-formed streams;
//   6. the trace-context block is control-plane only: stripping it from
//      an accepted frame yields another accepted frame that is exactly
//      kTraceContextLen shorter, and both frames produce the identical
//      data-plane (FastPacket) view. peek_trace_context agrees with the
//      full decode on every accepted frame.
#include <cstdint>
#include <cstdio>
#include <cstring>

#include "colibri/common/clock.hpp"
#include "colibri/dataplane/batch.hpp"
#include "colibri/dataplane/router.hpp"
#include "colibri/proto/codec.hpp"

namespace {

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "wire invariant violated: %s\n", what);
    __builtin_trap();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const colibri::BytesView frame(data, size);
  const auto pkt = colibri::proto::decode_packet(frame);

  colibri::dataplane::PacketBatch batch;
  const bool ingested = colibri::dataplane::batch_ingest(frame, batch);

  if (!pkt.has_value()) {
    check(!ingested, "ingest accepted an undecodable frame");
    return 0;
  }

  const colibri::Bytes re = colibri::proto::encode_packet(*pkt);
  check(re.size() == size && std::memcmp(re.data(), data, size) == 0,
        "re-encode of an accepted frame is not byte-identical");
  const auto again = colibri::proto::decode_packet(re);
  check(again.has_value() && *again == *pkt, "decode(encode(p)) != p");

  // Trace-context invariants on every accepted frame. The O(1) peek the
  // bus uses must agree with the full decode, and the stripped twin
  // (same frame, no trace block) must itself be canonical.
  check(colibri::proto::peek_trace_context(frame) ==
            (pkt->has_trace ? pkt->trace : colibri::proto::TraceContext{}),
        "peek_trace_context disagrees with decode");
  colibri::proto::Packet stripped = *pkt;
  stripped.has_trace = false;
  stripped.trace = {};
  const colibri::Bytes swire = colibri::proto::encode_packet(stripped);
  check(swire.size() ==
            size - (pkt->has_trace ? colibri::proto::kTraceContextLen : 0),
        "trace block does not cost exactly its wire bytes");
  const auto spkt = colibri::proto::decode_packet(swire);
  check(spkt.has_value() && *spkt == stripped,
        "stripping the trace block broke the frame");

  const bool fits = pkt->path.size() <= colibri::dataplane::kMaxHops;
  check(ingested == fits, "ingest disagrees with decode + hop bound");
  if (!fits) return 0;
  check(batch.size == 1, "ingest did not append exactly one packet");

  const colibri::dataplane::FastPacket fp = colibri::dataplane::to_fast(*pkt);
  const colibri::proto::Packet back = colibri::dataplane::to_packet(fp);
  check(back.type == pkt->type && back.is_eer == pkt->is_eer &&
            back.current_hop == pkt->current_hop &&
            back.resinfo == pkt->resinfo && back.timestamp == pkt->timestamp &&
            back.payload.size() == pkt->payload.size() &&
            back.hvfs == pkt->hvfs,
        "FastPacket round trip lost header state");
  check(!pkt->is_eer || back.eerinfo == pkt->eerinfo,
        "FastPacket round trip lost host addresses");
  for (std::size_t i = 0; i < pkt->path.size(); ++i) {
    check(back.path[i].ingress == pkt->path[i].ingress &&
              back.path[i].egress == pkt->path[i].egress,
          "FastPacket round trip lost interface pairs");
  }

  // Zero-context fallback parity: the data plane never sees the trace
  // block, so the traced frame and its stripped twin convert to the
  // same FastPacket view.
  check(colibri::dataplane::to_packet(colibri::dataplane::to_fast(*spkt)) ==
            back,
        "trace context leaked into the data-plane view");

  // Verdict parity on adversarial input: hookless twin routers with a
  // frozen clock (persistent across inputs; only their counters grow).
  static colibri::SimClock clock(100 * colibri::kNsPerSec);
  static const colibri::drkey::Key128 key = [] {
    colibri::drkey::Key128 k;
    k.bytes.fill(7);
    return k;
  }();
  static colibri::dataplane::BorderRouter scalar(colibri::AsId{1, 2}, key,
                                                 clock, nullptr);
  static colibri::dataplane::BorderRouter batched(colibri::AsId{1, 2}, key,
                                                  clock, nullptr);

  colibri::dataplane::FastPacket scalar_pkt = fp;
  const auto vs = scalar.process(scalar_pkt);
  colibri::dataplane::BorderRouter::Verdict vb;
  batched.process_batch(batch, &vb);
  check(vs == vb, "scalar/batched router verdict divergence");
  check(scalar_pkt.current_hop == batch[0].current_hop,
        "scalar/batched cursor divergence");
  return 0;
}
