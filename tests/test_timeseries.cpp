// The live monitoring plane: WindowedSampler window cutting, rate /
// windowed-percentile / watermark queries, derived-gauge export, the
// AlertEngine state machine (debounce, guards, event-log audit trail),
// SLO burn-rate accounting, the deterministic SimClock stall-alert
// fire-and-resolve integration over a real ShardedGatewayRuntime, and
// a concurrent stress test meant to run under the TSan preset.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "colibri/common/clock.hpp"
#include "colibri/dataplane/shard.hpp"
#include "colibri/telemetry/alerts.hpp"
#include "colibri/telemetry/events.hpp"
#include "colibri/telemetry/metrics.hpp"
#include "colibri/telemetry/timeseries.hpp"

namespace colibri {
namespace {

using telemetry::AlertCmp;
using telemetry::AlertEngine;
using telemetry::AlertRule;
using telemetry::AlertSignal;
using telemetry::AlertState;
using telemetry::EventLog;
using telemetry::MetricsRegistry;
using telemetry::Slo;
using telemetry::WindowedSampler;
using telemetry::WindowedSamplerConfig;

constexpr TimeNs kSec = kNsPerSec;

WindowedSamplerConfig one_sec_windows(std::size_t ring = 64) {
  WindowedSamplerConfig cfg;
  cfg.period_ns = kSec;
  cfg.ring_capacity = ring;
  return cfg;
}

// --- WindowedSampler -----------------------------------------------------

TEST(WindowedSamplerTest, FirstSampleBaselinesAndSecondCutsAWindow) {
  SimClock clock(100 * kSec);
  MetricsRegistry registry;
  auto& c = registry.counter("test.requests");
  WindowedSampler sampler(registry, clock, one_sec_windows());

  EXPECT_FALSE(sampler.poll());  // same instant: below one period
  c.inc(10);
  clock.advance(kSec);
  EXPECT_FALSE(sampler.poll());  // baseline only, no window yet
  EXPECT_EQ(sampler.window_count(), 0u);

  c.inc(40);
  clock.advance(kSec);
  EXPECT_TRUE(sampler.poll());
  EXPECT_FALSE(sampler.poll());  // no time passed since the cut
  ASSERT_EQ(sampler.window_count(), 1u);
  // Only the post-baseline increment lands in the window.
  EXPECT_EQ(sampler.counter_delta("test.requests", WindowedSampler::kSpanAll),
            40u);
  EXPECT_DOUBLE_EQ(sampler.rate("test.requests", kSec), 40.0);
}

TEST(WindowedSamplerTest, RateDividesByRealElapsedTimeNotNominalPeriod) {
  SimClock clock(0);
  MetricsRegistry registry;
  auto& c = registry.counter("test.requests");
  WindowedSampler sampler(registry, clock, one_sec_windows());

  clock.advance(kSec);
  sampler.poll();  // baseline
  c.inc(100);
  clock.advance(4 * kSec);  // the producer polled late
  ASSERT_TRUE(sampler.poll());
  // 100 events over 4 real seconds = 25/s, not 100/s.
  EXPECT_DOUBLE_EQ(sampler.rate("test.requests", 4 * kSec), 25.0);
  // A span shorter than the single window still uses the whole window.
  EXPECT_DOUBLE_EQ(sampler.rate("test.requests", kSec), 25.0);
}

TEST(WindowedSamplerTest, SpanLimitsHowManyWindowsAQueryWalks) {
  SimClock clock(0);
  MetricsRegistry registry;
  auto& c = registry.counter("test.requests");
  WindowedSampler sampler(registry, clock, one_sec_windows());

  clock.advance(kSec);
  sampler.poll();  // baseline
  for (int burst : {100, 0, 0, 10}) {  // one window each, oldest first
    c.inc(static_cast<std::uint64_t>(burst));
    clock.advance(kSec);
    ASSERT_TRUE(sampler.poll());
  }
  EXPECT_EQ(sampler.counter_delta("test.requests", kSec), 10u);
  EXPECT_EQ(sampler.counter_delta("test.requests", 3 * kSec), 10u);
  EXPECT_EQ(sampler.counter_delta("test.requests", WindowedSampler::kSpanAll),
            110u);
  EXPECT_DOUBLE_EQ(sampler.rate("test.requests", 2 * kSec), 5.0);
  // Peak rate finds the old burst regardless of the idle tail.
  EXPECT_DOUBLE_EQ(sampler.peak_rate("test.requests"), 100.0);
}

TEST(WindowedSamplerTest, PrefixQueriesSumEverySeriesUnderThePrefix) {
  SimClock clock(0);
  MetricsRegistry registry;
  registry.counter("drop.expired").inc(3);
  registry.counter("drop.auth-failed").inc(4);
  registry.counter("dropped_other").inc(100);  // not under "drop."
  WindowedSampler sampler(registry, clock, one_sec_windows());

  clock.advance(kSec);
  sampler.poll();  // baseline
  registry.counter("drop.expired").inc(5);
  registry.counter("drop.auth-failed").inc(7);
  registry.counter("dropped_other").inc(1);
  clock.advance(kSec);
  ASSERT_TRUE(sampler.poll());
  EXPECT_EQ(sampler.counter_delta("drop.", kSec, /*prefix=*/true), 12u);
  EXPECT_DOUBLE_EQ(sampler.rate("drop.", kSec, /*prefix=*/true), 12.0);
  EXPECT_EQ(sampler.counter_delta("drop.expired", kSec), 5u);
}

TEST(WindowedSamplerTest, CounterResetRestartsTheDeltaInsteadOfWrapping) {
  SimClock clock(0);
  MetricsRegistry registry;
  auto& c = registry.counter("test.requests");
  WindowedSampler sampler(registry, clock, one_sec_windows());

  c.inc(1000);
  clock.advance(kSec);
  sampler.poll();  // baseline at 1000
  c.reset();
  c.inc(7);
  clock.advance(kSec);
  ASSERT_TRUE(sampler.poll());
  EXPECT_EQ(sampler.counter_delta("test.requests", kSec), 7u);
}

TEST(WindowedSamplerTest, WindowedPercentileCoversOnlyTheSpan) {
  SimClock clock(0);
  MetricsRegistry registry;
  auto& h = registry.histogram("test.latency_ns");
  WindowedSampler sampler(registry, clock, one_sec_windows());

  clock.advance(kSec);
  sampler.poll();  // baseline
  // Old window: catastrophic latencies.
  for (int i = 0; i < 100; ++i) h.record(1 << 20);
  clock.advance(kSec);
  ASSERT_TRUE(sampler.poll());
  // Recent window: healthy latencies.
  for (int i = 0; i < 100; ++i) h.record(100);
  clock.advance(kSec);
  ASSERT_TRUE(sampler.poll());

  const auto recent = sampler.windowed_percentile("test.latency_ns", 0.99,
                                                  kSec);
  ASSERT_TRUE(recent.has_value());
  EXPECT_LT(*recent, 1000.0);  // the old spike is outside the span
  const auto all = sampler.windowed_percentile(
      "test.latency_ns", 0.99, WindowedSampler::kSpanAll);
  ASSERT_TRUE(all.has_value());
  EXPECT_GT(*all, 100'000.0);
  EXPECT_FALSE(
      sampler.windowed_percentile("test.absent", 0.99, kSec).has_value());
}

TEST(WindowedSamplerTest, GaugeLevelAndDecayingWatermark) {
  SimClock clock(0);
  MetricsRegistry registry;
  auto& g = registry.gauge("test.depth");
  WindowedSamplerConfig cfg = one_sec_windows();
  cfg.watermark_decay = 0.5;
  WindowedSampler sampler(registry, clock, cfg);
  sampler.track_watermark("test.depth");

  EXPECT_FALSE(sampler.gauge_level("test.depth").has_value());
  clock.advance(kSec);
  sampler.poll();  // baseline
  g.set(100);
  clock.advance(kSec);
  ASSERT_TRUE(sampler.poll());
  EXPECT_EQ(sampler.gauge_level("test.depth").value_or(-1), 100);
  EXPECT_DOUBLE_EQ(sampler.watermark("test.depth"), 100.0);

  g.set(10);
  clock.advance(kSec);
  ASSERT_TRUE(sampler.poll());
  EXPECT_EQ(sampler.gauge_level("test.depth").value_or(-1), 10);
  // max(10, 100 * 0.5): the spike decays but stays visible.
  EXPECT_DOUBLE_EQ(sampler.watermark("test.depth"), 50.0);
}

TEST(WindowedSamplerTest, RingDropsOldestWindowsBeyondCapacity) {
  SimClock clock(0);
  MetricsRegistry registry;
  auto& c = registry.counter("test.requests");
  WindowedSampler sampler(registry, clock, one_sec_windows(/*ring=*/4));

  clock.advance(kSec);
  sampler.poll();  // baseline
  for (int i = 0; i < 10; ++i) {
    c.inc(1);
    clock.advance(kSec);
    ASSERT_TRUE(sampler.poll());
  }
  EXPECT_EQ(sampler.window_count(), 4u);
  EXPECT_EQ(sampler.windows_sampled(), 10u);
  EXPECT_EQ(sampler.counter_delta("test.requests", WindowedSampler::kSpanAll),
            4u);
}

TEST(WindowedSamplerTest, StalledClockCutsNoWindowsAndQueriesStaySafe) {
  SimClock clock(100 * kSec);
  MetricsRegistry registry;
  auto& c = registry.counter("test.requests");
  WindowedSampler sampler(registry, clock, one_sec_windows());

  // The clock never advances: no window is ever cut, no matter how
  // often poll() runs or how much the counters move.
  for (int i = 0; i < 50; ++i) {
    c.inc(100);
    EXPECT_FALSE(sampler.poll());
  }
  EXPECT_EQ(sampler.window_count(), 0u);
  EXPECT_EQ(sampler.windows_sampled(), 0u);

  // Every query over the empty ring answers a defined zero/empty value
  // instead of dividing by the elapsed time that never accumulated.
  EXPECT_DOUBLE_EQ(sampler.rate("test.requests", kSec), 0.0);
  EXPECT_DOUBLE_EQ(sampler.peak_rate("test.requests"), 0.0);
  EXPECT_EQ(sampler.counter_delta("test.requests", WindowedSampler::kSpanAll),
            0u);
  EXPECT_FALSE(sampler.windowed_percentile("test.lat", 0.99, kSec));
  EXPECT_FALSE(sampler.gauge_level("test.gauge"));
  EXPECT_FALSE(sampler.latest_window());
  const auto h =
      sampler.histogram_delta("test.lat", WindowedSampler::kSpanAll);
  EXPECT_EQ(h.count, 0u);
}

TEST(WindowedSamplerTest, NonPositivePeriodIsClampedSoWindowsSpanTime) {
  SimClock clock(100 * kSec);
  MetricsRegistry registry;
  auto& c = registry.counter("test.requests");
  WindowedSamplerConfig cfg;
  cfg.period_ns = 0;  // would cut zero-elapsed windows on every poll
  cfg.ring_capacity = 8;
  WindowedSampler sampler(registry, clock, cfg);

  // Under a stalled clock even the clamped period refuses to cut: a
  // window must span Clock time.
  EXPECT_FALSE(sampler.poll());
  c.inc(10);
  EXPECT_FALSE(sampler.poll());
  EXPECT_EQ(sampler.window_count(), 0u);

  clock.advance(1);  // one nanosecond satisfies the clamped period
  EXPECT_FALSE(sampler.poll());  // baseline
  c.inc(30);
  clock.advance(1);
  EXPECT_TRUE(sampler.poll());
  ASSERT_EQ(sampler.window_count(), 1u);
  // The 1 ns window has a finite, non-NaN rate.
  const double r = sampler.rate("test.requests", kSec);
  EXPECT_TRUE(std::isfinite(r));
  EXPECT_GT(r, 0.0);
}

TEST(WindowedSamplerTest, ExportsDerivedGaugesIntoTheRegistryItSamples) {
  SimClock clock(0);
  MetricsRegistry registry;
  auto& c = registry.counter("test.requests");
  auto& h = registry.histogram("test.latency_ns");
  // Source and export registry are the same: the expected wiring.
  WindowedSampler sampler(registry, clock, one_sec_windows(), &registry);
  sampler.track_rate("test.requests");
  sampler.track_percentiles("test.latency_ns");

  clock.advance(kSec);
  sampler.poll();  // baseline
  c.inc(50);
  for (int i = 0; i < 10; ++i) h.record(1'000);
  clock.advance(kSec);
  ASSERT_TRUE(sampler.poll());

  const auto snap = registry.snapshot();
  ASSERT_TRUE(snap.gauges.contains("test.requests.rate_1s"));
  EXPECT_EQ(snap.gauges.at("test.requests.rate_1s"), 50);
  ASSERT_TRUE(snap.gauges.contains("test.requests.rate_10s"));
  EXPECT_TRUE(snap.gauges.contains("test.latency_ns.windowed_p50"));
  EXPECT_TRUE(snap.gauges.contains("test.latency_ns.windowed_p99"));
  ASSERT_TRUE(snap.counters.contains("telemetry.sampler.windows"));
  EXPECT_EQ(snap.counters.at("telemetry.sampler.windows"), 1u);
}

// --- AlertEngine ---------------------------------------------------------

// One registry + sampler + engine, 1 s windows, with an event log.
struct AlertHarness {
  SimClock clock{0};
  MetricsRegistry registry;
  EventLog events{clock};
  WindowedSampler sampler;
  AlertEngine engine;

  AlertHarness()
      : sampler(registry, clock, one_sec_windows(), &registry),
        engine(sampler, clock, &events, &registry) {
    clock.advance(kSec);
    sampler.poll();  // baseline
  }

  // Advances one period, cuts a window, evaluates every rule.
  std::size_t step() {
    clock.advance(kSec);
    EXPECT_TRUE(sampler.poll());
    return engine.evaluate();
  }

  std::size_t count_events(std::string_view name) const {
    std::size_t n = 0;
    for (const auto& e : events.events()) n += e.name == name;
    return n;
  }
};

AlertRule rate_rule(std::string series, double threshold, TimeNs for_ns) {
  AlertRule r;
  r.name = "test." + series;
  r.series = std::move(series);
  r.signal = AlertSignal::kRate;
  r.span_ns = kSec;
  r.cmp = AlertCmp::kAbove;
  r.threshold = threshold;
  r.for_ns = for_ns;
  return r;
}

TEST(AlertEngineTest, FiresAfterForDurationAndResolvesWhenConditionClears) {
  AlertHarness h;
  auto& c = h.registry.counter("test.errors");
  // Rate above 10/s must hold for 2 s before firing.
  h.engine.add_rule(rate_rule("test.errors", 10.0, 2 * kSec));
  ASSERT_EQ(h.engine.rule_count(), 1u);

  h.step();  // rate 0: inactive
  EXPECT_EQ(h.engine.status()[0].state, AlertState::kInactive);

  c.inc(100);
  h.step();  // violation starts: pending, debounce running
  EXPECT_EQ(h.engine.status()[0].state, AlertState::kPending);
  EXPECT_EQ(h.engine.fired_total(), 0u);

  c.inc(100);
  h.step();  // 1 s < 2 s held: still pending
  EXPECT_EQ(h.engine.status()[0].state, AlertState::kPending);

  c.inc(100);
  h.step();  // 2 s held: fires
  EXPECT_EQ(h.engine.status()[0].state, AlertState::kFiring);
  EXPECT_EQ(h.engine.fired_total(), 1u);
  EXPECT_EQ(h.engine.firing_count(), 1u);
  EXPECT_EQ(h.count_events("alert.firing"), 1u);

  h.step();  // no increments: rate 0, resolves
  EXPECT_EQ(h.engine.status()[0].state, AlertState::kInactive);
  EXPECT_EQ(h.engine.resolved_total(), 1u);
  EXPECT_EQ(h.engine.firing_count(), 0u);
  EXPECT_EQ(h.count_events("alert.resolved"), 1u);
}

TEST(AlertEngineTest, BlipShorterThanForDurationNeverFires) {
  AlertHarness h;
  auto& c = h.registry.counter("test.errors");
  h.engine.add_rule(rate_rule("test.errors", 10.0, 2 * kSec));

  c.inc(100);
  h.step();  // pending
  h.step();  // condition cleared before the debounce elapsed
  EXPECT_EQ(h.engine.status()[0].state, AlertState::kInactive);
  EXPECT_EQ(h.engine.fired_total(), 0u);
  EXPECT_EQ(h.count_events("alert.firing"), 0u);
}

TEST(AlertEngineTest, GuardGatesEligibilityOfTheMainCondition) {
  AlertHarness h;
  // "Heartbeat rate below 1/s" — but only while queued work exists.
  AlertRule r;
  r.name = "stall";
  r.series = "test.heartbeats";
  r.signal = AlertSignal::kRate;
  r.span_ns = kSec;
  r.cmp = AlertCmp::kBelow;
  r.threshold = 1.0;
  r.guard_series = "test.ring_depth";
  r.guard_cmp = AlertCmp::kAbove;
  r.guard_threshold = 0;
  h.engine.add_rule(r);
  auto& depth = h.registry.gauge("test.ring_depth");
  h.registry.counter("test.heartbeats");  // never incremented

  h.step();  // heartbeat rate 0 but ring empty: guard blocks
  EXPECT_EQ(h.engine.status()[0].state, AlertState::kInactive);

  depth.set(5);
  h.step();  // ring has work, heartbeats flat: fires (for_ns = 0)
  EXPECT_EQ(h.engine.status()[0].state, AlertState::kFiring);

  depth.set(0);
  h.step();  // work drained: guard false again, resolves
  EXPECT_EQ(h.engine.status()[0].state, AlertState::kInactive);
  EXPECT_EQ(h.engine.resolved_total(), 1u);
}

TEST(AlertEngineTest, PercentileRuleIgnoresSpansWithNoData) {
  AlertHarness h;
  AlertRule r;
  r.name = "p99";
  r.series = "test.latency_ns";
  r.signal = AlertSignal::kPercentile;
  r.quantile = 0.99;
  r.span_ns = kSec;
  r.cmp = AlertCmp::kAbove;
  r.threshold = 1'000.0;
  h.engine.add_rule(r);
  auto& hist = h.registry.histogram("test.latency_ns");

  h.step();  // no data: has_value false, cannot violate
  EXPECT_EQ(h.engine.status()[0].state, AlertState::kInactive);
  EXPECT_FALSE(h.engine.status()[0].has_value);

  for (int i = 0; i < 100; ++i) hist.record(1 << 20);
  h.step();
  EXPECT_EQ(h.engine.status()[0].state, AlertState::kFiring);
  EXPECT_TRUE(h.engine.status()[0].has_value);
}

TEST(AlertEngineTest, ExportsStateAndTotalsAsMetrics) {
  AlertHarness h;
  auto& c = h.registry.counter("test.errors");
  h.engine.add_rule(rate_rule("test.errors", 10.0, 0));
  c.inc(100);
  h.step();  // fires immediately (for_ns = 0)

  const auto snap = h.registry.snapshot();
  EXPECT_EQ(snap.counters.at("telemetry.alerts.fired"), 1u);
  EXPECT_EQ(snap.counters.at("telemetry.alerts.resolved"), 0u);
  EXPECT_GE(snap.counters.at("telemetry.alerts.evaluations"), 1u);
  EXPECT_EQ(snap.gauges.at("telemetry.alerts.rules"), 1);
  EXPECT_EQ(snap.gauges.at("telemetry.alerts.active"), 1);
  EXPECT_EQ(snap.gauges.at("telemetry.alerts.rule.test.test.errors.state"),
            static_cast<std::int64_t>(AlertState::kFiring));
}

TEST(AlertEngineTest, FiringEventCarriesRuleSeriesValueAndSeverity) {
  AlertHarness h;
  auto& c = h.registry.counter("test.errors");
  AlertRule r = rate_rule("test.errors", 10.0, 0);
  r.severity = telemetry::Severity::kError;
  h.engine.add_rule(r);
  c.inc(100);
  h.step();

  const auto& evs = h.events.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].name, "alert.firing");
  EXPECT_EQ(evs[0].component, "telemetry");
  EXPECT_EQ(evs[0].severity, telemetry::Severity::kError);
  ASSERT_NE(evs[0].field("rule"), nullptr);
  ASSERT_NE(evs[0].field("value_milli"), nullptr);
}

// --- SLOs ----------------------------------------------------------------

TEST(SloTest, FractionSloTracksBurnRateAndBudget) {
  AlertHarness h;
  auto& bad = h.registry.counter("test.failed");
  auto& total = h.registry.counter("test.total");
  Slo slo;
  slo.name = "availability";
  slo.kind = Slo::Kind::kFraction;
  slo.objective = 0.01;  // 1% of requests may fail
  slo.series = "test.failed";
  slo.total_series = "test.total";
  slo.span_ns = kSec;
  slo.burn_alert = 5.0;
  h.engine.add_slo(slo);

  total.inc(1000);
  bad.inc(10);  // exactly at objective: burn 1.0
  h.step();
  auto s = h.engine.slo_status();
  ASSERT_EQ(s.size(), 1u);
  EXPECT_NEAR(s[0].burn_rate, 1.0, 1e-9);
  EXPECT_NEAR(s[0].budget_remaining, 0.0, 1e-9);  // allowance fully used
  EXPECT_EQ(s[0].state, AlertState::kInactive);   // burn 1.0 < alert 5.0

  total.inc(1000);
  bad.inc(100);  // 10% failures: burn 10 > 5, alert fires
  h.step();
  s = h.engine.slo_status();
  EXPECT_NEAR(s[0].burn_rate, 10.0, 1e-9);
  EXPECT_EQ(s[0].state, AlertState::kFiring);
  EXPECT_EQ(h.count_events("alert.firing"), 1u);

  total.inc(1000);  // clean window: burn back to 0, resolves
  h.step();
  s = h.engine.slo_status();
  EXPECT_NEAR(s[0].burn_rate, 0.0, 1e-9);
  EXPECT_EQ(s[0].state, AlertState::kInactive);
  EXPECT_EQ(h.count_events("alert.resolved"), 1u);
}

TEST(SloTest, LatencySloCountsEventsAboveTheThreshold) {
  AlertHarness h;
  auto& hist = h.registry.histogram("test.latency_ns");
  Slo slo;
  slo.name = "latency";
  slo.kind = Slo::Kind::kLatency;
  slo.objective = 0.1;
  slo.series = "test.latency_ns";
  slo.latency_threshold_ns = 1'000'000;  // 1 ms
  slo.span_ns = kSec;
  slo.burn_alert = 5.0;
  h.engine.add_slo(slo);

  for (int i = 0; i < 90; ++i) hist.record(1'000);      // good
  for (int i = 0; i < 10; ++i) hist.record(1 << 30);    // ~1 s: bad
  h.step();
  const auto s = h.engine.slo_status();
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].total, 100u);
  EXPECT_EQ(s[0].bad, 10u);
  EXPECT_NEAR(s[0].burn_rate, 1.0, 1e-9);  // 10% bad at a 10% objective
}

TEST(SloTest, BudgetIntegratesOverTheWholeRingNotJustTheSpan) {
  AlertHarness h;
  auto& bad = h.registry.counter("test.failed");
  auto& total = h.registry.counter("test.total");
  Slo slo;
  slo.name = "availability";
  slo.kind = Slo::Kind::kFraction;
  slo.objective = 0.01;
  slo.series = "test.failed";
  slo.total_series = "test.total";
  slo.span_ns = kSec;
  h.engine.add_slo(slo);

  total.inc(1000);
  bad.inc(5);  // half the allowance
  h.step();
  total.inc(1000);  // clean second window
  h.step();
  const auto s = h.engine.slo_status();
  // Span burn is 0 (clean window) but the budget remembers the ring:
  // 5 bad / 2000 total = 0.25% of a 1% objective consumed.
  EXPECT_NEAR(s[0].burn_rate, 0.0, 1e-9);
  EXPECT_NEAR(s[0].budget_remaining, 0.75, 1e-9);
}

// --- deterministic stall-alert integration -------------------------------

// The ISSUE.md acceptance scenario: a ShardedGatewayRuntime with queued
// work and a frozen worker must deterministically fire the stall alert
// under SimClock, and resolve it once the worker drains — with both
// transitions in the event log and the telemetry.alerts.* counters.
TEST(StallAlertIntegrationTest, InducedStallFiresAndResolvesDeterministically) {
  SimClock clock(0);
  MetricsRegistry registry;
  EventLog events(clock);
  dataplane::ShardedGateway gateway(AsId{1, 100}, clock, /*num_shards=*/4, {},
                                    /*registry=*/nullptr);
  dataplane::ShardedGatewayRuntime runtime(gateway, /*ring_capacity=*/64,
                                           &registry);
  WindowedSampler sampler(registry, clock, one_sec_windows(), &registry);
  AlertEngine engine(sampler, clock, &events, &registry);
  // Two rules per shard; the stall rule debounces for 2 s.
  engine.add_rules(dataplane::ShardedGatewayRuntime::default_alert_rules(
      /*shard_count=*/4, /*ring_depth_threshold=*/48,
      /*stall_for_ns=*/2 * kSec));
  ASSERT_EQ(engine.rule_count(), 8u);

  clock.advance(kSec);
  sampler.poll();  // baseline
  engine.evaluate();
  EXPECT_EQ(engine.firing_count(), 0u);

  // Induce the stall: submit without ever starting the workers. Every
  // ring gains depth; every heartbeat stays frozen at zero.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(runtime.submit(static_cast<ResId>(1 + i), 100));
  }

  clock.advance(kSec);
  ASSERT_TRUE(sampler.poll());
  engine.evaluate();  // heartbeat rate 0 with queued work: pending
  EXPECT_EQ(engine.firing_count(), 0u);
  EXPECT_EQ(engine.fired_total(), 0u);

  clock.advance(kSec);
  ASSERT_TRUE(sampler.poll());
  engine.evaluate();  // 1 s held < 2 s debounce: still pending

  clock.advance(kSec);
  ASSERT_TRUE(sampler.poll());
  engine.evaluate();  // 2 s held: every backlogged shard fires
  const std::uint64_t fired = engine.fired_total();
  EXPECT_GT(fired, 0u);
  EXPECT_EQ(engine.firing_count(), fired);

  // Recovery: start the workers and let them drain, then cut the next
  // window only after stop() (SimClock must not move while the workers
  // read it concurrently).
  runtime.start();
  runtime.drain();
  runtime.stop();
  EXPECT_TRUE(runtime.idle());

  clock.advance(kSec);
  ASSERT_TRUE(sampler.poll());
  engine.evaluate();  // rings empty, heartbeats moved: all resolve
  EXPECT_EQ(engine.firing_count(), 0u);
  EXPECT_EQ(engine.resolved_total(), fired);

  // Both transitions are on the audit trail and the metric surface.
  std::size_t firing_events = 0, resolved_events = 0;
  for (const auto& e : events.events()) {
    firing_events += e.name == "alert.firing";
    resolved_events += e.name == "alert.resolved";
  }
  EXPECT_EQ(firing_events, fired);
  EXPECT_EQ(resolved_events, fired);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("telemetry.alerts.fired"), fired);
  EXPECT_EQ(snap.counters.at("telemetry.alerts.resolved"), fired);
  EXPECT_EQ(snap.gauges.at("telemetry.alerts.active"), 0);
}

// Re-running the identical scenario produces the identical transition
// history — the determinism claim, stated as a test.
TEST(StallAlertIntegrationTest, TransitionHistoryIsReproducible) {
  auto run = [] {
    SimClock clock(0);
    MetricsRegistry registry;
    EventLog events(clock);
    dataplane::ShardedGateway gateway(AsId{1, 100}, clock, 4, {}, nullptr);
    dataplane::ShardedGatewayRuntime runtime(gateway, 64, &registry);
    WindowedSampler sampler(registry, clock, one_sec_windows(), &registry);
    AlertEngine engine(sampler, clock, &events, &registry);
    engine.add_rules(dataplane::ShardedGatewayRuntime::default_alert_rules(
        4, 48, 2 * kSec));
    clock.advance(kSec);
    sampler.poll();
    for (int i = 0; i < 64; ++i) (void)runtime.submit(static_cast<ResId>(i), 1);
    std::string history;
    for (int step = 0; step < 4; ++step) {
      clock.advance(kSec);
      sampler.poll();
      engine.evaluate();
      for (const auto& st : engine.status()) {
        history += st.name + "=" + telemetry::alert_state_name(st.state) + ";";
      }
      history += "\n";
    }
    return history;
  };
  EXPECT_EQ(run(), run());
}

// --- concurrency (TSan race lane: SamplerAlertStressTest) ----------------

// Producers hammer counters/gauges while one monitor polls + evaluates
// and a reader queries rates and snapshots the registry. Run under the
// TSan preset via scripts/ci.sh; period 0 makes every poll cut a
// window so the sampler's locked path is exercised constantly.
TEST(SamplerAlertStressTest, ConcurrentProducersMonitorAndReaders) {
  SystemClock clock;
  MetricsRegistry registry;
  EventLog events(clock);
  auto& c0 = registry.counter("stress.a");
  auto& c1 = registry.counter("stress.b.x");
  auto& g = registry.gauge("stress.depth");
  auto& h = registry.histogram("stress.latency_ns");
  WindowedSamplerConfig cfg;
  cfg.period_ns = 0;  // every poll cuts a window
  cfg.ring_capacity = 16;
  WindowedSampler sampler(registry, clock, cfg, &registry);
  sampler.track_rate("stress.a");
  sampler.track_rate("stress.b.");
  sampler.track_percentiles("stress.latency_ns");
  sampler.track_watermark("stress.depth");
  AlertEngine engine(sampler, clock, &events, &registry);
  AlertRule rule;
  rule.name = "stress.rate";
  rule.series = "stress.a";
  rule.signal = AlertSignal::kRate;
  rule.span_ns = kSec;
  rule.cmp = AlertCmp::kAbove;
  rule.threshold = 1.0;
  engine.add_rule(rule);
  Slo slo;
  slo.name = "stress";
  slo.kind = Slo::Kind::kFraction;
  slo.series = "stress.b.";
  slo.total_series = "stress.a";
  engine.add_slo(slo);

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        c0.inc();
        c1.inc(2);
        g.add(t % 2 == 0 ? 1 : -1);
        h.record_shared(100 + t);
      }
    });
  }
  threads.emplace_back([&] {  // the monitoring loop
    while (!stop.load(std::memory_order_relaxed)) {
      if (sampler.poll()) (void)engine.evaluate();
    }
  });
  threads.emplace_back([&] {  // a concurrent reader
    while (!stop.load(std::memory_order_relaxed)) {
      (void)sampler.rate("stress.a", kSec);
      (void)sampler.windowed_percentile("stress.latency_ns", 0.99, kSec);
      (void)engine.status();
      (void)engine.slo_status();
      (void)registry.snapshot();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& t : threads) t.join();

  EXPECT_GT(sampler.windows_sampled(), 0u);
  EXPECT_GT(engine.evaluations(), 0u);
  const auto snap = registry.snapshot();
  EXPECT_TRUE(snap.counters.contains("telemetry.sampler.windows"));
  EXPECT_TRUE(snap.counters.contains("telemetry.alerts.evaluations"));
}

}  // namespace
}  // namespace colibri
