// Cross-module integration tests: full control-plane + data-plane flows
// through the Testbed — the life of a reservation from beaconing to
// packet delivery, failure recovery, attack handling, and the §3.4
// traffic-split accounting.
#include <gtest/gtest.h>

#include "colibri/app/testbed.hpp"
#include "colibri/sim/scenario.hpp"
#include "colibri/telemetry/metrics.hpp"
#include "colibri/telemetry/trace_assembler.hpp"
#include "colibri/telemetry/trace_export.hpp"

namespace colibri {
namespace {

using app::Testbed;

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest()
      : clock_(1000 * kNsPerSec),
        bed_(topology::builders::two_isd_topology(), clock_) {
    // Modest per-segment demand so every discovered segment fits within
    // the links' Colibri share and provisioning succeeds everywhere.
    const size_t provisioned = bed_.provision_all_segments(1000, 2'000'000);
    EXPECT_GT(provisioned, 0u);
  }

  SimClock clock_;
  Testbed bed_;
};

// A packet produced by a session traverses every on-path border router
// and is delivered — while a tampered copy is rejected at the first hop.
TEST_F(IntegrationTest, LifeOfAPacket) {
  const AsId src{1, 112}, dst{2, 221};
  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(0xA), HostAddr::from_u64(0xB), 1000, 100'000);
  ASSERT_TRUE(session.ok()) << errc_name(session.error());

  const auto rec = bed_.cserv(src).db().eer_copy(session.value().key());
  ASSERT_TRUE(rec.has_value());
  ASSERT_GE(rec->path.size(), 4u);  // crosses the core

  for (int n = 0; n < 50; ++n) {
    dataplane::FastPacket pkt;
    ASSERT_EQ(session.value().send(1000, pkt), dataplane::Gateway::Verdict::kOk);
    for (size_t i = 0; i < rec->path.size(); ++i) {
      const auto verdict = bed_.router(rec->path[i].as).process(pkt);
      if (i + 1 < rec->path.size()) {
        ASSERT_EQ(verdict, dataplane::BorderRouter::Verdict::kForward);
      } else {
        ASSERT_EQ(verdict, dataplane::BorderRouter::Verdict::kDeliver);
      }
    }
    clock_.advance(1'000'000);
  }
}

// Observability: after real traffic through the testbed, one global
// registry snapshot exposes router verdict counters, cserv admission
// counters, and latency histograms — without any component wiring
// beyond construction.
TEST_F(IntegrationTest, TelemetrySnapshotCoversControlAndDataPlane) {
  auto& reg = telemetry::MetricsRegistry::global();

  const AsId src{1, 112}, dst{2, 221};
  // Sample every packet's validation latency at the first-hop router.
  bed_.router(src).set_latency_sampling(1);

  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(0xA), HostAddr::from_u64(0xB), 1000, 100'000);
  ASSERT_TRUE(session.ok()) << errc_name(session.error());
  const auto rec = bed_.cserv(src).db().eer_copy(session.value().key());
  ASSERT_TRUE(rec.has_value());

  for (int n = 0; n < 20; ++n) {
    dataplane::FastPacket pkt;
    ASSERT_EQ(session.value().send(1000, pkt), dataplane::Gateway::Verdict::kOk);
    for (const auto& hop : rec->path) {
      (void)bed_.router(hop.as).process(pkt);
    }
    clock_.advance(1'000'000);
  }
  bed_.router(src).set_latency_sampling(0);

  const auto snap = reg.snapshot();
  // Data plane: router verdicts (forwarded across all on-path routers)
  // and gateway accounting.
  EXPECT_GE(snap.counters.at("router.forwarded"), 20u);
  EXPECT_GE(snap.counters.at("router.delivered"), 20u);
  EXPECT_EQ(snap.counters.count("router.drop.auth-failed"), 1u);
  EXPECT_GE(snap.counters.at("gateway.forwarded"), 20u);
  // Control plane: admission outcomes from provisioning + the EER.
  EXPECT_GT(snap.counters.at("cserv.seg_requests"), 0u);
  EXPECT_GT(snap.counters.at("cserv.seg_granted"), 0u);
  EXPECT_GT(snap.counters.at("cserv.eer_granted"), 0u);
  // Latency histograms populated on both planes.
  EXPECT_GT(snap.histograms.at("cserv.request_latency_ns").count, 0u);
  EXPECT_GE(snap.histograms.at("router.validate_latency_ns").count, 20u);
  EXPECT_GT(snap.histograms.at("bus.hop_latency_ns").count, 0u);

  // The JSON export carries the same names.
  const std::string json = reg.to_json();
  for (const char* needle :
       {"router.forwarded", "cserv.seg_granted", "router.validate_latency_ns",
        "\"p99\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

// Bus span tracing: opt-in, records the nested control-plane call chain
// of a single request with per-hop self time.
TEST_F(IntegrationTest, BusSpanTracingRecordsControlPlaneHops) {
  auto& tracer = bed_.bus().tracer();
  tracer.enable();
  const AsId src{1, 111}, dst{2, 222};
  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(0x1), HostAddr::from_u64(0x2), 1000, 50'000);
  tracer.disable();
  ASSERT_TRUE(session.ok()) << errc_name(session.error());

  const auto trace = tracer.take();
  ASSERT_FALSE(trace.spans.empty());
  // Every span closed, durations are sane, and self time never exceeds
  // the span's own duration.
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    const auto& s = trace.spans[i];
    EXPECT_GE(s.duration_ns, 0);
    EXPECT_LE(trace.self_time_ns(i), s.duration_ns);
    if (s.parent >= 0) {
      EXPECT_EQ(trace.spans[static_cast<size_t>(s.parent)].depth, s.depth - 1);
    }
  }
}

// Distributed tracing end to end: an EER setup crossing the core (4+
// on-path ASes) carries one trace context hop by hop; the assembler
// stitches the per-AS spans into a single causal tree whose hop order is
// the topology path order, and both exposition surfaces (Perfetto flow
// arrows, waterfall) render it.
TEST_F(IntegrationTest, DistributedTraceFollowsTopologyPath) {
  auto& tracer = bed_.bus().tracer();
  tracer.enable();
  const AsId src{1, 112}, dst{2, 221};
  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(0xA), HostAddr::from_u64(0xB), 1000, 100'000);
  tracer.disable();
  ASSERT_TRUE(session.ok()) << errc_name(session.error());
  const auto rec = bed_.cserv(src).db().eer_copy(session.value().key());
  ASSERT_TRUE(rec.has_value());
  ASSERT_GE(rec->path.size(), 4u);  // crosses the core

  const telemetry::SpanTrace capture = tracer.take();
  telemetry::TraceAssembler assembler;
  assembler.add_capture(capture);
  const auto traces = assembler.assemble();
  ASSERT_FALSE(traces.empty());

  // Exactly one assembled trace carries this reservation.
  const std::int64_t res_id =
      static_cast<std::int64_t>(session.value().key().res_id);
  std::size_t matches = 0;
  for (const auto& t : traces) matches += t.res_id() == res_id;
  ASSERT_EQ(matches, 1u);
  const telemetry::AssembledTrace* t =
      telemetry::TraceAssembler::find_by_res_id(traces, res_id);
  ASSERT_NE(t, nullptr);

  // The admission chain (the hops that reached a verdict for this EER)
  // is the topology path, in order: source first, then each on-path AS.
  std::vector<const telemetry::HopAttribution*> chain;
  for (const auto& h : t->hops) {
    if (h.arg("verdict").rfind("eer.", 0) == 0) chain.push_back(&h);
  }
  ASSERT_EQ(chain.size(), rec->path.size());
  EXPECT_EQ(chain[0]->as, src.to_string());
  EXPECT_EQ(chain[0]->parent_span_id, 0u);  // the initiator is the root
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_EQ(chain[i]->as, rec->path[i].as.to_string()) << "hop " << i;
    EXPECT_FALSE(chain[i]->orphan);
    EXPECT_FALSE(chain[i]->truncated);
    if (i > 0) {
      // Causality on the wire ids, not capture order.
      EXPECT_EQ(chain[i]->parent_span_id, chain[i - 1]->span_id);
      EXPECT_GT(chain[i]->depth, chain[i - 1]->depth);
    }
  }
  // Latency attribution adds up: downstream time is inside the root.
  EXPECT_GE(t->total_ns(), chain.back()->total_ns);
  EXPECT_NE(t->waterfall().find("<-- bottleneck"), std::string::npos);

  // Perfetto: the same capture renders cross-track flow arrows.
  telemetry::PerfettoTraceBuilder ptb;
  ptb.add_span_trace(capture, "control-plane", "setup");
  const std::string json = ptb.to_json();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
}

// Tracing disabled is the default and must add nothing to the wire: the
// same setup with the tracer off produces packets with no trace flag.
TEST_F(IntegrationTest, NoTraceContextOnTheWireWhenDisabled) {
  ASSERT_FALSE(bed_.bus().tracer().enabled());
  ASSERT_FALSE(bed_.bus().tracing_active());
  const AsId src{1, 111}, dst{2, 222};
  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(0x1), HostAddr::from_u64(0x2), 1000, 50'000);
  ASSERT_TRUE(session.ok()) << errc_name(session.error());
  // Nothing was recorded, and no context is live on the bus.
  EXPECT_TRUE(bed_.bus().tracer().take().spans.empty());
  EXPECT_FALSE(bed_.bus().current_context().present());
}

// Path choice (§2.1): when the first chain's SegR has no capacity left,
// the daemon retries over an alternative and still succeeds.
TEST_F(IntegrationTest, FailoverToAlternativePath) {
  const AsId src{1, 110}, dst{1, 120};
  const auto chains = bed_.daemon(src).candidate_chains(dst);
  ASSERT_GE(chains.size(), 2u);

  // Exhaust the EER bandwidth of the SegRs *unique* to the first chain
  // (chains typically share the single up-SegR from the source AS;
  // saturating that would block every path).
  std::set<ResKey> shared;
  for (size_t c = 1; c < chains.size(); ++c) {
    for (const auto& advert : chains[c]) shared.insert(advert.key);
  }
  size_t saturated = 0;
  for (const auto& advert : chains.front()) {
    if (shared.contains(advert.key)) continue;
    for (const auto& hop : advert.hops) {
      const bool hit = bed_.cserv(hop.as).db().with_segr(
          advert.key, [](reservation::SegrRecord* r) {
            if (r == nullptr) return false;
            r->eer_allocated_kbps = r->active.bw_kbps;
            return true;
          });
      if (hit) ++saturated;
    }
  }
  ASSERT_GT(saturated, 0u);

  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 1000, 10'000);
  ASSERT_TRUE(session.ok()) << errc_name(session.error());
  // The established path is not the saturated first chain.
  const auto rec = bed_.cserv(src).db().eer_copy(session.value().key());
  ASSERT_TRUE(rec.has_value());
  std::vector<ResKey> first_chain_keys;
  for (const auto& a : chains.front()) first_chain_keys.push_back(a.key);
  EXPECT_NE(rec->segrs, first_chain_keys);
}

// Seamless renewal (§4.2): traffic keeps flowing across a version change;
// the monitor treats all versions as one flow.
TEST_F(IntegrationTest, SeamlessRenewalUnderTraffic) {
  const AsId src{1, 110}, dst{1, 121};
  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 1000, 1'000'000);
  ASSERT_TRUE(session.ok());
  const auto rec = bed_.cserv(src).db().eer_copy(session.value().key());
  ASSERT_TRUE(rec.has_value());

  for (int second = 0; second < 40; ++second) {
    clock_.advance(kNsPerSec);
    ASSERT_TRUE(session.value().maybe_renew()) << "second " << second;
    dataplane::FastPacket pkt;
    ASSERT_EQ(session.value().send(500, pkt), dataplane::Gateway::Verdict::kOk)
        << "second " << second;
    for (size_t i = 0; i < rec->path.size(); ++i) {
      const auto v = bed_.router(rec->path[i].as).process(pkt);
      ASSERT_TRUE(v == dataplane::BorderRouter::Verdict::kForward ||
                  v == dataplane::BorderRouter::Verdict::kDeliver);
    }
  }
  // Multiple versions were created along the way.
  EXPECT_GE(session.value().version(), 2);
}

// SegR version switch does not disturb existing EERs (§4.2).
TEST_F(IntegrationTest, SegrActivationKeepsEersAlive) {
  const AsId src{1, 110}, dst{1, 111};
  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 1000, 10'000);
  ASSERT_TRUE(session.ok());
  const auto rec = bed_.cserv(src).db().eer_copy(session.value().key());
  ASSERT_TRUE(rec.has_value());
  const ResKey segr_key = rec->segrs.front();

  clock_.advance(2 * kNsPerSec);
  auto renew =
      bed_.cserv(segr_key.src_as).renew_segr(segr_key, 1000, 15'000'000);
  ASSERT_TRUE(renew.ok()) << errc_name(renew.error());
  ASSERT_TRUE(bed_.cserv(segr_key.src_as)
                  .activate_segr(segr_key, renew.value().version)
                  .ok());

  // The EER still forwards.
  dataplane::FastPacket pkt;
  ASSERT_EQ(session.value().send(100, pkt), dataplane::Gateway::Verdict::kOk);
  for (size_t i = 0; i < rec->path.size(); ++i) {
    const auto v = bed_.router(rec->path[i].as).process(pkt);
    ASSERT_TRUE(v == dataplane::BorderRouter::Verdict::kForward ||
                v == dataplane::BorderRouter::Verdict::kDeliver);
  }
}

// Full policing loop (§4.8): a source AS that skips gateway monitoring is
// detected by a transit OFD, blocked at the router, reported to the
// CServ, and denied future reservations.
TEST_F(IntegrationTest, PolicingLoopBlocksOveruser) {
  const AsId src{1, 110}, dst{1, 120}, transit{1, 100};
  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 1000, 1'000);
  ASSERT_TRUE(session.ok());
  const auto rec = bed_.cserv(src).db().eer_copy(session.value().key());
  ASSERT_TRUE(rec.has_value());

  // Wire monitoring into the transit router.
  dataplane::OverUseFlowDetector ofd;
  dataplane::Blocklist blocklist;
  auto& transit_router = bed_.router(transit);
  transit_router.attach_ofd(&ofd);
  transit_router.attach_blocklist(&blocklist);

  // Malicious gateway: craft packets directly at 100x the reservation.
  // The transit AS's router must confirm overuse and block.
  const auto transit_rec = bed_.cserv(transit).db().eer_copy(rec->key);
  ASSERT_TRUE(transit_rec.has_value());
  const std::uint8_t transit_hop = transit_rec->local_hop;

  proto::ResInfo ri;
  ri.src_as = src;
  ri.res_id = rec->key.res_id;
  ri.bw_kbps = session.value().bw_kbps();
  ri.exp_time = session.value().exp_time();
  ri.version = session.value().version();
  proto::EerInfo ei;
  ei.src_host = rec->src_host;
  ei.dst_host = rec->dst_host;
  crypto::Aes128 transit_cipher(bed_.cserv(transit).hop_key().bytes.data());
  const dataplane::HopAuth sigma = dataplane::compute_hopauth(
      transit_cipher, ri, ei, rec->path[transit_hop].ingress,
      rec->path[transit_hop].egress);

  bool blocked = false;
  for (int i = 0; i < 200'000 && !blocked; ++i) {
    dataplane::FastPacket pkt;
    pkt.is_eer = true;
    pkt.num_hops = static_cast<std::uint8_t>(rec->path.size());
    pkt.current_hop = transit_hop;
    pkt.resinfo = ri;
    pkt.eerinfo = ei;
    pkt.payload_bytes = 1000;
    for (size_t h = 0; h < rec->path.size(); ++h) {
      pkt.ifaces[h] =
          dataplane::IfPair{rec->path[h].ingress, rec->path[h].egress};
    }
    pkt.timestamp = PacketTimestamp::encode(clock_.now_ns(), ri.exp_time);
    pkt.hvfs[transit_hop] =
        dataplane::compute_data_hvf(sigma, pkt.timestamp, pkt.wire_size());
    const auto v = transit_router.process(pkt);
    blocked = v == dataplane::BorderRouter::Verdict::kBlocked;
    clock_.advance(10'000);  // 1000 B / 10 µs = 800 Mbps >> 1 Mbps
  }
  EXPECT_TRUE(blocked);
  EXPECT_GE(blocklist.reports().size(), 1u);

  // Close the loop: the report reaches the CServ, which denies future
  // reservations from the offender.
  for (const auto& offense : blocklist.drain_reports()) {
    bed_.cserv(transit).report_offense(offense);
  }
  auto denied = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(5), HostAddr::from_u64(6), 1000, 1'000);
  EXPECT_FALSE(denied.ok());
}

// Control-plane messages cross the bus serialized; the accounting shows
// real message flow (management-scalability sanity).
TEST_F(IntegrationTest, BusCarriesSerializedControlPlane) {
  EXPECT_GT(bed_.bus().message_count(), 0u);
  EXPECT_GT(bed_.bus().byte_count(), 0u);
}

// §3.4 traffic split: admission never grants more than the Colibri share
// of a link (75 % by default), leaving room for best effort.
TEST_F(IntegrationTest, TrafficSplitRespectedByAdmission) {
  const topology::Topology& topo = bed_.topology();
  for (AsId as : topo.as_ids()) {
    const auto& node = topo.node(as);
    auto& ledger = bed_.cserv(as).segr_admission().ledger();
    for (const auto& intf : node.interfaces) {
      EXPECT_LE(ledger.granted_total(intf.id),
                node.colibri_capacity(intf.id))
          << as.to_string() << " if " << intf.id;
    }
  }
}

// End-to-end protection scenario smoke (Table 2 shape at reduced rate).
TEST(ProtectionIntegrationTest, BestEffortCannotStarveReservations) {
  sim::ScenarioConfig cfg;
  cfg.duration_ns = 40'000'000;
  cfg.warmup_ns = 10'000'000;
  sim::ProtectionScenario scenario(cfg);
  std::vector<sim::FlowSpec> flows = {
      {"res1", sim::FlowSpec::Kind::kAuthentic, 0, 0.4, 1000, 0},
      {"be-flood", sim::FlowSpec::Kind::kBestEffort, 1, 40.0, 1000, 0},
      {"be-flood2", sim::FlowSpec::Kind::kBestEffort, 2, 40.0, 1000, 0},
  };
  const auto r = scenario.run_phase(flows);
  EXPECT_NEAR(r.flows[0].delivered_gbps, 0.4, 0.05);
}

}  // namespace
}  // namespace colibri
