// Parameterized property suites (TEST_P sweeps) on system invariants:
//  - gateway/router HVF agreement for every path length and payload size,
//  - codec round-trip stability under random packets,
//  - admission no-over-allocation under randomized churn for many seeds,
//  - token-bucket long-run rate conformance across rates,
//  - duplicate suppression completeness across window sizes.
#include <gtest/gtest.h>

#include "colibri/common/rand.hpp"
#include "colibri/dataplane/gateway.hpp"
#include "colibri/dataplane/router.hpp"
#include "colibri/admission/segr_admission.hpp"
#include "colibri/dataplane/dupsup.hpp"
#include "colibri/dataplane/tokenbucket.hpp"
#include "colibri/proto/codec.hpp"

namespace colibri {
namespace {

// --- HVF agreement across path lengths and payloads ---------------------------

class HvfAgreement
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(HvfAgreement, GatewayPacketsVerifyAtEveryHop) {
  const int hops = std::get<0>(GetParam());
  const std::uint32_t payload = std::get<1>(GetParam());

  SimClock clock(500 * kNsPerSec);
  dataplane::Gateway gw(AsId{1, 1}, clock);

  std::vector<topology::Hop> path;
  std::vector<drkey::Key128> keys;
  std::vector<dataplane::HopAuth> sigmas;
  proto::ResInfo ri{AsId{1, 1}, 9, 1'000'000, 1000, 0};
  proto::EerInfo ei{HostAddr::from_u64(1), HostAddr::from_u64(2)};
  Rng rng(static_cast<std::uint64_t>(hops) * 31 + payload);
  for (int i = 0; i < hops; ++i) {
    path.push_back(topology::Hop{AsId{1, static_cast<std::uint64_t>(10 + i)},
                                 static_cast<IfId>(i == 0 ? 0 : 7),
                                 static_cast<IfId>(i + 1 == hops ? 0 : 8)});
    drkey::Key128 k;
    rng.fill(k.bytes.data(), k.bytes.size());
    keys.push_back(k);
    crypto::Aes128 cipher(k.bytes.data());
    sigmas.push_back(dataplane::compute_hopauth(cipher, ri, ei,
                                                path[static_cast<size_t>(i)].ingress,
                                                path[static_cast<size_t>(i)].egress));
  }
  ASSERT_TRUE(gw.install(ri, ei, path, sigmas));

  dataplane::FastPacket pkt;
  ASSERT_EQ(gw.process(9, payload, pkt), dataplane::Gateway::Verdict::kOk);
  for (int i = 0; i < hops; ++i) {
    dataplane::BorderRouter router(path[static_cast<size_t>(i)].as,
                                   keys[static_cast<size_t>(i)], clock);
    const auto verdict = router.process(pkt);
    if (i + 1 < hops) {
      ASSERT_EQ(verdict, dataplane::BorderRouter::Verdict::kForward)
          << "hop " << i;
    } else {
      ASSERT_EQ(verdict, dataplane::BorderRouter::Verdict::kDeliver);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PathAndPayloadSweep, HvfAgreement,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8, 12, 16),
                       ::testing::Values(0u, 1u, 100u, 1000u, 9000u)));

// --- codec round-trip under random packets -------------------------------------

class CodecRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecRoundTrip, EncodeDecodeEncodeIsStable) {
  Rng rng(GetParam());
  for (int n = 0; n < 200; ++n) {
    proto::Packet p;
    p.type = static_cast<proto::PacketType>(rng.below(7));
    p.is_eer = rng.below(2) == 1;
    const size_t hops = 1 + rng.below(16);
    p.current_hop = static_cast<std::uint8_t>(rng.below(hops));
    p.path.resize(hops);
    p.hvfs.resize(hops);
    for (size_t i = 0; i < hops; ++i) {
      p.path[i].ingress = static_cast<IfId>(rng.below(1 << 16));
      p.path[i].egress = static_cast<IfId>(rng.below(1 << 16));
      rng.fill(p.hvfs[i].data(), p.hvfs[i].size());
    }
    p.resinfo.src_as = AsId::from_raw(rng.next());
    p.resinfo.res_id = static_cast<ResId>(rng.next());
    p.resinfo.bw_kbps = static_cast<BwKbps>(rng.next());
    p.resinfo.exp_time = static_cast<UnixSec>(rng.next());
    p.resinfo.version = static_cast<ResVer>(rng.next());
    rng.fill(p.eerinfo.src_host.bytes, 16);
    rng.fill(p.eerinfo.dst_host.bytes, 16);
    p.timestamp = static_cast<std::uint32_t>(rng.next());
    p.payload.resize(rng.below(300));
    rng.fill(p.payload.data(), p.payload.size());

    const Bytes wire = proto::encode_packet(p);
    ASSERT_EQ(wire.size(), p.wire_size());
    auto decoded = proto::decode_packet(wire);
    ASSERT_TRUE(decoded.has_value()) << "case " << n;
    ASSERT_EQ(proto::encode_packet(*decoded), wire) << "case " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- admission invariant across seeds -------------------------------------------

class AdmissionChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdmissionChurn, NeverOverAllocatesAndUnwindsToZero) {
  Rng rng(GetParam());
  admission::SegrAdmission adm;
  constexpr BwKbps kCap = 25'000;
  adm.set_interface_capacity(1, 1'000'000);
  adm.set_interface_capacity(2, kCap);

  std::vector<ResKey> live;
  for (int i = 0; i < 3000; ++i) {
    const int action = static_cast<int>(rng.below(10));
    if (live.empty() || action < 6) {
      admission::SegrAdmissionRequest req;
      req.src_as = AsId{1, 1 + rng.below(30)};
      req.key = ResKey{req.src_as, static_cast<ResId>(i + 1)};
      req.ingress = 1;
      req.egress = 2;
      req.demand_kbps = static_cast<BwKbps>(1 + rng.below(8000));
      req.min_bw_kbps = static_cast<BwKbps>(rng.below(50));
      if (adm.admit(req).ok()) live.push_back(req.key);
    } else if (action < 9) {
      const size_t idx = rng.below(live.size());
      adm.release(live[idx]);
      live.erase(live.begin() + static_cast<long>(idx));
    } else {
      // Renewal of a random live reservation at a new demand.
      const size_t idx = rng.below(live.size());
      admission::SegrAdmissionRequest req;
      req.src_as = live[idx].src_as;
      req.key = live[idx];
      req.ingress = 1;
      req.egress = 2;
      req.demand_kbps = static_cast<BwKbps>(1 + rng.below(8000));
      (void)adm.admit(req);
    }
    ASSERT_LE(adm.ledger().granted_total(2), kCap) << "step " << i;
  }
  for (const auto& key : live) adm.release(key);
  EXPECT_EQ(adm.ledger().granted_total(2), 0u);

  // Rejected requests left demand memory behind (by design — it shapes
  // the next renewal round); it expires after kDemandMemorySec, after
  // which the ledger drains fully.
  admission::SegrAdmissionRequest flush;
  flush.now = admission::SegrAdmission::kDemandMemorySec + 10;
  flush.src_as = AsId{1, 1};
  flush.key = ResKey{flush.src_as, 0x7FFFFFFF};
  flush.ingress = 1;
  flush.egress = 2;
  flush.demand_kbps = 1;
  (void)adm.admit(flush);
  adm.release(flush.key);
  EXPECT_EQ(adm.pending_demands(), 0u);
  EXPECT_EQ(adm.ledger().granted_total(2), 0u);
  EXPECT_NEAR(adm.ledger().total_adjusted_demand(2), 0.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdmissionChurn,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// --- token-bucket rate conformance across rates -----------------------------------

class BucketRates : public ::testing::TestWithParam<BwKbps> {};

TEST_P(BucketRates, LongRunThroughputMatchesRate) {
  const BwKbps rate = GetParam();
  // ~10 ms of burst, but never below one packet — a bucket whose burst is
  // smaller than the MTU can pass nothing at all.
  const std::uint64_t burst = std::max<std::uint64_t>(rate * 125 / 100, 600);
  dataplane::TokenBucket tb(rate, burst, 0);
  // Offer 4x the rate for 10 simulated seconds with 500 B packets.
  const double offered_bps = static_cast<double>(rate) * 1000.0 * 4;
  const TimeNs interval =
      static_cast<TimeNs>(500.0 * 8.0 / offered_bps * kNsPerSec);
  std::uint64_t passed_bytes = 0;
  TimeNs t = 0;
  while (t < 10 * kNsPerSec) {
    t += interval;
    if (tb.allow(500, t)) passed_bytes += 500;
  }
  const double passed_kbps = static_cast<double>(passed_bytes) * 8.0 / 10.0 / 1000.0;
  EXPECT_NEAR(passed_kbps, static_cast<double>(rate),
              static_cast<double>(rate) * 0.05 + 10.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, BucketRates,
                         ::testing::Values(64u, 1'000u, 100'000u, 1'000'000u,
                                           400'000'000u));

// --- duplicate suppression completeness across window sizes ------------------------

class DupSupWindows : public ::testing::TestWithParam<TimeNs> {};

TEST_P(DupSupWindows, AllReplaysWithinHistoryAreCaught) {
  dataplane::DupSupConfig cfg;
  cfg.window_ns = GetParam();
  dataplane::DuplicateSuppression ds(cfg);
  const AsId src{1, 3};
  Rng rng(7);
  // Fresh inserts with strictly increasing timestamps.
  std::vector<std::uint32_t> seen;
  TimeNs t = 10 * kNsPerSec;
  for (std::uint32_t ts = 1; ts <= 500; ++ts) {
    ASSERT_EQ(ds.check(src, 1, ts, t, t),
              dataplane::DuplicateSuppression::Verdict::kFresh);
    seen.push_back(ts);
    t += cfg.window_ns / 1000;
  }
  // Replays of identifiers still within the filters' history: zero false
  // negatives (Bloom filters have no false negatives by construction).
  int caught = 0;
  for (std::uint32_t ts : seen) {
    const auto v = ds.check(src, 1, ts, t, t);
    caught += v != dataplane::DuplicateSuppression::Verdict::kFresh;
  }
  EXPECT_EQ(caught, 500);
}

INSTANTIATE_TEST_SUITE_P(Windows, DupSupWindows,
                         ::testing::Values(kNsPerSec / 10, kNsPerSec,
                                           5 * kNsPerSec));

}  // namespace
}  // namespace colibri
