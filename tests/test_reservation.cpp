// Unit tests: reservation records, versioning semantics, stores, sweeps.
#include <gtest/gtest.h>

#include "colibri/reservation/db.hpp"

namespace colibri::reservation {
namespace {

SegrRecord make_segr(ResId id, BwKbps bw, UnixSec exp, IfId in = 1,
                     IfId eg = 2) {
  SegrRecord r;
  r.key = ResKey{AsId{1, 10}, id};
  r.seg_type = topology::SegType::kUp;
  r.hops = {topology::Hop{AsId{1, 10}, kNoInterface, 3},
            topology::Hop{AsId{1, 20}, in, eg},
            topology::Hop{AsId{1, 100}, 4, kNoInterface}};
  r.local_hop = 1;
  r.active = SegrVersion{0, bw, exp};
  return r;
}

EerRecord make_eer(ResId id, BwKbps bw, UnixSec exp) {
  EerRecord r;
  r.key = ResKey{AsId{1, 10}, id};
  r.src_host = HostAddr::from_u64(1);
  r.dst_host = HostAddr::from_u64(2);
  r.path = {topology::Hop{AsId{1, 10}, 0, 1}, topology::Hop{AsId{1, 20}, 2, 0}};
  r.local_hop = 0;
  r.segrs = {ResKey{AsId{1, 10}, 900}};
  r.versions = {EerVersion{0, bw, exp}};
  return r;
}

TEST(SegrRecordTest, InterfaceAccessors) {
  const SegrRecord r = make_segr(1, 100, 50);
  EXPECT_EQ(r.ingress(), 1);
  EXPECT_EQ(r.egress(), 2);
}

TEST(SegrRecordTest, EerAvailability) {
  SegrRecord r = make_segr(1, 100, 50);
  EXPECT_EQ(r.eer_available_kbps(), 100u);
  r.eer_allocated_kbps = 30;
  EXPECT_EQ(r.eer_available_kbps(), 70u);
  r.eer_allocated_kbps = 150;  // defensive: never negative
  EXPECT_EQ(r.eer_available_kbps(), 0u);
}

TEST(SegrRecordTest, Expiry) {
  const SegrRecord r = make_segr(1, 100, 50);
  EXPECT_FALSE(r.expired(49));
  EXPECT_TRUE(r.expired(50));
}

TEST(EerRecordTest, EffectiveBwIsMaxOverLiveVersions) {
  EerRecord r = make_eer(1, 100, 50);
  r.versions.push_back(EerVersion{1, 80, 60});
  r.versions.push_back(EerVersion{2, 120, 40});
  // At t=30 all live: max = 120.
  EXPECT_EQ(r.effective_bw(30), 120u);
  // At t=45 version 2 expired: max(100, 80) = 100.
  EXPECT_EQ(r.effective_bw(45), 100u);
  // At t=55 only version 1 lives.
  EXPECT_EQ(r.effective_bw(55), 80u);
  EXPECT_EQ(r.effective_bw(60), 0u);
}

TEST(EerRecordTest, PruneDropsExpiredVersions) {
  EerRecord r = make_eer(1, 100, 50);
  r.versions.push_back(EerVersion{1, 80, 60});
  EXPECT_TRUE(r.prune(55));
  ASSERT_EQ(r.versions.size(), 1u);
  EXPECT_EQ(r.versions[0].version, 1);
  EXPECT_FALSE(r.prune(55));
}

TEST(EerRecordTest, LatestExpiry) {
  EerRecord r = make_eer(1, 100, 50);
  r.versions.push_back(EerVersion{1, 80, 70});
  EXPECT_EQ(r.latest_expiry(), 70u);
  EXPECT_FALSE(r.expired(69));
  EXPECT_TRUE(r.expired(70));
}

TEST(SegrStoreTest, UpsertFindErase) {
  SegrStore store;
  SegrRecord* p = store.upsert(make_segr(1, 100, 50));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.find(p->key), p);
  EXPECT_TRUE(store.erase(p->key));
  EXPECT_EQ(store.find(ResKey{AsId{1, 10}, 1}), nullptr);
  EXPECT_FALSE(store.erase(ResKey{AsId{1, 10}, 1}));
}

TEST(SegrStoreTest, UpsertReplacesAndReindexes) {
  SegrStore store;
  store.upsert(make_segr(1, 100, 50, 1, 2));
  // Replace with different interfaces.
  store.upsert(make_segr(1, 200, 60, 5, 6));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.by_interface_pair(1, 2).empty());
  ASSERT_EQ(store.by_interface_pair(5, 6).size(), 1u);
  EXPECT_EQ(store.by_interface_pair(5, 6)[0]->active.bw_kbps, 200u);
}

TEST(SegrStoreTest, PointersStableAcrossInserts) {
  SegrStore store;
  SegrRecord* first = store.upsert(make_segr(1, 100, 50));
  for (ResId i = 2; i <= 200; ++i) store.upsert(make_segr(i, 10, 50));
  EXPECT_EQ(store.find(ResKey{AsId{1, 10}, 1}), first);
  EXPECT_EQ(first->active.bw_kbps, 100u);
}

TEST(SegrStoreTest, SweepRemovesExpiredOnly) {
  SegrStore store;
  store.upsert(make_segr(1, 100, 50));
  store.upsert(make_segr(2, 100, 150));
  std::vector<ResId> removed;
  const size_t n = store.sweep(
      100, [&](const SegrRecord& r) { removed.push_back(r.key.res_id); });
  EXPECT_EQ(n, 1u);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], 1u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(SegrStoreTest, SweepKeepsExpiredActiveWithLivePending) {
  SegrStore store;
  SegrRecord r = make_segr(1, 100, 50);
  r.pending = SegrVersion{1, 100, 200};
  store.upsert(std::move(r));
  EXPECT_EQ(store.sweep(100, nullptr), 0u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(EerStoreTest, IndexBySegr) {
  EerStore store;
  EerRecord a = make_eer(1, 10, 50);
  EerRecord b = make_eer(2, 10, 50);
  b.segrs = {ResKey{AsId{1, 10}, 901}};
  store.upsert(a);
  store.upsert(b);
  EXPECT_EQ(store.by_segr(ResKey{AsId{1, 10}, 900}).size(), 1u);
  EXPECT_EQ(store.by_segr(ResKey{AsId{1, 10}, 901}).size(), 1u);
  EXPECT_TRUE(store.by_segr(ResKey{AsId{1, 10}, 999}).empty());
}

TEST(EerStoreTest, UpsertReindexesSegrs) {
  EerStore store;
  store.upsert(make_eer(1, 10, 50));
  EerRecord replacement = make_eer(1, 10, 50);
  replacement.segrs = {ResKey{AsId{1, 10}, 777}};
  store.upsert(replacement);
  EXPECT_TRUE(store.by_segr(ResKey{AsId{1, 10}, 900}).empty());
  EXPECT_EQ(store.by_segr(ResKey{AsId{1, 10}, 777}).size(), 1u);
}

TEST(EerStoreTest, SweepReleasesExpired) {
  EerStore store;
  store.upsert(make_eer(1, 10, 50));
  EerRecord multi = make_eer(2, 10, 50);
  multi.versions.push_back(EerVersion{1, 10, 500});
  store.upsert(multi);
  size_t removed = store.sweep(100, nullptr);
  EXPECT_EQ(removed, 1u);  // EER 2 still has a live version
  EXPECT_EQ(store.size(), 1u);
  EXPECT_NE(store.find(ResKey{AsId{1, 10}, 2}), nullptr);
}

TEST(ReservationDbTest, ResIdsMonotonic) {
  ReservationDb db(AsId{1, 10});
  const ResId a = db.next_res_id();
  const ResId b = db.next_res_id();
  EXPECT_LT(a, b);
  EXPECT_GT(a, 0u);  // 0 is reserved (gateway table sentinel)
}

}  // namespace
}  // namespace colibri::reservation
