// Tests: intra-domain IPv4/UDP + DSCP encapsulation (App. B) and the
// TrafficMonitor assembly.
#include <gtest/gtest.h>

#include "colibri/app/testbed.hpp"
#include "colibri/common/rand.hpp"
#include "colibri/dataplane/monitor.hpp"
#include "colibri/proto/codec.hpp"
#include "colibri/proto/encap.hpp"

namespace colibri::proto {
namespace {

Ipv4Encap sample_encap(Dscp dscp = Dscp::kColibriData) {
  Ipv4Encap e;
  e.src_ip = 0x0A000001;  // 10.0.0.1
  e.dst_ip = 0x0A000002;
  e.src_port = 40000;
  e.dst_port = kColibriPort;
  e.dscp = dscp;
  return e;
}

TEST(ChecksumTest, Rfc1071Example) {
  // Classic example: checksum of the header equals the stored complement,
  // so checksumming the full header (with its checksum field) yields 0.
  const Bytes data = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40,
                      0x00, 0x40, 0x11, 0xb8, 0x61, 0xc0, 0xa8,
                      0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7};
  EXPECT_EQ(internet_checksum(data), 0);
}

TEST(EncapTest, RoundTrip) {
  const Bytes inner = {1, 2, 3, 4, 5};
  const Bytes frame = encapsulate(sample_encap(), inner);
  EXPECT_EQ(frame.size(), inner.size() + kEncapOverhead);
  auto d = decapsulate(frame);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->inner, inner);
  EXPECT_EQ(d->encap.dscp, Dscp::kColibriData);
  EXPECT_EQ(d->encap.src_ip, 0x0A000001u);
  EXPECT_EQ(d->encap.dst_port, kColibriPort);
}

TEST(EncapTest, ChecksumValidatedOnDecap) {
  Bytes frame = encapsulate(sample_encap(), Bytes{9, 9});
  frame[14] ^= 1;  // corrupt a source-IP byte
  EXPECT_FALSE(decapsulate(frame).has_value());
}

TEST(EncapTest, RejectsWrongPort) {
  Ipv4Encap e = sample_encap();
  e.dst_port = 53;
  EXPECT_FALSE(decapsulate(encapsulate(e, Bytes{1})).has_value());
}

TEST(EncapTest, RejectsLengthMismatch) {
  Bytes frame = encapsulate(sample_encap(), Bytes{1, 2, 3});
  frame.push_back(0);
  EXPECT_FALSE(decapsulate(frame).has_value());
  frame.resize(frame.size() - 2);
  EXPECT_FALSE(decapsulate(frame).has_value());
}

TEST(EncapTest, RejectsNonIpv4) {
  Bytes frame = encapsulate(sample_encap(), Bytes{1});
  frame[0] = 0x60;  // IPv6 version nibble
  EXPECT_FALSE(decapsulate(frame).has_value());
}

TEST(EncapTest, DscpSurvivesAllClasses) {
  for (Dscp d : {Dscp::kBestEffort, Dscp::kColibriControl,
                 Dscp::kColibriData}) {
    auto dec = decapsulate(encapsulate(sample_encap(d), Bytes{7}));
    ASSERT_TRUE(dec.has_value()) << dscp_name(d);
    EXPECT_EQ(dec->encap.dscp, d);
  }
}

TEST(EncapTest, GatewayClassification) {
  // Hosts cannot pick their own DSCP; the gateway stamps by role.
  EXPECT_EQ(classify_for_dscp(true, false), Dscp::kColibriData);
  EXPECT_EQ(classify_for_dscp(false, true), Dscp::kColibriControl);
  EXPECT_EQ(classify_for_dscp(false, false), Dscp::kBestEffort);
}

TEST(EncapTest, CarriesFullColibriPacket) {
  // A real Colibri packet survives encapsulation bit-exactly and still
  // decodes.
  Packet p;
  p.type = PacketType::kData;
  p.is_eer = true;
  p.path = {topology::Hop{AsId{1, 1}, 0, 1}, topology::Hop{AsId{1, 2}, 2, 0}};
  p.hvfs.resize(2);
  p.resinfo = ResInfo{AsId{1, 1}, 3, 1000, 99, 0};
  p.payload = {0xAA, 0xBB};
  const Bytes wire = encode_packet(p);
  auto d = decapsulate(encapsulate(sample_encap(), wire));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->inner, wire);
  EXPECT_TRUE(decode_packet(d->inner).has_value());
}

TEST(EncapTest, FuzzDecapNeverCrashes) {
  Rng rng(31);
  for (int i = 0; i < 3000; ++i) {
    Bytes junk(rng.below(120));
    rng.fill(junk.data(), junk.size());
    (void)decapsulate(junk);
  }
}

}  // namespace
}  // namespace colibri::proto

namespace colibri::dataplane {
namespace {

TEST(TrafficMonitorTest, AttachWiresAllComponents) {
  SimClock clock(100 * kNsPerSec);
  drkey::Key128 key;
  key.bytes.fill(3);
  BorderRouter router(AsId{1, 1}, key, clock);
  TrafficMonitor monitor;
  monitor.attach_to(router);

  // Blocklisted traffic is dropped by the router via the monitor's list.
  monitor.blocklist().block(AsId{1, 99});
  FastPacket pkt;
  pkt.is_eer = true;
  pkt.num_hops = 2;
  pkt.resinfo.src_as = AsId{1, 99};
  pkt.resinfo.exp_time = clock.now_sec() + 100;
  EXPECT_EQ(router.process(pkt), BorderRouter::Verdict::kBlocked);
}

TEST(TrafficMonitorTest, PumpDeliversOffensesToSink) {
  TrafficMonitor monitor;
  monitor.blocklist().report(OffenseReport{AsId{1, 5}, 7, 123, 1000});
  monitor.blocklist().report(OffenseReport{AsId{1, 6}, 8, 124, 2000});
  std::vector<OffenseReport> seen;
  const size_t n =
      monitor.pump_reports([&](const OffenseReport& r) { seen.push_back(r); });
  EXPECT_EQ(n, 2u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].offender, (AsId{1, 5}));
  // Drained: a second pump delivers nothing.
  EXPECT_EQ(monitor.pump_reports([](const OffenseReport&) {}), 0u);
}

TEST(TrafficMonitorTest, EndToEndPolicingLoop) {
  // Monitor + router + CServ: overuse is confirmed, reported, and future
  // reservations from the offender are denied.
  SimClock clock(1000 * kNsPerSec);
  app::Testbed bed(topology::builders::two_isd_topology(), clock);
  bed.provision_all_segments(1000, 2'000'000);
  const AsId src{1, 110}, dst{1, 120}, transit{1, 100};

  auto session = bed.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 100, 1000);
  ASSERT_TRUE(session.ok());
  const auto rec = bed.cserv(src).db().eer_copy(session.value().key());

  TrafficMonitor monitor;
  monitor.attach_to(bed.router(transit));

  // Overuse: craft valid packets at far above 1 Mbps, replayed into the
  // transit hop (a malicious gateway that skips monitoring).
  const auto transit_rec = bed.cserv(transit).db().eer_copy(rec->key);
  ASSERT_TRUE(transit_rec.has_value());
  const std::uint8_t hop = transit_rec->local_hop;
  proto::ResInfo ri;
  ri.src_as = src;
  ri.res_id = rec->key.res_id;
  ri.bw_kbps = session.value().bw_kbps();
  ri.exp_time = session.value().exp_time();
  ri.version = session.value().version();
  proto::EerInfo ei{rec->src_host, rec->dst_host};
  crypto::Aes128 cipher(bed.cserv(transit).hop_key().bytes.data());
  const HopAuth sigma = compute_hopauth(cipher, ri, ei, rec->path[hop].ingress,
                                        rec->path[hop].egress);
  bool blocked = false;
  for (int i = 0; i < 200'000 && !blocked; ++i) {
    FastPacket pkt;
    pkt.is_eer = true;
    pkt.num_hops = static_cast<std::uint8_t>(rec->path.size());
    pkt.current_hop = hop;
    pkt.resinfo = ri;
    pkt.eerinfo = ei;
    pkt.payload_bytes = 1000;
    for (size_t h = 0; h < rec->path.size(); ++h) {
      pkt.ifaces[h] = IfPair{rec->path[h].ingress, rec->path[h].egress};
    }
    pkt.timestamp = PacketTimestamp::encode(clock.now_ns(), ri.exp_time);
    pkt.hvfs[hop] = compute_data_hvf(sigma, pkt.timestamp, pkt.wire_size());
    blocked = bed.router(transit).process(pkt) ==
              BorderRouter::Verdict::kBlocked;
    clock.advance(10'000);
  }
  EXPECT_TRUE(blocked);

  // Close the loop through the monitor's report pump.
  const size_t delivered = monitor.pump_reports([&](const OffenseReport& r) {
    bed.cserv(transit).report_offense(r);
  });
  EXPECT_GE(delivered, 1u);
  EXPECT_TRUE(bed.cserv(transit).reservations_denied_for(src));
}

}  // namespace
}  // namespace colibri::dataplane

namespace colibri::dataplane {
namespace {

TEST(GatewayEncapTest, EmitsDscpStampedFrame) {
  SimClock clock(100 * kNsPerSec);
  Gateway gw(AsId{1, 1}, clock);
  proto::ResInfo ri{AsId{1, 1}, 4, 1'000'000, 1000, 0};
  proto::EerInfo ei{HostAddr::from_u64(1), HostAddr::from_u64(2)};
  std::vector<topology::Hop> path = {topology::Hop{AsId{1, 1}, 0, 1},
                                     topology::Hop{AsId{1, 2}, 2, 0}};
  std::vector<HopAuth> sigmas(2);
  ASSERT_TRUE(gw.install(ri, ei, path, sigmas));

  proto::Ipv4Encap intra;
  intra.src_ip = 0x0A000001;
  intra.dst_ip = 0x0A0000FE;  // egress border router
  intra.src_port = 40000;
  intra.dst_port = proto::kColibriPort;
  intra.dscp = proto::Dscp::kBestEffort;  // host-chosen value: overridden

  Bytes frame;
  ASSERT_EQ(gw.process_encapsulated(4, 500, intra, frame),
            Gateway::Verdict::kOk);
  auto d = proto::decapsulate(frame);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->encap.dscp, proto::Dscp::kColibriData);  // gateway stamped
  auto inner = proto::decode_packet(d->inner);
  ASSERT_TRUE(inner.has_value());
  EXPECT_EQ(inner->resinfo.res_id, 4u);
  EXPECT_EQ(inner->payload.size(), 500u);
}

}  // namespace
}  // namespace colibri::dataplane
