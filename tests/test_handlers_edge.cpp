// Edge cases in the control-plane request handlers: malformed messages,
// stale references, tampered responses, and state-restoration invariants
// on failed requests.
#include <gtest/gtest.h>

#include "colibri/app/testbed.hpp"
#include "colibri/crypto/eax.hpp"

namespace colibri::cserv {
namespace {

using app::Testbed;

class HandlerEdgeTest : public ::testing::Test {
 protected:
  HandlerEdgeTest()
      : clock_(1000 * kNsPerSec),
        bed_(topology::builders::two_isd_topology(), clock_) {
    bed_.provision_all_segments(1000, 2'000'000);
  }

  // Frames a packet for the bus packet channel.
  static Bytes framed(const proto::Packet& pkt) {
    Bytes out;
    out.push_back(0);
    append_bytes(out, proto::encode_packet(pkt));
    return out;
  }

  static proto::ControlResponse response_of(const Bytes& wire) {
    auto pkt = proto::decode_packet(wire);
    EXPECT_TRUE(pkt.has_value());
    auto ap = proto::decode_authed(pkt->payload);
    EXPECT_TRUE(ap.has_value());
    auto* resp = std::get_if<proto::ControlResponse>(&ap->message);
    EXPECT_NE(resp, nullptr);
    return *resp;
  }

  SimClock clock_;
  Testbed bed_;
};

TEST_F(HandlerEdgeTest, GarbagePayloadYieldsMalformed) {
  proto::Packet pkt;
  pkt.type = proto::PacketType::kSegSetup;
  pkt.path = {topology::Hop{AsId{1, 100}, 0, 1},
              topology::Hop{AsId{1, 101}, 1, 0}};
  pkt.resinfo.src_as = AsId{1, 110};
  pkt.resinfo.exp_time = clock_.now_sec() + 300;
  pkt.current_hop = 0;
  pkt.payload = {0xDE, 0xAD, 0xBE, 0xEF};
  const auto resp = response_of(bed_.bus().call(AsId{1, 100}, framed(pkt)));
  EXPECT_FALSE(resp.success);
  EXPECT_EQ(resp.fail_code, Errc::kMalformed);
}

TEST_F(HandlerEdgeTest, PathMessageLengthMismatchRejected) {
  // SegRequest whose AS list disagrees with the header path.
  proto::SegRequest msg;
  msg.seg_type = topology::SegType::kUp;
  msg.max_bw_kbps = 100;
  msg.ases = {AsId{1, 110}};  // one AS...
  proto::Packet pkt;
  pkt.type = proto::PacketType::kSegSetup;
  pkt.path = {topology::Hop{AsId{1, 110}, 0, 1},
              topology::Hop{AsId{1, 100}, 1, 0}};  // ...but two hops
  pkt.resinfo.src_as = AsId{1, 110};
  pkt.resinfo.exp_time = clock_.now_sec() + 300;
  pkt.current_hop = 0;
  proto::AuthedPayload ap;
  ap.message = msg;
  ap.macs.assign(1, proto::Mac16{});
  pkt.payload = proto::encode_authed(ap);
  const auto resp = response_of(bed_.bus().call(AsId{1, 110}, framed(pkt)));
  EXPECT_FALSE(resp.success);
  EXPECT_EQ(resp.fail_code, Errc::kMalformed);
}

TEST_F(HandlerEdgeTest, RenewUnknownSegrFails) {
  auto r = bed_.cserv(AsId{1, 110})
               .renew_segr(ResKey{AsId{1, 110}, 0xDEAD}, 1, 100);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errc::kNoSuchReservation);
}

TEST_F(HandlerEdgeTest, RenewForeignSegrFails) {
  // Only the initiator may renew its reservation through its own CServ.
  const AsId src{1, 110};
  auto setup = bed_.cserv(src).setup_segr(
      *bed_.pathdb().up_segments_from(src).front(), 1, 1000);
  ASSERT_TRUE(setup.ok());
  auto r = bed_.cserv(AsId{1, 111}).renew_segr(setup.value().key, 1, 1000);
  EXPECT_FALSE(r.ok());
}

TEST_F(HandlerEdgeTest, ActivateWithoutPendingFails) {
  const AsId src{1, 110};
  auto setup = bed_.cserv(src).setup_segr(
      *bed_.pathdb().up_segments_from(src).front(), 1, 1000);
  ASSERT_TRUE(setup.ok());
  auto act = bed_.cserv(src).activate_segr(setup.value().key, 1);
  EXPECT_FALSE(act.ok());
  EXPECT_EQ(act.error(), Errc::kBadVersion);
}

TEST_F(HandlerEdgeTest, RenewUnknownEerFails) {
  auto r =
      bed_.cserv(AsId{1, 110}).renew_eer(ResKey{AsId{1, 110}, 0xBEEF}, 1, 10);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errc::kNoSuchReservation);
}

TEST_F(HandlerEdgeTest, EerOverUnknownSegrsFails) {
  auto r = bed_.cserv(AsId{1, 110})
               .setup_eer({ResKey{AsId{9, 9}, 1}}, HostAddr::from_u64(1),
                          HostAddr::from_u64(2), 1, 10);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errc::kNoSuchSegment);
}

TEST_F(HandlerEdgeTest, EerOverTooManySegrsRejected) {
  std::vector<ResKey> four(4, ResKey{AsId{1, 110}, 1});
  auto r = bed_.cserv(AsId{1, 110})
               .setup_eer(four, HostAddr::from_u64(1), HostAddr::from_u64(2),
                          1, 10);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errc::kMalformed);
}

TEST_F(HandlerEdgeTest, EerOverExpiredSegrSignalsExpiry) {
  // App. C: the remote CServ indicates expiry so the initiator can retry
  // with the new version.
  const AsId src{1, 110}, dst{1, 120};
  const auto chains = bed_.cserv(src).lookup_chains(dst);
  ASSERT_FALSE(chains.empty());
  std::vector<ResKey> keys;
  for (const auto& a : chains.front()) keys.push_back(a.key);

  // Force-expire one of the underlying SegRs everywhere.
  const ResKey victim = keys.back();
  for (AsId as : bed_.topology().as_ids()) {
    bed_.cserv(as).db().with_segr(victim, [&](reservation::SegrRecord* rec) {
      if (rec != nullptr) rec->active.exp_time = clock_.now_sec();  // expired now
    });
  }
  auto r = bed_.cserv(src).setup_eer(keys, HostAddr::from_u64(1),
                                     HostAddr::from_u64(2), 1, 10);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errc::kExpired);
}

TEST_F(HandlerEdgeTest, FailedEerLeavesNoAllocation) {
  const AsId src{1, 110}, dst{1, 120};
  const auto chains = bed_.cserv(src).lookup_chains(dst);
  ASSERT_FALSE(chains.empty());
  std::vector<ResKey> keys;
  for (const auto& a : chains.front()) keys.push_back(a.key);

  // Record allocation state before a request that the destination vetoes.
  std::vector<BwKbps> before;
  for (const auto& k : keys) {
    for (AsId as : bed_.topology().as_ids()) {
      if (const auto rec = bed_.cserv(as).db().segr_copy(k)) {
        before.push_back(rec->eer_allocated_kbps);
      }
    }
  }
  bed_.cserv(dst).set_host_acceptor(
      [](const proto::EerInfo&, BwKbps) { return false; });
  auto r = bed_.cserv(src).setup_eer(keys, HostAddr::from_u64(1),
                                     HostAddr::from_u64(2), 1, 1000);
  ASSERT_FALSE(r.ok());

  // Unsuccessful request: every on-path AS cleaned up (§3.3).
  std::vector<BwKbps> after;
  for (const auto& k : keys) {
    for (AsId as : bed_.topology().as_ids()) {
      if (const auto rec = bed_.cserv(as).db().segr_copy(k)) {
        after.push_back(rec->eer_allocated_kbps);
      }
    }
  }
  EXPECT_EQ(before, after);
}

TEST_F(HandlerEdgeTest, TamperedSealedHopauthRejectedByInitiator) {
  // A malicious transit AS flips bits in a sealed σ on the response path;
  // the initiator's AEAD open fails and the setup errors out instead of
  // installing a bogus key.
  const AsId src{1, 110}, dst{1, 120};
  const auto chains = bed_.cserv(src).lookup_chains(dst);
  ASSERT_FALSE(chains.empty());
  std::vector<ResKey> keys;
  for (const auto& a : chains.front()) keys.push_back(a.key);

  // Interpose on the bus: corrupt sealed_hopauths in EER responses coming
  // back through the wire. The daemon path can't be intercepted easily,
  // so instead verify the AEAD layer directly: a sealed blob from a
  // successful setup fails to open under a tampered byte.
  auto ok = bed_.cserv(src).setup_eer(keys, HostAddr::from_u64(1),
                                      HostAddr::from_u64(2), 1, 10);
  ASSERT_TRUE(ok.ok());

  const UnixSec now = clock_.now_sec();
  const drkey::Key128 key = bed_.cserv(keys[0].src_as)
                                .drkey_engine()
                                .as_key(src, now);
  crypto::Eax eax(key.bytes.data());
  Bytes nonce(16, 7);
  Bytes sealed = eax.seal(nonce, Bytes{1}, Bytes(16, 0xAB));
  sealed[20] ^= 0x01;
  EXPECT_FALSE(eax.open(Bytes{1}, sealed).has_value());
}

TEST_F(HandlerEdgeTest, ResponsePacketAsRequestRejected) {
  proto::Packet pkt;
  pkt.type = proto::PacketType::kResponse;
  pkt.path = {topology::Hop{AsId{1, 100}, 0, 0}};
  pkt.resinfo.src_as = AsId{1, 110};
  proto::AuthedPayload ap;
  ap.message = proto::ControlResponse{};
  pkt.payload = proto::encode_authed(ap);
  const auto resp = response_of(bed_.bus().call(AsId{1, 100}, framed(pkt)));
  EXPECT_FALSE(resp.success);
}

TEST_F(HandlerEdgeTest, UnknownBusChannelIgnored) {
  Bytes junk = {0x7F, 1, 2, 3};
  EXPECT_TRUE(bed_.bus().call(AsId{1, 100}, junk).empty());
}

}  // namespace
}  // namespace colibri::cserv
