// Unit tests: topology model, segments, beacon discovery, path database.
#include <gtest/gtest.h>

#include "colibri/topology/beacon.hpp"
#include "colibri/topology/pathdb.hpp"
#include "colibri/topology/segment.hpp"
#include "colibri/topology/topology.hpp"

namespace colibri::topology {
namespace {

TEST(TopologyTest, AddLinkAllocatesInterfacePairs) {
  Topology t;
  const AsId a{1, 1}, b{1, 2};
  t.add_as(a, true);
  t.add_as(b, false);
  const auto [ia, ib] = t.add_link(a, b, LinkType::kParentChild, 1000);
  EXPECT_EQ(ia, 1);
  EXPECT_EQ(ib, 1);

  const Interface* intf_a = t.node(a).find_interface(ia);
  ASSERT_NE(intf_a, nullptr);
  EXPECT_EQ(intf_a->neighbor, b);
  EXPECT_EQ(intf_a->neighbor_ifid, ib);
  EXPECT_FALSE(intf_a->to_parent);

  const Interface* intf_b = t.node(b).find_interface(ib);
  ASSERT_NE(intf_b, nullptr);
  EXPECT_TRUE(intf_b->to_parent);  // b is the child
}

TEST(TopologyTest, TrafficSplitCapacities) {
  Topology t;
  const AsId a{1, 1}, b{1, 2};
  t.add_as(a, true);
  t.add_as(b, false);
  const auto [ia, _] = t.add_link(a, b, LinkType::kParentChild, 1000);
  EXPECT_EQ(t.node(a).colibri_capacity(ia), 750u);  // 75 % default
  EXPECT_EQ(t.node(a).control_capacity(ia), 50u);   // 5 % default
  EXPECT_EQ(t.node(a).colibri_capacity(99), 0u);    // unknown interface
}

TEST(TopologyTest, UnknownAsThrows) {
  Topology t;
  EXPECT_THROW(t.node(AsId{1, 42}), std::out_of_range);
}

TEST(TopologyTest, CoreAsesListed) {
  const Topology t = builders::two_isd_topology();
  const auto cores = t.core_ases();
  EXPECT_EQ(cores.size(), 4u);
  for (AsId c : cores) EXPECT_TRUE(t.node(c).core);
}

TEST(SegmentTest, ReversedSwapsTypeAndInterfaces) {
  PathSegment seg;
  seg.type = SegType::kDown;
  seg.hops = {Hop{AsId{1, 1}, kNoInterface, 5}, Hop{AsId{1, 2}, 6, kNoInterface}};
  const PathSegment rev = seg.reversed();
  EXPECT_EQ(rev.type, SegType::kUp);
  ASSERT_EQ(rev.hops.size(), 2u);
  EXPECT_EQ(rev.hops[0].as, (AsId{1, 2}));
  EXPECT_EQ(rev.hops[0].ingress, kNoInterface);
  EXPECT_EQ(rev.hops[0].egress, 6);
  EXPECT_EQ(rev.hops[1].ingress, 5);
  EXPECT_EQ(rev.hops[1].egress, kNoInterface);
}

TEST(SegmentTest, CombineJoinsAtTransferAs) {
  PathSegment up;
  up.type = SegType::kUp;
  up.hops = {Hop{AsId{1, 1}, 0, 1}, Hop{AsId{1, 100}, 2, 0}};
  PathSegment down;
  down.type = SegType::kDown;
  down.hops = {Hop{AsId{1, 100}, 0, 3}, Hop{AsId{1, 2}, 4, 0}};

  auto path = combine_segments(&up, nullptr, &down);
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->hops.size(), 3u);
  // The transfer AS appears once, ingress from up, egress into down.
  EXPECT_EQ(path->hops[1].as, (AsId{1, 100}));
  EXPECT_EQ(path->hops[1].ingress, 2);
  EXPECT_EQ(path->hops[1].egress, 3);
}

TEST(SegmentTest, CombineRejectsDisconnected) {
  PathSegment up;
  up.type = SegType::kUp;
  up.hops = {Hop{AsId{1, 1}, 0, 1}, Hop{AsId{1, 100}, 2, 0}};
  PathSegment down;
  down.type = SegType::kDown;
  down.hops = {Hop{AsId{1, 101}, 0, 3}, Hop{AsId{1, 2}, 4, 0}};
  EXPECT_FALSE(combine_segments(&up, nullptr, &down).has_value());
}

TEST(SegmentTest, ShortcutCutsAtCommonAs) {
  // up: A -> B -> C (core); down: C -> B -> D. Shortcut at B skips C.
  PathSegment up;
  up.type = SegType::kUp;
  up.hops = {Hop{AsId{1, 1}, 0, 1}, Hop{AsId{1, 2}, 2, 3},
             Hop{AsId{1, 100}, 4, 0}};
  PathSegment down;
  down.type = SegType::kDown;
  down.hops = {Hop{AsId{1, 100}, 0, 5}, Hop{AsId{1, 2}, 6, 7},
               Hop{AsId{1, 3}, 8, 0}};
  auto path = combine_with_shortcut(up, down);
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->hops.size(), 3u);
  EXPECT_EQ(path->hops[0].as, (AsId{1, 1}));
  EXPECT_EQ(path->hops[1].as, (AsId{1, 2}));
  EXPECT_EQ(path->hops[1].egress, 7);
  EXPECT_EQ(path->hops[2].as, (AsId{1, 3}));
}

TEST(BeaconTest, DiscoversAllSegmentTypes) {
  const Topology t = builders::two_isd_topology();
  const auto segs = discover_segments(t);
  int ups = 0, downs = 0, cores = 0;
  for (const auto& s : segs) {
    switch (s.type) {
      case SegType::kUp: ++ups; break;
      case SegType::kDown: ++downs; break;
      case SegType::kCore: ++cores; break;
    }
  }
  EXPECT_GT(ups, 0);
  EXPECT_GT(downs, 0);
  EXPECT_GT(cores, 0);
  EXPECT_EQ(ups, downs);  // up-segments are reversed down-segments
}

TEST(BeaconTest, SegmentsAreTopologyConsistent) {
  const Topology t = builders::two_isd_topology();
  for (const auto& seg : discover_segments(t)) {
    // Validate as a path: interface chaining must match the topology.
    Path p{seg.hops};
    EXPECT_TRUE(path_valid(p, t)) << seg.to_string();
  }
}

TEST(BeaconTest, UpSegmentsStartAtNonCoreEndAtCore) {
  const Topology t = builders::two_isd_topology();
  for (const auto& seg : discover_segments(t)) {
    if (seg.type != SegType::kUp) continue;
    EXPECT_FALSE(t.node(seg.first_as()).core) << seg.to_string();
    EXPECT_TRUE(t.node(seg.last_as()).core) << seg.to_string();
  }
}

TEST(BeaconTest, CoreSegmentsConnectCores) {
  const Topology t = builders::two_isd_topology();
  for (const auto& seg : discover_segments(t)) {
    if (seg.type != SegType::kCore) continue;
    EXPECT_TRUE(t.node(seg.first_as()).core);
    EXPECT_TRUE(t.node(seg.last_as()).core);
  }
}

TEST(BeaconTest, RespectsMaxPathsPerPair) {
  const Topology t = builders::two_isd_topology();
  BeaconConfig cfg;
  cfg.max_paths_per_pair = 1;
  const auto segs = discover_segments(t, cfg);
  std::map<std::tuple<SegType, AsId, AsId>, int> counts;
  for (const auto& s : segs) {
    ++counts[{s.type, s.first_as(), s.last_as()}];
  }
  for (const auto& [key, n] : counts) {
    EXPECT_LE(n, 1) << seg_type_name(std::get<0>(key));
  }
}

class PathDbTest : public ::testing::Test {
 protected:
  PathDbTest() : topo_(builders::two_isd_topology()), db_(topo_) {
    db_.insert_all(discover_segments(topo_));
  }
  Topology topo_;
  PathDb db_;
};

TEST_F(PathDbTest, FindsCrossIsdPaths) {
  // Grandchild in ISD 1 to grandchild in ISD 2: needs up+core+down.
  const AsId src{1, 112}, dst{2, 212};
  const auto paths = db_.paths(src, dst);
  ASSERT_FALSE(paths.empty());
  for (const auto& ap : paths) {
    EXPECT_EQ(ap.path.src_as(), src);
    EXPECT_EQ(ap.path.dst_as(), dst);
    EXPECT_TRUE(path_valid(ap.path, topo_)) << ap.path.to_string();
    EXPECT_GE(ap.segments.size(), 1u);
    EXPECT_LE(ap.segments.size(), 3u);
  }
}

TEST_F(PathDbTest, PathsSortedByLength) {
  const auto paths = db_.paths(AsId{1, 110}, AsId{2, 210});
  for (size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].path.length(), paths[i].path.length());
  }
}

TEST_F(PathDbTest, IntraIsdSiblingUsesSharedCore) {
  // Two children of the same core AS.
  const auto paths = db_.paths(AsId{1, 110}, AsId{1, 111});
  ASSERT_FALSE(paths.empty());
  // Shortest path is up to core 1-100 and straight down: 3 hops.
  EXPECT_EQ(paths.front().path.length(), 3u);
}

TEST_F(PathDbTest, CoreToCorePaths) {
  const auto paths = db_.paths(AsId{1, 100}, AsId{2, 200});
  ASSERT_FALSE(paths.empty());
  EXPECT_EQ(paths.front().path.length(), 2u);  // direct core link
}

TEST_F(PathDbTest, NonCoreToCore) {
  const auto paths = db_.paths(AsId{1, 110}, AsId{2, 200});
  ASSERT_FALSE(paths.empty());
  for (const auto& ap : paths) {
    EXPECT_TRUE(path_valid(ap.path, topo_));
  }
}

TEST_F(PathDbTest, SamePathNotDuplicated) {
  const auto paths = db_.paths(AsId{1, 112}, AsId{2, 212}, 32);
  for (size_t i = 0; i < paths.size(); ++i) {
    for (size_t j = i + 1; j < paths.size(); ++j) {
      EXPECT_FALSE(paths[i].path == paths[j].path);
    }
  }
}

TEST_F(PathDbTest, InsertDeduplicates) {
  const size_t before = db_.size();
  auto segs = discover_segments(topo_);
  db_.insert_all(std::move(segs));
  EXPECT_EQ(db_.size(), before);
}

TEST(PathValidTest, RejectsBrokenChain) {
  const Topology t = builders::two_isd_topology();
  Path p;
  p.hops = {Hop{AsId{1, 100}, kNoInterface, 99}, Hop{AsId{1, 110}, 1, kNoInterface}};
  EXPECT_FALSE(path_valid(p, t));
}

TEST(ChainTopologyTest, BuildsLinearChain) {
  const Topology t = builders::chain_topology(5);
  EXPECT_EQ(t.as_count(), 5u);
  EXPECT_EQ(t.core_ases().size(), 2u);
}

}  // namespace
}  // namespace colibri::topology
