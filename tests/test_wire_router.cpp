// Tests: bytes-level border router — agreement with the struct-based
// router, in-place cursor advance, and rejection of malformed/truncated/
// tampered wire packets.
#include <gtest/gtest.h>

#include "colibri/common/rand.hpp"
#include "colibri/dataplane/gateway.hpp"
#include "colibri/dataplane/router.hpp"
#include "colibri/dataplane/wire_router.hpp"
#include "colibri/proto/codec.hpp"

namespace colibri::dataplane {
namespace {

drkey::Key128 key_of(std::uint8_t seed) {
  drkey::Key128 k;
  k.bytes.fill(seed);
  return k;
}

class WireRouterTest : public ::testing::Test {
 protected:
  WireRouterTest()
      : gateway_(AsId{1, 10}, clock_),
        struct_router_(AsId{1, 20}, key_of(2), clock_),
        wire_router_(AsId{1, 20}, key_of(2), clock_) {
    clock_.set(100 * kNsPerSec);
    resinfo_ = proto::ResInfo{AsId{1, 10}, 5, 1'000'000, 500, 0};
    eerinfo_ = proto::EerInfo{HostAddr::from_u64(1), HostAddr::from_u64(2)};
    path_ = {topology::Hop{AsId{1, 10}, kNoInterface, 1},
             topology::Hop{AsId{1, 20}, 2, 3},
             topology::Hop{AsId{1, 30}, 4, kNoInterface}};
    std::vector<HopAuth> sigmas;
    const drkey::Key128 keys[] = {key_of(1), key_of(2), key_of(3)};
    for (size_t i = 0; i < path_.size(); ++i) {
      crypto::Aes128 cipher(keys[i].bytes.data());
      sigmas.push_back(compute_hopauth(cipher, resinfo_, eerinfo_,
                                       path_[i].ingress, path_[i].egress));
    }
    gateway_.install(resinfo_, eerinfo_, path_, sigmas);
  }

  // A valid wire packet positioned at hop 1 (this router's hop).
  Bytes wire_packet(std::uint32_t payload) {
    FastPacket fp;
    EXPECT_EQ(gateway_.process(5, payload, fp), Gateway::Verdict::kOk);
    fp.current_hop = 1;
    proto::Packet p = to_packet(fp);
    return proto::encode_packet(p);
  }

  SimClock clock_;
  Gateway gateway_;
  BorderRouter struct_router_;
  WireRouter wire_router_;
  proto::ResInfo resinfo_;
  proto::EerInfo eerinfo_;
  std::vector<topology::Hop> path_;
};

TEST_F(WireRouterTest, AcceptsValidPacketAndAdvancesCursor) {
  Bytes wire = wire_packet(100);
  ASSERT_EQ(wire_router_.process(wire.data(), wire.size()),
            WireRouter::Verdict::kForward);
  // The only mutation is the current-hop byte.
  auto decoded = proto::decode_packet(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->current_hop, 2);
  EXPECT_EQ(wire_router_.forwarded(), 1u);
}

TEST_F(WireRouterTest, AgreesWithStructRouterOnRandomTampering) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    Bytes wire = wire_packet(50);
    const bool tamper = rng.below(2) == 1;
    if (tamper) {
      wire[rng.below(wire.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    // Struct router's verdict on the same bytes.
    auto decoded = proto::decode_packet(wire);
    Bytes wire_copy = wire;
    const auto wv = wire_router_.process(wire_copy.data(), wire_copy.size());
    if (!decoded.has_value()) {
      EXPECT_EQ(wv, WireRouter::Verdict::kMalformed) << i;
      continue;
    }
    FastPacket fp = to_fast(*decoded);
    const auto sv = struct_router_.process(fp);
    switch (sv) {
      case BorderRouter::Verdict::kForward:
        EXPECT_EQ(wv, WireRouter::Verdict::kForward) << i;
        break;
      case BorderRouter::Verdict::kDeliver:
        EXPECT_EQ(wv, WireRouter::Verdict::kDeliver) << i;
        break;
      case BorderRouter::Verdict::kBadHvf:
        EXPECT_EQ(wv, WireRouter::Verdict::kBadHvf) << i;
        break;
      case BorderRouter::Verdict::kExpired:
        EXPECT_EQ(wv, WireRouter::Verdict::kExpired) << i;
        break;
      default:
        EXPECT_EQ(wv, WireRouter::Verdict::kMalformed) << i;
        break;
    }
  }
}

TEST_F(WireRouterTest, DeliversAtLastHop) {
  Bytes wire = wire_packet(10);
  ASSERT_EQ(wire_router_.process(wire.data(), wire.size()),
            WireRouter::Verdict::kForward);
  // Now at hop 2 — the last hop; a router of AS 1-30 delivers.
  WireRouter last(AsId{1, 30}, key_of(3), clock_);
  EXPECT_EQ(last.process(wire.data(), wire.size()),
            WireRouter::Verdict::kDeliver);
}

TEST_F(WireRouterTest, RejectsTruncation) {
  Bytes wire = wire_packet(100);
  for (size_t cut : {size_t{3}, size_t{20}, wire.size() - 1}) {
    Bytes copy(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_EQ(wire_router_.process(copy.data(), copy.size()),
              WireRouter::Verdict::kMalformed)
        << cut;
  }
}

TEST_F(WireRouterTest, RejectsLengthMismatch) {
  Bytes wire = wire_packet(100);
  wire.push_back(0);  // extra byte: declared payload no longer matches
  EXPECT_EQ(wire_router_.process(wire.data(), wire.size()),
            WireRouter::Verdict::kMalformed);
}

TEST_F(WireRouterTest, RejectsTamperedHvf) {
  Bytes wire = wire_packet(100);
  const size_t hvf_off = WireLayout::hvf_offset(true, 3) + proto::kHvfLen;
  wire[hvf_off] ^= 1;  // hop 1's HVF
  EXPECT_EQ(wire_router_.process(wire.data(), wire.size()),
            WireRouter::Verdict::kBadHvf);
}

TEST_F(WireRouterTest, RejectsExpired) {
  Bytes wire = wire_packet(100);
  clock_.set(static_cast<TimeNs>(resinfo_.exp_time) * kNsPerSec + 1);
  EXPECT_EQ(wire_router_.process(wire.data(), wire.size()),
            WireRouter::Verdict::kExpired);
}

TEST_F(WireRouterTest, FuzzNeverCrashes) {
  Rng rng(77);
  for (int i = 0; i < 5000; ++i) {
    Bytes junk(rng.below(400));
    rng.fill(junk.data(), junk.size());
    (void)wire_router_.process(junk.data(), junk.size());
  }
}

TEST_F(WireRouterTest, BurstProcessing) {
  std::vector<Bytes> wires;
  std::vector<WireRouter::PacketView> views;
  for (int i = 0; i < 32; ++i) {
    clock_.advance(1000);
    wires.push_back(wire_packet(64));
  }
  views.reserve(wires.size());
  for (auto& w : wires) views.push_back({w.data(), w.size()});
  WireRouter::Verdict verdicts[32];
  wire_router_.process_burst(views.data(), 32, verdicts);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(verdicts[i], WireRouter::Verdict::kForward) << i;
  }
}

}  // namespace
}  // namespace colibri::dataplane
