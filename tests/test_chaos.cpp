// Tests: deterministic fault injection and link-failure failover — the
// FaultInjector seams (MessageBus, SimLink, FaultyStorage), the
// FailoverManager cutover/fail-back state machine with its alert pack,
// and the twin-universe chaos harness: a faulted run must converge to
// the clean twin's reservation end-state, and the same seed must replay
// the identical transition history.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "colibri/app/chaos.hpp"
#include "colibri/app/obs.hpp"
#include "colibri/app/testbed.hpp"
#include "colibri/cserv/failover.hpp"
#include "colibri/cserv/renewal_manager.hpp"
#include "colibri/sim/faults.hpp"
#include "colibri/sim/link.hpp"
#include "colibri/telemetry/history.hpp"
#include "colibri/telemetry/incident.hpp"
#include "colibri/telemetry/timeseries.hpp"
#include "seed_util.hpp"

namespace colibri {
namespace {

using app::kProtectedLinkA;
using app::kProtectedLinkB;
using app::kProtectedLinkId;

// --- FaultInjector -----------------------------------------------------

TEST(FaultInjectorTest, MessagePlanWindowIsRespected) {
  SimClock clock;
  FaultInjector inj(clock, 1);
  inj.add_message_plan({10 * kNsPerSec, 20 * kNsPerSec, 0, /*drop_p=*/1.0,
                        0.0, 0.0});
  clock.set(5 * kNsPerSec);
  EXPECT_EQ(inj.message_verdict(42), MessageFault::kDeliver);
  clock.set(15 * kNsPerSec);
  EXPECT_EQ(inj.message_verdict(42), MessageFault::kDrop);
  clock.set(25 * kNsPerSec);
  EXPECT_EQ(inj.message_verdict(42), MessageFault::kDeliver);
  const FaultStats s = inj.snapshot();
  EXPECT_EQ(s.msg_dropped, 1u);
  EXPECT_EQ(s.msg_delivered, 2u);
}

TEST(FaultInjectorTest, MessagePlanTargetsOneDestination) {
  SimClock clock;
  clock.set(kNsPerSec);
  FaultInjector inj(clock, 1);
  MessageFaultPlan plan;
  plan.dst_raw = 7;
  plan.drop_p = 1.0;
  inj.add_message_plan(plan);
  EXPECT_EQ(inj.message_verdict(7), MessageFault::kDrop);
  EXPECT_EQ(inj.message_verdict(8), MessageFault::kDeliver);
}

TEST(FaultInjectorTest, SameSeedSameVerdictStream) {
  SimClock clock;
  clock.set(kNsPerSec);
  FaultInjector a(clock, 0xABC);
  FaultInjector b(clock, 0xABC);
  MessageFaultPlan plan;
  plan.drop_p = 0.3;
  plan.dup_p = 0.3;
  plan.delay_p = 0.3;
  a.add_message_plan(plan);
  b.add_message_plan(plan);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.message_verdict(1), b.message_verdict(1)) << i;
  }
}

TEST(FaultInjectorTest, LinkScheduleDrivesStateAndTransitions) {
  SimClock clock;
  FaultInjector inj(clock, 1);
  inj.schedule_link_failure(3, 5 * kNsPerSec, 8 * kNsPerSec);
  EXPECT_TRUE(inj.link_up(3));
  EXPECT_TRUE(inj.poll_link_transitions().empty());

  clock.set(6 * kNsPerSec);
  EXPECT_FALSE(inj.link_up(3));
  auto t = inj.poll_link_transitions();
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].link_id, 3u);
  EXPECT_FALSE(t[0].up);
  EXPECT_EQ(t[0].at_ns, 5 * kNsPerSec);
  EXPECT_TRUE(inj.poll_link_transitions().empty());  // reported once

  clock.set(9 * kNsPerSec);
  EXPECT_TRUE(inj.link_up(3));
  t = inj.poll_link_transitions();
  ASSERT_EQ(t.size(), 1u);
  EXPECT_TRUE(t[0].up);
  EXPECT_EQ(t[0].at_ns, 8 * kNsPerSec);
}

TEST(FaultInjectorTest, WalPlanByIndexAndArmedOneShot) {
  SimClock clock;
  FaultInjector inj(clock, 1);
  inj.schedule_wal_fault(2, WalFaultKind::kBitFlip, 13);
  EXPECT_EQ(inj.next_wal_fault().kind, WalFaultKind::kNone);  // append 0
  EXPECT_EQ(inj.next_wal_fault().kind, WalFaultKind::kNone);  // append 1
  const WalFault f = inj.next_wal_fault();                    // append 2
  EXPECT_EQ(f.kind, WalFaultKind::kBitFlip);
  EXPECT_EQ(f.param, 13u);
  inj.arm_wal_fault(WalFaultKind::kTear, 5);
  EXPECT_EQ(inj.next_wal_fault().kind, WalFaultKind::kTear);
  EXPECT_EQ(inj.next_wal_fault().kind, WalFaultKind::kNone);
  EXPECT_EQ(inj.wal_appends(), 5u);
  EXPECT_EQ(inj.snapshot().wal_faults, 2u);
}

// --- MessageBus seam ---------------------------------------------------

TEST(BusFaultTest, DropDuplicateAndDelayVerdicts) {
  SimClock clock;
  clock.set(kNsPerSec);
  telemetry::MetricsRegistry registry;
  cserv::MessageBus bus(&registry);
  const AsId dst{1, 5};
  int handled = 0;
  bus.attach(dst, [&](BytesView req) {
    ++handled;
    return Bytes(req.begin(), req.end());
  });
  const Bytes req = {1, 2, 3};

  FaultInjector drop(clock, 1);
  drop.add_message_plan({0, std::numeric_limits<TimeNs>::max(), 0, 1.0, 0, 0});
  bus.attach_fault_injector(&drop);
  EXPECT_TRUE(bus.call(dst, req).empty());
  EXPECT_EQ(handled, 0);

  FaultInjector dup(clock, 1);
  dup.add_message_plan({0, std::numeric_limits<TimeNs>::max(), 0, 0, 1.0, 0});
  bus.attach_fault_injector(&dup);
  EXPECT_EQ(bus.call(dst, req), req);  // caller still gets its response
  EXPECT_EQ(handled, 2);              // ...but the handler ran twice

  handled = 0;
  FaultInjector delay(clock, 1);
  delay.add_message_plan({0, std::numeric_limits<TimeNs>::max(), 0, 0, 0,
                          1.0});
  bus.attach_fault_injector(&delay);
  EXPECT_TRUE(bus.call(dst, req).empty());
  EXPECT_EQ(handled, 0);
  EXPECT_EQ(bus.delayed_pending(), 1u);
  bus.attach_fault_injector(nullptr);  // let the pump deliver
  EXPECT_EQ(bus.deliver_delayed(), 1u);
  EXPECT_EQ(handled, 1);
  EXPECT_EQ(bus.delayed_pending(), 0u);
}

// --- SimLink seam ------------------------------------------------------

TEST(SimLinkFaultTest, DownLinkDropsAtEntryAndInFlight) {
  sim::Simulator sim;
  FaultInjector inj(sim.clock(), 1);
  sim::SimLink link(sim, /*rate_bps=*/8e9, /*propagation_ns=*/1'000'000);
  link.set_fault_injector(&inj, 9);
  int arrived = 0;
  link.set_sink([&](sim::SimPacket&&) { ++arrived; });
  const auto pkt = [](std::uint64_t flow) {
    sim::SimPacket p;
    p.cls = sim::TrafficClass::kColibriData;
    p.bytes = 1'000;
    p.flow = flow;
    return p;
  };

  // Fails 0.5 ms in: the first packet is in flight when the link dies
  // (dropped at the sink), the second is sent while it is down (dropped
  // at entry), the third goes through after the heal.
  inj.schedule_link_failure(9, 500'000, 2'000'000);
  link.send(pkt(1));
  sim.after(1'000'000, [&] { link.send(pkt(2)); });
  sim.after(2'500'000, [&] { link.send(pkt(3)); });
  sim.run();
  EXPECT_EQ(arrived, 1);
  EXPECT_EQ(link.fault_dropped(), 2u);
  EXPECT_EQ(inj.snapshot().link_drops, 2u);
}

// --- FaultyStorage seam ------------------------------------------------

TEST(FaultyStorageTest, TearBitFlipAndDropMutateAppends) {
  SimClock clock;
  FaultInjector inj(clock, 1);
  reservation::MemoryStorage inner;
  sim::FaultyStorage storage(inner, inj);
  const Bytes frame = {10, 20, 30, 40, 50, 60, 70, 80};

  storage.append(frame);  // clean passthrough
  EXPECT_EQ(inner.raw().size(), frame.size());

  inj.arm_wal_fault(WalFaultKind::kTear, 3);
  storage.append(frame);  // only a prefix lands
  EXPECT_EQ(inner.raw().size(), frame.size() + 3);

  inj.arm_wal_fault(WalFaultKind::kBitFlip, 1);
  storage.append(frame);
  ASSERT_EQ(inner.raw().size(), frame.size() + 3 + frame.size());
  Bytes last(inner.raw().end() - static_cast<long>(frame.size()),
             inner.raw().end());
  EXPECT_NE(last, frame);
  int flipped_bits = 0;
  for (size_t i = 0; i < frame.size(); ++i) {
    flipped_bits += __builtin_popcount(last[i] ^ frame[i]);
  }
  EXPECT_EQ(flipped_bits, 1);

  const size_t before = inner.raw().size();
  inj.arm_wal_fault(WalFaultKind::kDropAppend, 0);
  storage.append(frame);  // lost entirely
  EXPECT_EQ(inner.raw().size(), before);
  EXPECT_EQ(storage.appends(), 4u);
  EXPECT_EQ(storage.faulted(), 3u);
}

// --- FailoverManager ---------------------------------------------------

struct FailoverFixture {
  SimClock clock;
  telemetry::MetricsRegistry registry;
  telemetry::EventLog events;
  cserv::CservConfig cfg;
  app::Testbed bed;
  cserv::FailoverManager fm;
  ResKey primary;
  ResKey backup;

  FailoverFixture()
      : events(clock),
        cfg([this] {
          cserv::CservConfig c;
          c.metrics = &registry;
          c.events = &events;
          return c;
        }()),
        bed(topology::builders::two_isd_topology(),
            (clock.set(1'000 * kNsPerSec), clock), cfg),
        fm(bed.cserv(kProtectedLinkA)) {
    bed.provision_all_segments(1'000, 2'000'000);
    auto p = app::find_primary_core_segr(bed);
    EXPECT_TRUE(p.has_value());
    primary = *p;
    auto b = fm.provision_backup(
        primary, app::protection_backup_segment(bed.topology()), 1'000,
        30'000);
    EXPECT_TRUE(b.ok());
    backup = b.value();
  }
};

TEST(FailoverManagerTest, CutoverSwapsAdvertsAndSuppressesRenewal) {
  FailoverFixture fx;
  cserv::SegrRegistry& reg = fx.bed.cserv(kProtectedLinkA).registry();
  EXPECT_TRUE(reg.find(fx.primary).has_value());
  EXPECT_FALSE(reg.find(fx.backup).has_value());  // standby: unadvertised
  EXPECT_EQ(fx.fm.snapshot().protected_pairs, 1u);

  EXPECT_EQ(fx.fm.on_link_down(kProtectedLinkA, kProtectedLinkB,
                               fx.clock.now_ns()),
            1u);
  EXPECT_FALSE(reg.find(fx.primary).has_value());
  EXPECT_TRUE(reg.find(fx.backup).has_value());
  EXPECT_TRUE(fx.fm.failed_over(fx.primary));
  EXPECT_TRUE(fx.fm.renewal_suppressed(fx.primary));
  EXPECT_FALSE(fx.fm.renewal_suppressed(fx.backup));
  ASSERT_TRUE(fx.fm.backup_of(fx.primary).has_value());
  EXPECT_EQ(*fx.fm.backup_of(fx.primary), fx.backup);
  const cserv::FailoverStats s = fx.fm.snapshot();
  EXPECT_EQ(s.cutovers, 1u);
  EXPECT_EQ(s.active, 1u);
  // Repeated detection of the same outage is idempotent.
  EXPECT_EQ(fx.fm.on_link_down(kProtectedLinkA, kProtectedLinkB,
                               fx.clock.now_ns()),
            0u);
}

TEST(FailoverManagerTest, FailbackRestoresWhitelistedAdvert) {
  FailoverFixture fx;
  // Advertise the primary to a whitelist; the cutover must stash it and
  // fail-back must restore it verbatim.
  const std::vector<AsId> wl = {AsId{1, 110}};
  ASSERT_TRUE(fx.bed.cserv(kProtectedLinkA).publish_segr(fx.primary, wl));
  fx.fm.on_link_down(kProtectedLinkA, kProtectedLinkB, fx.clock.now_ns());
  EXPECT_EQ(fx.fm.on_link_up(kProtectedLinkA, kProtectedLinkB), 1u);

  cserv::SegrRegistry& reg = fx.bed.cserv(kProtectedLinkA).registry();
  const auto advert = reg.find(fx.primary);
  ASSERT_TRUE(advert.has_value());
  EXPECT_EQ(advert->whitelist, wl);
  EXPECT_FALSE(reg.find(fx.backup).has_value());  // back to cheap standby
  EXPECT_FALSE(fx.fm.failed_over(fx.primary));
  EXPECT_FALSE(fx.fm.renewal_suppressed(fx.primary));
  const cserv::FailoverStats s = fx.fm.snapshot();
  EXPECT_EQ(s.failbacks, 1u);
  EXPECT_EQ(s.active, 0u);
}

TEST(FailoverManagerTest, MissingBackupCountsUnprotected) {
  FailoverFixture fx;
  cserv::FailoverManager lone(fx.bed.cserv(kProtectedLinkA));
  lone.pair(fx.primary, ResKey{kProtectedLinkA, 99'999});  // no such SegR
  EXPECT_EQ(lone.on_link_down(kProtectedLinkA, kProtectedLinkB,
                              fx.clock.now_ns()),
            0u);
  const cserv::FailoverStats s = lone.snapshot();
  EXPECT_EQ(s.cutovers, 0u);
  EXPECT_EQ(s.unprotected, 1u);
}

TEST(FailoverManagerTest, CutoverEventRoundTripsThroughJson) {
  FailoverFixture fx;
  fx.clock.advance(750'000'000);
  fx.fm.on_link_down(kProtectedLinkA, kProtectedLinkB,
                     fx.clock.now_ns() - 250'000'000);
  const telemetry::Event* cutover = nullptr;
  const auto all = fx.events.events();
  for (const auto& ev : all) {
    if (ev.component == "failover" && ev.name == "failover.cutover") {
      cutover = &ev;
    }
  }
  ASSERT_NE(cutover, nullptr);
  EXPECT_EQ(cutover->u64("latency_ns").value_or(0), 250'000'000u);

  const auto parsed = telemetry::Event::from_json(cutover->to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->component, "failover");
  EXPECT_EQ(parsed->name, "failover.cutover");
  EXPECT_EQ(parsed->time_ns, cutover->time_ns);
  EXPECT_EQ(parsed->u64("latency_ns"), cutover->u64("latency_ns"));
  EXPECT_EQ(parsed->str("as"), cutover->str("as"));
}

TEST(FailoverAlertTest, RulePackFiresOnCutoverAndResolvesOnFailback) {
  FailoverFixture fx;
  telemetry::WindowedSamplerConfig scfg;
  scfg.period_ns = kNsPerSec;
  telemetry::WindowedSampler sampler(fx.registry, fx.clock, scfg);
  telemetry::AlertEngine engine(sampler, fx.clock, &fx.events);
  engine.add_rules(cserv::default_failover_alert_rules());
  ASSERT_EQ(engine.rule_count(), 2u);

  // The sampler's first sample only records a baseline (deltas need two
  // snapshots), so burn one window before the assertions start.
  fx.clock.advance(scfg.period_ns);
  ASSERT_FALSE(sampler.poll());
  const auto pump = [&] {
    fx.clock.advance(scfg.period_ns);
    ASSERT_TRUE(sampler.poll());
    (void)engine.evaluate();
  };
  pump();
  EXPECT_EQ(engine.firing_count(), 0u);

  fx.fm.on_link_down(kProtectedLinkA, kProtectedLinkB, fx.clock.now_ns());
  pump();
  EXPECT_EQ(engine.firing_count(), 1u);
  EXPECT_EQ(engine.fired_total(), 1u);
  bool active_firing = false;
  for (const auto& st : engine.status()) {
    if (st.name == "cserv.failover-active") {
      active_firing = st.state == telemetry::AlertState::kFiring;
    }
  }
  EXPECT_TRUE(active_firing);

  fx.fm.on_link_up(kProtectedLinkA, kProtectedLinkB);
  pump();
  EXPECT_EQ(engine.firing_count(), 0u);
  EXPECT_EQ(engine.resolved_total(), 1u);
}

// --- chaos harness -----------------------------------------------------

TEST(ChaosTest, TwinUniversesConvergeUnderFullChaos) {
  app::ChaosOptions opts;
  opts.seed = colibri::testing::test_seed(0xC0A05EEDULL);
  COLIBRI_SEED_TRACE(opts.seed);
  const app::ChaosTwinReport twins = app::run_chaos_twins(opts);
  const app::ChaosReport& f = twins.faulted;

  // The adversity actually happened...
  EXPECT_GT(f.faults.msg_dropped + f.faults.msg_duplicated +
                f.faults.msg_delayed,
            0u);
  EXPECT_EQ(f.cutovers, 1u);
  EXPECT_EQ(f.failbacks, 1u);
  EXPECT_EQ(f.unprotected, 0u);
  EXPECT_TRUE(f.crash_restored);
  EXPECT_GT(f.wal_records_recovered, 0u);
  EXPECT_EQ(f.faults.wal_faults, 1u);  // the torn crash append

  // ...failover was fast (detected within one 1 s monitor tick)...
  EXPECT_GT(f.failover_latency_ns, 0u);
  EXPECT_LT(f.failover_latency_ns, kNsPerSec);

  // ...traffic survived and re-established...
  EXPECT_GT(f.data_delivered, 0u);
  EXPECT_EQ(f.sessions_up, 4);
  EXPECT_EQ(twins.clean.sessions_up, 4);
  EXPECT_EQ(twins.clean.data_lost, 0u);

  // ...and the chaos left no scar: both universes hold an equivalent
  // reservation end-state.
  EXPECT_TRUE(twins.converged)
      << "faulted digest:\n"
      << f.digest << "\nclean digest:\n"
      << twins.clean.digest;
}

TEST(ChaosTest, SameSeedReplaysIdenticalHistory) {
  app::ChaosOptions opts;
  opts.seed = colibri::testing::test_seed(0xD15EA5EULL);
  COLIBRI_SEED_TRACE(opts.seed);
  const app::ChaosReport a = app::run_chaos_universe(opts);
  const app::ChaosReport b = app::run_chaos_universe(opts);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.history, b.history);  // full transition history, seq-free
  EXPECT_EQ(a.faults.msg_dropped, b.faults.msg_dropped);
  EXPECT_EQ(a.faults.msg_duplicated, b.faults.msg_duplicated);
  EXPECT_EQ(a.faults.msg_delayed, b.faults.msg_delayed);
  EXPECT_EQ(a.data_delivered, b.data_delivered);
  EXPECT_EQ(a.session_reopens, b.session_reopens);

  app::ChaosOptions other = opts;
  other.seed = opts.seed + 1;
  const app::ChaosReport c = app::run_chaos_universe(other);
  EXPECT_NE(a.history, c.history);  // the seed is the universe
}

TEST(ChaosTest, ObsFailoverScenarioDrivesAlertsAndDashboard) {
  app::ObsOptions opts;
  opts.scenario = "failover";
  const app::ObsArtifacts art = app::run_obs_scenario(opts);
  EXPECT_GT(art.delivered, 0);
  EXPECT_GT(art.sampler_windows, 0u);
  EXPECT_GT(art.alert_evaluations, 0u);
  EXPECT_GE(art.alerts_fired, 1u);     // cutover fired the pack
  EXPECT_GE(art.alerts_resolved, 1u);  // fail-back resolved it
  EXPECT_EQ(art.alerts_firing, 0u);    // incident over by scenario end
  EXPECT_NE(art.watch_text.find("failover:"), std::string::npos);
  const bool some_frame_fired = std::any_of(
      art.watch_frames.begin(), art.watch_frames.end(),
      [](const std::string& frame) {
        return frame.find("cserv.failover-active") != std::string::npos;
      });
  EXPECT_TRUE(some_frame_fired);
  EXPECT_NE(art.events_jsonl.find("failover.cutover"), std::string::npos);
  EXPECT_NE(art.events_jsonl.find("failover.restored"), std::string::npos);
}

// --- Post-mortem forensics ---------------------------------------------

namespace {

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// name → bytes for every regular file under `dir`, relative paths, so two
// runs' forensics trees can be compared for byte identity.
std::vector<std::pair<std::string, std::string>> tree_bytes(
    const std::string& dir) {
  std::vector<std::pair<std::string, std::string>> out;
  if (!std::filesystem::exists(dir)) return out;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    out.emplace_back(
        std::filesystem::relative(entry.path(), dir).string(),
        slurp(entry.path()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

TEST(ChaosTest, KillAndRestoreLeavesReopenableHistoryAndIncidentBundle) {
  const std::string dir_a =
      ::testing::TempDir() + "colibri_chaos_forensics_a";
  const std::string dir_b =
      ::testing::TempDir() + "colibri_chaos_forensics_b";
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);

  app::ChaosOptions opts;
  opts.seed = colibri::testing::test_seed(0xC0A05EEDULL);
  COLIBRI_SEED_TRACE(opts.seed);
  opts.forensics_dir = dir_a;
  const app::ChaosReport report = app::run_chaos_universe(opts);

  // The run actually crashed and came back, recording while it happened.
  EXPECT_TRUE(report.crash_restored);
  EXPECT_GT(report.history_frames, 0u);
  EXPECT_GT(report.history_frames_recovered, 0u)
      << "restart should have recovered frames from the on-disk store";
  ASSERT_GE(report.incident_bundles, 1u);
  EXPECT_EQ(report.first_incident_rule, "cserv.failover-active");

  // The store on disk reopens offline, and its queries agree with what
  // the live sampler measured over the monitored span.
  telemetry::DirectoryHistoryBackend backend(dir_a + "/history");
  telemetry::HistoryStore store(backend);
  EXPECT_EQ(store.stats().corrupt_segments, 0u);
  EXPECT_EQ(store.window_count(), report.history_frames);
  EXPECT_EQ(store.counter_delta("", report.monitor_span_start_ns,
                                report.monitor_span_end_ns,
                                /*prefix=*/true),
            report.monitored_counter_total);

  // The bundle on disk names the triggering rule.
  const auto bundles = telemetry::list_incident_bundles(dir_a + "/incidents");
  ASSERT_EQ(bundles.size(), report.incident_bundles);
  EXPECT_EQ(bundles.front().rule, "cserv.failover-active");
  EXPECT_NE(slurp(bundles.front().path).find("cserv.failover-active"),
            std::string::npos);

  // A second same-seed run produces a byte-identical forensics tree:
  // every history segment and incident bundle, bit for bit.
  app::ChaosOptions opts_b = opts;
  opts_b.forensics_dir = dir_b;
  const app::ChaosReport report_b = app::run_chaos_universe(opts_b);
  EXPECT_EQ(report_b.incident_bundles, report.incident_bundles);
  const auto tree_a = tree_bytes(dir_a);
  const auto tree_b = tree_bytes(dir_b);
  ASSERT_FALSE(tree_a.empty());
  ASSERT_EQ(tree_a.size(), tree_b.size());
  for (std::size_t i = 0; i < tree_a.size(); ++i) {
    EXPECT_EQ(tree_a[i].first, tree_b[i].first);
    EXPECT_EQ(tree_a[i].second, tree_b[i].second)
        << "file " << tree_a[i].first << " differs between same-seed runs";
  }

  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
}

}  // namespace
}  // namespace colibri
