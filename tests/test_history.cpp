// Post-mortem forensics (ISSUE 10): the HistoryStore frame codec and
// segment store (rotation, retention, reopen-append), crash-recovery
// property tests over torn tails / bit flips / mid-rotation kills, the
// IncidentRecorder black-box capture (debounce, bundle content,
// same-seed byte-identity), the offline bundle helpers behind
// `colibri_obs incident`, and a concurrent append/query/capture stress
// test meant for the TSan lane.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "colibri/common/clock.hpp"
#include "colibri/common/faults.hpp"
#include "colibri/sim/faults.hpp"
#include "colibri/telemetry/alerts.hpp"
#include "colibri/telemetry/events.hpp"
#include "colibri/telemetry/history.hpp"
#include "colibri/telemetry/incident.hpp"
#include "colibri/telemetry/metrics.hpp"
#include "colibri/telemetry/timeseries.hpp"
#include "seed_util.hpp"

namespace colibri {
namespace {

using telemetry::AlertCmp;
using telemetry::AlertEngine;
using telemetry::AlertRule;
using telemetry::AlertSignal;
using telemetry::DirectoryHistoryBackend;
using telemetry::EventLog;
using telemetry::HistogramSnapshot;
using telemetry::HistoryCodecState;
using telemetry::HistoryConfig;
using telemetry::HistoryStats;
using telemetry::HistoryStore;
using telemetry::IncidentConfig;
using telemetry::IncidentRecorder;
using telemetry::MemoryHistoryBackend;
using telemetry::MetricsRegistry;
using telemetry::SampleWindow;
using telemetry::WindowedSampler;
using telemetry::WindowedSamplerConfig;

constexpr TimeNs kSec = kNsPerSec;

// A deterministic synthetic window: a handful of series with
// index-derived values, including negative gauge swings (zigzag path)
// and an occasional histogram.
SampleWindow make_window(int i) {
  SampleWindow w;
  w.start_ns = 1'000 * kSec + static_cast<TimeNs>(i) * kSec;
  w.end_ns = w.start_ns + kSec;
  w.counter_deltas["cserv.setup.ok"] = static_cast<std::uint64_t>(3 * i + 1);
  w.counter_deltas["router.forwarded"] = static_cast<std::uint64_t>(i % 7);
  if (i % 3 == 0) w.counter_deltas["rare.series"] = 1;
  w.gauges["db.size"] = 100 - 5 * i;  // goes negative past i = 20
  w.gauges["failover.active"] = i % 2;
  if (i % 4 == 0) {
    HistogramSnapshot h;
    h.count = static_cast<std::uint64_t>(i + 2);
    h.sum = static_cast<std::uint64_t>(1000 * i);
    h.buckets[3] = 1;
    h.buckets[10] = static_cast<std::uint64_t>(i + 1);
    w.histogram_deltas["lat.ns"] = h;
  }
  return w;
}

void expect_window_eq(const SampleWindow& a, const SampleWindow& b) {
  EXPECT_EQ(a.start_ns, b.start_ns);
  EXPECT_EQ(a.end_ns, b.end_ns);
  EXPECT_EQ(a.counter_deltas, b.counter_deltas);
  EXPECT_EQ(a.gauges, b.gauges);
  ASSERT_EQ(a.histogram_deltas.size(), b.histogram_deltas.size());
  for (const auto& [name, h] : a.histogram_deltas) {
    const auto it = b.histogram_deltas.find(name);
    ASSERT_NE(it, b.histogram_deltas.end()) << name;
    EXPECT_EQ(h.count, it->second.count) << name;
    EXPECT_EQ(h.sum, it->second.sum) << name;
    EXPECT_EQ(h.buckets, it->second.buckets) << name;
  }
}

// --- frame codec -----------------------------------------------------------

TEST(HistoryCodecTest, RoundTripsWindowsAndShrinksDictionaryFrames) {
  HistoryCodecState enc;
  std::vector<Bytes> frames;
  for (int i = 0; i < 5; ++i) frames.push_back(encode_history_frame(make_window(i), enc));

  // First frame carries every series name; later ones only ids.
  EXPECT_LT(frames[1].size(), frames[0].size());

  Bytes log;
  for (const Bytes& f : frames) append_bytes(log, f);
  HistoryCodecState dec;
  std::size_t off = 0;
  for (int i = 0; i < 5; ++i) {
    auto w = decode_history_frame(log, off, dec);
    ASSERT_TRUE(w.has_value()) << "frame " << i;
    expect_window_eq(make_window(i), *w);
  }
  EXPECT_EQ(off, log.size());
}

TEST(HistoryCodecTest, DecodeRejectsTruncationAndBitFlipsWithoutAdvancing) {
  HistoryCodecState enc;
  const Bytes frame = encode_history_frame(make_window(7), enc);

  // Every possible truncation is torn, not misdecoded.
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    Bytes torn(frame.begin(), frame.begin() + static_cast<long>(cut));
    HistoryCodecState dec;
    std::size_t off = 0;
    EXPECT_FALSE(decode_history_frame(torn, off, dec).has_value()) << cut;
    EXPECT_EQ(off, 0u);
  }
  // A single flipped bit anywhere fails the CRC (or the header checks).
  for (std::size_t byte = 0; byte < frame.size(); byte += 3) {
    Bytes bad = frame;
    bad[byte] ^= 0x10;
    HistoryCodecState dec;
    std::size_t off = 0;
    EXPECT_FALSE(decode_history_frame(bad, off, dec).has_value()) << byte;
    EXPECT_EQ(off, 0u);
  }
}

TEST(HistoryCodecTest, EncodingIsDeterministic) {
  HistoryCodecState a, b;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(encode_history_frame(make_window(i), a),
              encode_history_frame(make_window(i), b));
  }
}

// --- store: append, queries, rotation, retention, reopen -------------------

TEST(HistoryStoreTest, QueriesAgreeWithLiveSampler) {
  SimClock clock(1'000 * kSec);
  MetricsRegistry registry;
  auto& req = registry.counter("svc.requests");
  auto& depth = registry.gauge("svc.depth");
  auto& lat = registry.histogram("svc.lat_ns");

  WindowedSamplerConfig scfg;
  scfg.period_ns = kSec;
  WindowedSampler sampler(registry, clock, scfg);
  MemoryHistoryBackend backend;
  HistoryStore store(backend);

  clock.advance(kSec);
  sampler.poll();  // baseline
  for (int i = 1; i <= 20; ++i) {
    req.inc(static_cast<std::uint64_t>(10 * i));
    depth.set(i);
    lat.record(static_cast<std::uint64_t>(100 * i));
    clock.advance(kSec);
    ASSERT_TRUE(sampler.poll());
    EXPECT_TRUE(store.append_latest(sampler));
    EXPECT_FALSE(store.append_latest(sampler));  // dedupe: same window
  }

  EXPECT_EQ(store.window_count(), 20u);
  EXPECT_EQ(store.counter_delta("svc.requests", 0, HistoryStore::kUntilEnd),
            sampler.counter_delta("svc.requests", WindowedSampler::kSpanAll));
  EXPECT_DOUBLE_EQ(store.rate("svc.requests", 0, HistoryStore::kUntilEnd),
                   sampler.rate("svc.requests", WindowedSampler::kSpanAll));
  EXPECT_EQ(store.gauge_level("svc.depth", 0, HistoryStore::kUntilEnd),
            sampler.gauge_level("svc.depth"));
  const auto p99 = store.percentile("svc.lat_ns", 0.99, 0,
                                    HistoryStore::kUntilEnd);
  ASSERT_TRUE(p99.has_value());
  const auto live_p99 = sampler.windowed_percentile(
      "svc.lat_ns", 0.99, WindowedSampler::kSpanAll);
  ASSERT_TRUE(live_p99.has_value());
  EXPECT_DOUBLE_EQ(*p99, *live_p99);

  // Absolute sub-spans: only the overlapping windows contribute.
  const TimeNs t0 = 1'001 * kSec;
  EXPECT_EQ(store.counter_delta("svc.requests", t0, t0 + 5 * kSec),
            10u + 20u + 30u + 40u + 50u);
}

TEST(HistoryStoreTest, RotatesBySizeAndCompactsByCount) {
  MemoryHistoryBackend backend;
  HistoryConfig cfg;
  cfg.max_segment_bytes = 256;  // a handful of frames per segment
  cfg.max_segments = 3;
  HistoryStore store(backend, cfg);
  for (int i = 0; i < 60; ++i) store.append(make_window(i));

  const HistoryStats st = store.stats();
  EXPECT_GT(st.rotations, 0u);
  EXPECT_GT(st.segments_dropped, 0u);
  EXPECT_LE(store.segment_count(), 3u);
  EXPECT_LE(backend.segments().size(), 3u);
  // The newest windows survive compaction and stay queryable.
  const auto ws = store.windows();
  ASSERT_FALSE(ws.empty());
  EXPECT_EQ(ws.back().end_ns, make_window(59).end_ns);
  EXPECT_EQ(store.counter_delta("cserv.setup.ok", ws.back().start_ns,
                                HistoryStore::kUntilEnd),
            3u * 59 + 1);
}

TEST(HistoryStoreTest, RotatesByAgeAndAppliesTimeRetention) {
  MemoryHistoryBackend backend;
  HistoryConfig cfg;
  cfg.max_segment_age_ns = 4 * kSec;  // 1 s windows: ~4 per segment
  cfg.max_segments = 0;
  cfg.retention_ns = 10 * kSec;
  HistoryStore store(backend, cfg);
  for (int i = 0; i < 30; ++i) store.append(make_window(i));

  EXPECT_GT(store.stats().rotations, 2u);
  EXPECT_GT(store.stats().segments_dropped, 0u);
  // Nothing older than retention_ns before the newest window remains.
  const TimeNs newest = make_window(29).end_ns;
  const auto ws = store.windows();
  ASSERT_FALSE(ws.empty());
  for (const auto& w : ws) EXPECT_GE(w.end_ns, newest - 20 * kSec);
}

TEST(HistoryStoreTest, ReopenRecoversSealsAndAppendsFreshSegment) {
  MemoryHistoryBackend backend;
  HistoryConfig cfg;
  cfg.max_segment_bytes = 512;
  {
    HistoryStore store(backend, cfg);
    for (int i = 0; i < 10; ++i) store.append(make_window(i));
  }
  const std::size_t segments_before = backend.segments().size();

  HistoryStore reopened(backend, cfg);
  EXPECT_EQ(reopened.stats().frames_recovered, 10u);
  EXPECT_EQ(reopened.stats().corrupt_segments, 0u);
  EXPECT_EQ(reopened.window_count(), 10u);

  // Appends land in a *new* segment — never in a possibly-torn tail.
  reopened.append(make_window(10));
  EXPECT_EQ(backend.segments().size(), segments_before + 1);
  EXPECT_EQ(reopened.window_count(), 11u);
  // append_latest-style dedupe also spans the reopen: stale windows
  // (end <= newest recovered end) are the caller's to skip, but the
  // queries must see one continuous series.
  EXPECT_EQ(reopened.counter_delta("cserv.setup.ok", 0,
                                   HistoryStore::kUntilEnd),
            [&] {
              std::uint64_t sum = 0;
              for (int i = 0; i <= 10; ++i) sum += 3u * i + 1;
              return sum;
            }());

  // A second reopen recovers the same state (recovery is idempotent).
  HistoryStore again(backend, cfg);
  EXPECT_EQ(again.window_count(), 11u);
}

TEST(HistoryStoreTest, SameWindowsProduceByteIdenticalSegments) {
  MemoryHistoryBackend a, b;
  HistoryConfig cfg;
  cfg.max_segment_bytes = 300;
  {
    HistoryStore sa(a, cfg), sb(b, cfg);
    for (int i = 0; i < 25; ++i) {
      sa.append(make_window(i));
      sb.append(make_window(i));
    }
  }
  const auto names = a.segments();
  ASSERT_EQ(names, b.segments());
  for (const auto& n : names) {
    EXPECT_EQ(a.segment(n)->raw(), b.segment(n)->raw()) << n;
  }
}

// --- crash-recovery property tests -----------------------------------------

// Frame end-offsets of one segment, decoded with a fresh codec state —
// the "records_before" ruler the WAL property tests use.
std::vector<std::size_t> frame_ends(const Bytes& raw) {
  std::vector<std::size_t> ends;
  HistoryCodecState st;
  std::size_t off = 0;
  while (decode_history_frame(raw, off, st).has_value()) ends.push_back(off);
  return ends;
}

TEST(HistoryRecoveryPropertyTest, TornTailsBitFlipsAndKilledSegments) {
  const std::uint64_t seed = testing::test_seed(0x4157041AULL);
  COLIBRI_SEED_TRACE(seed);
  std::mt19937_64 rng(seed);

  for (int trial = 0; trial < 60; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    MemoryHistoryBackend backend;
    HistoryConfig cfg;
    cfg.max_segment_bytes = 64 + rng() % 1024;  // force mid-run rotations
    cfg.max_segments = 0;
    const int n = 4 + static_cast<int>(rng() % 50);
    std::vector<SampleWindow> appended;
    {
      HistoryStore store(backend, cfg);
      for (int i = 0; i < n; ++i) {
        appended.push_back(make_window(i));
        store.append(appended.back());
      }
    }

    const auto segs = backend.segments();
    ASSERT_FALSE(segs.empty());
    const std::string victim = segs.back();  // the segment a crash tears
    Bytes& raw = backend.segment(victim)->raw();
    const std::vector<std::size_t> ends = frame_ends(raw);
    const std::size_t victim_frames = ends.size();

    std::size_t damage_off = raw.size();
    switch (rng() % 3) {
      case 0: {  // torn tail: crash mid-append
        damage_off = rng() % raw.size();
        raw.resize(damage_off);
        break;
      }
      case 1: {  // flipped bit: media corruption
        damage_off = rng() % raw.size();
        raw[damage_off] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
        break;
      }
      case 2: {  // killed mid-rotation: the fresh segment never made it
        damage_off = 0;
        raw.clear();
        break;
      }
    }
    // Every frame fully written before the damage point must survive.
    const std::size_t must_survive = static_cast<std::size_t>(
        std::count_if(ends.begin(), ends.end(),
                      [&](std::size_t e) { return e <= damage_off; }));

    HistoryStore recovered(backend, cfg);
    const std::size_t total = recovered.window_count();
    const std::size_t earlier = appended.size() - victim_frames;
    ASSERT_GE(total, earlier + must_survive);
    ASSERT_LE(total, appended.size());
    // ...and what survives is a *prefix* of what was appended, intact.
    const auto ws = recovered.windows();
    ASSERT_EQ(ws.size(), total);
    for (std::size_t i = 0; i < total; ++i) expect_window_eq(appended[i], ws[i]);

    // The recovered store accepts appends and folds them into queries.
    HistoryStore* store = &recovered;
    store->append(make_window(n));
    EXPECT_EQ(store->window_count(), total + 1);
    EXPECT_EQ(store->windows().back().end_ns, make_window(n).end_ns);
  }
}

// The same tears driven through the reservation WAL's fault machinery:
// a backend whose storages are wrapped in sim::FaultyStorage, with the
// injector arming the fault — the exact decorator the chaos harness
// uses on the reservation WAL.
class FaultyHistoryBackend : public MemoryHistoryBackend {
 public:
  explicit FaultyHistoryBackend(FaultInjector& inj) : inj_(&inj) {}

  reservation::LogStorage& open(const std::string& name) override {
    reservation::LogStorage& inner = MemoryHistoryBackend::open(name);
    auto it = wrapped_.find(name);
    if (it == wrapped_.end()) {
      it = wrapped_
               .emplace(name,
                        std::make_unique<sim::FaultyStorage>(inner, *inj_))
               .first;
    }
    return *it->second;
  }

  std::uint64_t faulted() const {
    std::uint64_t n = 0;
    for (const auto& [_, s] : wrapped_) n += s->faulted();
    return n;
  }

 private:
  FaultInjector* inj_;
  std::map<std::string, std::unique_ptr<sim::FaultyStorage>> wrapped_;
};

TEST(HistoryRecoveryPropertyTest, InjectedAppendFaultsLoseOnlyTheTail) {
  const std::uint64_t seed = testing::test_seed(0xFA17C0DEULL);
  COLIBRI_SEED_TRACE(seed);
  std::mt19937_64 rng(seed);

  for (int trial = 0; trial < 30; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    SimClock clock;
    FaultInjector inj(clock, seed ^ static_cast<std::uint64_t>(trial));
    FaultyHistoryBackend backend(inj);
    HistoryConfig cfg;
    cfg.max_segments = 0;  // single segment: the fault defines the tail
    cfg.max_segment_bytes = 1 << 20;

    const int n = 6 + static_cast<int>(rng() % 20);
    const int victim = 1 + static_cast<int>(rng() % (n - 1));
    const bool tear = (rng() % 2) == 0;
    {
      HistoryStore store(backend, cfg);
      for (int i = 0; i < n; ++i) {
        if (i == victim) {
          inj.arm_wal_fault(tear ? WalFaultKind::kTear
                                 : WalFaultKind::kDropAppend,
                            rng());
        }
        store.append(make_window(i));
      }
    }
    EXPECT_EQ(backend.faulted(), 1u);

    // A dropped append leaves later frames intact; a tear poisons the
    // byte stream, so recovery stops at the damage. Either way every
    // frame before the faulted one survives bit-exact.
    HistoryStore recovered(backend, cfg);
    const auto ws = recovered.windows();
    ASSERT_GE(ws.size(), static_cast<std::size_t>(victim));
    for (int i = 0; i < victim; ++i) {
      expect_window_eq(make_window(i), ws[static_cast<std::size_t>(i)]);
    }
    if (tear) {
      EXPECT_EQ(ws.size(), static_cast<std::size_t>(victim));
      EXPECT_EQ(recovered.stats().corrupt_segments, 1u);
      EXPECT_GT(recovered.stats().discarded_bytes, 0u);
    }
  }
}

// --- incident recorder -----------------------------------------------------

struct IncidentRig {
  SimClock clock{100 * kSec};
  MetricsRegistry registry;
  EventLog events{clock};
  WindowedSampler sampler;
  AlertEngine engine;

  explicit IncidentRig()
      : sampler(registry, clock,
                [] {
                  WindowedSamplerConfig cfg;
                  cfg.period_ns = kSec;
                  return cfg;
                }()),
        engine(sampler, clock, &events) {
    AlertRule r;
    r.name = "test.gauge-high";
    r.series = "test.level";
    r.signal = AlertSignal::kGauge;
    r.cmp = AlertCmp::kAbove;
    r.threshold = 0;
    r.severity = telemetry::Severity::kError;
    engine.add_rule(r);
  }

  void step() {
    clock.advance(kSec);
    sampler.poll();
    engine.evaluate();
  }
};

TEST(IncidentRecorderTest, FiringEdgeCapturesABundleNamingTheRule) {
  IncidentRig rig;
  IncidentRecorder rec(rig.engine);
  rec.set_event_log(&rig.events);
  rec.set_sampler(&rig.sampler);
  rec.add_section("note", [] { return std::string("\"hello\""); });

  auto& g = rig.registry.gauge("test.level");
  rig.step();  // baseline
  rig.step();  // first window, gauge 0: inactive
  EXPECT_EQ(rec.bundle_count(), 0u);

  rig.events.emit(telemetry::Severity::kInfo, "test", "something.happened")
      .u64("k", 42);
  g.set(5);
  rig.step();  // gauge 5 sampled -> rule fires -> bundle
  ASSERT_EQ(rec.bundle_count(), 1u);
  const auto bundles = rec.bundles();
  EXPECT_EQ(bundles[0].rule, "test.gauge-high");
  EXPECT_EQ(bundles[0].time_ns, rig.clock.now_ns());
  const std::string& json = bundles[0].json;
  EXPECT_NE(json.find("\"rule\":\"test.gauge-high\""), std::string::npos);
  EXPECT_NE(json.find("\"schema\": \"colibri.incident.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("something.happened"), std::string::npos);
  EXPECT_NE(json.find("\"windows\""), std::string::npos);
  EXPECT_NE(json.find("\"note\""), std::string::npos);
  // Events are serialized without their process-global seq.
  EXPECT_EQ(json.find("\"seq\""), std::string::npos);

  // The resolved edge is recorded but opens no bundle.
  g.set(0);
  rig.step();
  EXPECT_EQ(rec.bundle_count(), 1u);
}

TEST(IncidentRecorderTest, DebounceFoldsAStormIntoOneBundle) {
  IncidentRig rig;
  // A second rule on the same gauge: both fire on the same evaluate.
  AlertRule r2;
  r2.name = "test.gauge-high-too";
  r2.series = "test.level";
  r2.signal = AlertSignal::kGauge;
  r2.cmp = AlertCmp::kAbove;
  r2.threshold = 1;
  rig.engine.add_rule(r2);

  IncidentConfig icfg;
  icfg.debounce_ns = 30 * kSec;
  IncidentRecorder rec(rig.engine, icfg);

  auto& g = rig.registry.gauge("test.level");
  rig.step();
  rig.step();
  g.set(5);
  rig.step();  // both rules fire: one bundle, one suppressed
  EXPECT_EQ(rec.bundle_count(), 1u);
  EXPECT_EQ(rec.suppressed_total(), 1u);

  // Re-fire inside the window: still suppressed.
  g.set(0);
  rig.step();
  g.set(5);
  rig.step();
  EXPECT_EQ(rec.bundle_count(), 1u);
  EXPECT_EQ(rec.suppressed_total(), 3u);  // both rules again

  // Past the window the next edge opens a bundle that lists them.
  g.set(0);
  rig.step();
  for (int i = 0; i < 30; ++i) rig.step();
  g.set(5);
  rig.step();
  ASSERT_EQ(rec.bundle_count(), 2u);
  const std::string json = rec.bundles()[1].json;
  EXPECT_NE(json.find("\"suppressed\": [{"), std::string::npos);
  EXPECT_NE(json.find("test.gauge-high-too"), std::string::npos);
}

TEST(IncidentRecorderTest, SameSeedRunsProduceByteIdenticalBundles) {
  const auto run_once = [] {
    IncidentRig rig;
    IncidentRecorder rec(rig.engine);
    rec.set_event_log(&rig.events);
    rec.set_sampler(&rig.sampler);
    auto& g = rig.registry.gauge("test.level");
    auto& c = rig.registry.counter("test.work");
    rig.step();
    for (int i = 0; i < 5; ++i) {
      c.inc(static_cast<std::uint64_t>(7 * i));
      rig.events.emit(telemetry::Severity::kInfo, "test", "tick")
          .u64("i", static_cast<std::uint64_t>(i));
      rig.step();
    }
    g.set(3);
    rig.step();
    std::vector<std::string> out;
    for (const auto& b : rec.bundles()) out.push_back(b.json);
    return out;
  };
  const auto a = run_once();
  const auto b = run_once();  // same process: event seqs differ, bundles not
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a, b);
}

// --- offline helpers (colibri_obs incident) --------------------------------

TEST(IncidentOfflineTest, MissingDirectoryListsEmptyAndDiffIsLineBased) {
  EXPECT_TRUE(
      telemetry::list_incident_bundles("/nonexistent/colibri-forensics")
          .empty());
  EXPECT_EQ(telemetry::diff_incident_bundles("a\nb\n", "a\nb\n"), "");
  const std::string d = telemetry::diff_incident_bundles("a\nb\n", "a\nc\n");
  EXPECT_NE(d.find("- b"), std::string::npos);
  EXPECT_NE(d.find("+ c"), std::string::npos);
}

TEST(IncidentOfflineTest, WrittenBundlesRoundTripThroughTheListing) {
  const std::string dir =
      ::testing::TempDir() + "colibri_incident_offline_test";
  std::filesystem::remove_all(dir);

  IncidentRig rig;
  IncidentRecorder rec(rig.engine);
  rec.set_directory(dir);
  auto& g = rig.registry.gauge("test.level");
  rig.step();
  rig.step();
  g.set(2);
  rig.step();
  ASSERT_EQ(rec.bundle_count(), 1u);

  const auto infos = telemetry::list_incident_bundles(dir);
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].id, 0u);
  EXPECT_EQ(infos[0].rule, "test.gauge-high");
  EXPECT_EQ(infos[0].time_ns, rec.bundles()[0].time_ns);
  std::filesystem::remove_all(dir);
}

// --- concurrent stress (TSan lane) -----------------------------------------

TEST(HistoryIncidentStressTest, ConcurrentAppendQueryAndCapture) {
  MemoryHistoryBackend backend;
  HistoryConfig cfg;
  cfg.max_segment_bytes = 2048;
  cfg.max_segments = 8;
  HistoryStore store(backend, cfg);

  IncidentRig rig;
  IncidentRecorder rec(rig.engine);
  rec.set_sampler(&rig.sampler);
  auto& g = rig.registry.gauge("test.level");
  auto& c = rig.registry.counter("test.work");

  constexpr int kWindows = 400;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < kWindows; ++i) store.append(make_window(i));
    done.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      std::uint64_t sink = 0;
      while (!done.load(std::memory_order_acquire)) {
        sink += store.counter_delta("cserv.setup.ok", 0,
                                    HistoryStore::kUntilEnd);
        sink += store.window_count() + store.segment_count();
        sink += store.stats().frames_appended;
        (void)store.windows(1'000 * kSec, 1'010 * kSec);
      }
      EXPECT_GE(sink, 0u);
    });
  }
  // Main thread drives the monitoring loop: windows, evaluations, and
  // alert edges (each one a capture) race the store traffic above.
  for (int i = 0; i < 60; ++i) {
    c.inc(3);
    g.set(i % 10 == 0 ? 1 : 0);
    rig.step();
  }
  writer.join();
  for (auto& r : readers) r.join();

  EXPECT_EQ(store.stats().frames_appended, static_cast<std::uint64_t>(kWindows));
  EXPECT_GT(rec.bundle_count(), 0u);
}

}  // namespace
}  // namespace colibri
