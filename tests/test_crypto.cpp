// Unit tests: AES-128 (FIPS-197 + RFC vectors), CMAC, CBC-MAC, CTR, EAX,
// SHA-256, plus AES-NI/portable cross-checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "colibri/common/rand.hpp"
#include "colibri/crypto/aes.hpp"
#include "colibri/crypto/cbcmac.hpp"
#include "colibri/crypto/cmac_multi.hpp"
#include "colibri/crypto/cmac.hpp"
#include "colibri/crypto/ctr.hpp"
#include "colibri/crypto/eax.hpp"
#include "colibri/crypto/sha256.hpp"

namespace colibri::crypto {
namespace {

Bytes from_hex(const std::string& hex) {
  Bytes out;
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(
        std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

// FIPS-197 Appendix C.1 AES-128 known-answer test.
TEST(AesTest, Fips197Vector) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  const Bytes expect = from_hex("69c4e0d86a7b0430d8cdb78070b4c55a");
  Aes128 aes(key.data());
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(0, std::memcmp(ct, expect.data(), 16));

  std::uint8_t back[16];
  aes.decrypt_block(ct, back);
  EXPECT_EQ(0, std::memcmp(back, pt.data(), 16));
}

// RFC 4493 test vector key (also the SP 800-38A key).
TEST(AesTest, Sp800_38aVector) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
  const Bytes expect = from_hex("3ad77bb40d7a3660a89ecaf32466ef97");
  Aes128 aes(key.data());
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(0, std::memcmp(ct, expect.data(), 16));
}

TEST(AesTest, PortableMatchesAesni) {
  if (!Aes128::has_aesni()) GTEST_SKIP() << "AES-NI not available";
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    std::uint8_t key[16], pt[16], fast[16], slow[16];
    rng.fill(key, 16);
    rng.fill(pt, 16);
    Aes128 aes(key);
    aes.encrypt_block(pt, fast);  // AES-NI path
    Aes128::set_force_portable(true);
    aes.encrypt_block(pt, slow);  // portable path
    Aes128::set_force_portable(false);
    EXPECT_EQ(0, std::memcmp(fast, slow, 16)) << "iteration " << i;
  }
}

TEST(AesTest, DecryptInvertsEncryptRandomized) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    std::uint8_t key[16], pt[16], ct[16], back[16];
    rng.fill(key, 16);
    rng.fill(pt, 16);
    Aes128 aes(key);
    aes.encrypt_block(pt, ct);
    aes.decrypt_block(ct, back);
    EXPECT_EQ(0, std::memcmp(pt, back, 16));
  }
}

TEST(AesTest, InPlaceEncryption) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  Bytes block = from_hex("00112233445566778899aabbccddeeff");
  const Bytes expect = from_hex("69c4e0d86a7b0430d8cdb78070b4c55a");
  Aes128 aes(key.data());
  aes.encrypt_block(block.data(), block.data());
  EXPECT_EQ(block, expect);
}

// RFC 4493 §4 test vectors.
class CmacRfc4493 : public ::testing::TestWithParam<
                        std::pair<std::string, std::string>> {};

TEST_P(CmacRfc4493, Vector) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes msg = from_hex(GetParam().first);
  const Bytes expect = from_hex(GetParam().second);
  Cmac cmac(key.data());
  std::uint8_t tag[16];
  cmac.compute(msg.data(), msg.size(), tag);
  EXPECT_EQ(0, std::memcmp(tag, expect.data(), 16));
}

INSTANTIATE_TEST_SUITE_P(
    Rfc4493, CmacRfc4493,
    ::testing::Values(
        std::make_pair(std::string(),
                       std::string("bb1d6929e95937287fa37d129b756746")),
        std::make_pair(std::string("6bc1bee22e409f96e93d7e117393172a"),
                       std::string("070a16b46b4d4144f79bdd9dd04a287c")),
        std::make_pair(
            std::string("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c"
                        "9eb76fac45af8e5130c81c46a35ce411"),
            std::string("dfa66747de9ae63030ca32611497c827")),
        std::make_pair(
            std::string("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c"
                        "9eb76fac45af8e5130c81c46a35ce411e5fbc1191a0a52ef"
                        "f69f2445df4f9b17ad2b417be66c3710"),
            std::string("51f0bebf7e3b9d92fc49741779363cfe"))));

TEST(CmacTest, VerifyPrefixConstantTimeSemantics) {
  const std::uint8_t a[4] = {1, 2, 3, 4};
  const std::uint8_t b[4] = {1, 2, 3, 4};
  const std::uint8_t c[4] = {1, 2, 3, 5};
  EXPECT_TRUE(Cmac::verify_prefix(a, b, 4));
  EXPECT_FALSE(Cmac::verify_prefix(a, c, 4));
  EXPECT_TRUE(Cmac::verify_prefix(a, c, 3));  // differing byte not covered
}

TEST(CbcMacTest, DistinguishesLengths) {
  // Same prefix bytes, different lengths, must yield different tags
  // (length prefix prevents trivial extension).
  std::uint8_t key[16] = {};
  CbcMac mac(key);
  std::uint8_t m[32] = {};
  std::uint8_t t1[16], t2[16];
  mac.compute(m, 16, t1);
  mac.compute(m, 32, t2);
  EXPECT_NE(0, std::memcmp(t1, t2, 16));
}

TEST(CbcMacTest, DeterministicAndKeyDependent) {
  std::uint8_t k1[16] = {1};
  std::uint8_t k2[16] = {2};
  const std::uint8_t msg[20] = {1, 2, 3};
  std::uint8_t t1[16], t2[16], t3[16];
  CbcMac(k1).compute(msg, sizeof(msg), t1);
  CbcMac(k1).compute(msg, sizeof(msg), t2);
  CbcMac(k2).compute(msg, sizeof(msg), t3);
  EXPECT_EQ(0, std::memcmp(t1, t2, 16));
  EXPECT_NE(0, std::memcmp(t1, t3, 16));
}

// SP 800-38A F.5.1 CTR-AES128 vector.
TEST(CtrTest, Sp800_38aVector) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes iv = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  Bytes data = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  const Bytes expect = from_hex(
      "874d6191b620e3261bef6864990db6ce"
      "9806f66b7970fdff8617187bb9fffdff");
  Aes128 aes(key.data());
  ctr_xcrypt(aes, iv.data(), data.data(), data.size());
  EXPECT_EQ(data, expect);
}

TEST(CtrTest, XcryptIsInvolution) {
  Rng rng(5);
  std::uint8_t key[16], iv[16];
  rng.fill(key, 16);
  rng.fill(iv, 16);
  Aes128 aes(key);
  Bytes data(100);
  rng.fill(data.data(), data.size());
  const Bytes original = data;
  ctr_xcrypt(aes, iv, data.data(), data.size());
  EXPECT_NE(data, original);
  ctr_xcrypt(aes, iv, data.data(), data.size());
  EXPECT_EQ(data, original);
}

TEST(CtrTest, CounterCrossesBlockBoundary) {
  // IV ending in 0xFF..FF forces the big-endian carry path.
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes iv(16, 0xFF);
  Aes128 aes(key.data());
  Bytes data(48, 0);
  ctr_xcrypt(aes, iv.data(), data.data(), data.size());
  // Keystream blocks must differ (counter advanced despite wrap).
  EXPECT_NE(0, std::memcmp(data.data(), data.data() + 16, 16));
  EXPECT_NE(0, std::memcmp(data.data() + 16, data.data() + 32, 16));
}

TEST(EaxTest, SealOpenRoundTrip) {
  std::uint8_t key[16] = {7};
  Eax eax(key);
  const Bytes nonce(16, 0xAB);
  const Bytes aad = {1, 2, 3};
  const Bytes pt = {10, 20, 30, 40, 50};
  const Bytes sealed = eax.seal(nonce, aad, pt);
  EXPECT_EQ(sealed.size(), nonce.size() + pt.size() + Eax::kTagSize);
  auto opened = eax.open(aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

TEST(EaxTest, TamperedCiphertextRejected) {
  std::uint8_t key[16] = {7};
  Eax eax(key);
  const Bytes nonce(16, 1);
  const Bytes aad = {9};
  const Bytes pt = {1, 2, 3, 4};
  Bytes sealed = eax.seal(nonce, aad, pt);
  sealed[Eax::kNonceSize] ^= 1;
  EXPECT_FALSE(eax.open(aad, sealed).has_value());
}

TEST(EaxTest, WrongAadRejected) {
  std::uint8_t key[16] = {7};
  Eax eax(key);
  const Bytes nonce(16, 1);
  const Bytes pt = {1, 2, 3, 4};
  const Bytes sealed = eax.seal(nonce, Bytes{1}, pt);
  EXPECT_FALSE(eax.open(Bytes{2}, sealed).has_value());
}

TEST(EaxTest, WrongKeyRejected) {
  std::uint8_t k1[16] = {1};
  std::uint8_t k2[16] = {2};
  const Bytes nonce(16, 1);
  const Bytes pt = {5, 6};
  const Bytes sealed = Eax(k1).seal(nonce, {}, pt);
  EXPECT_FALSE(Eax(k2).open({}, sealed).has_value());
}

TEST(EaxTest, TooShortInputRejected) {
  std::uint8_t key[16] = {};
  Eax eax(key);
  EXPECT_FALSE(eax.open({}, Bytes(10, 0)).has_value());
}

TEST(EaxTest, EmptyPlaintextAuthenticated) {
  std::uint8_t key[16] = {3};
  Eax eax(key);
  const Bytes nonce(16, 2);
  const Bytes sealed = eax.seal(nonce, Bytes{1, 2}, {});
  auto opened = eax.open(Bytes{1, 2}, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

// FIPS 180-4 known-answer tests.
TEST(Sha256Test, EmptyString) {
  const auto d = Sha256::hash({});
  EXPECT_EQ(to_hex(BytesView(d.data(), d.size())),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  const Bytes msg = {'a', 'b', 'c'};
  const auto d = Sha256::hash(msg);
  EXPECT_EQ(to_hex(BytesView(d.data(), d.size())),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  const std::string s = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  Bytes msg(s.begin(), s.end());
  const auto d = Sha256::hash(msg);
  EXPECT_EQ(to_hex(BytesView(d.data(), d.size())),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Rng rng(9);
  Bytes msg(1000);
  rng.fill(msg.data(), msg.size());
  Sha256 inc;
  inc.update(BytesView(msg.data(), 100));
  inc.update(BytesView(msg.data() + 100, 463));
  inc.update(BytesView(msg.data() + 563, msg.size() - 563));
  EXPECT_EQ(inc.finish(), Sha256::hash(msg));
}

// --- Multi-lane batch primitives (cmac_multi) -------------------------------
// The batched data-plane pipeline is only allowed to exist because these
// produce byte-identical output to the scalar primitives.

TEST(CmacMultiTest, ScheduleExpansionMatchesPortable) {
  Rng rng(11);
  for (int iter = 0; iter < 50; ++iter) {
    std::uint8_t key[16];
    rng.fill(key, sizeof(key));
    std::uint8_t want[176];
    portable::expand_key(key, want);
    AesSchedule s;
    s.expand(key);  // AESKEYGENASSIST path when the CPU has AES-NI
    EXPECT_EQ(0, std::memcmp(s.rk, want, sizeof(want)));
  }
}

TEST(CmacMultiTest, EncryptBlocksMatchesScalar) {
  Rng rng(12);
  std::uint8_t key[16];
  rng.fill(key, sizeof(key));
  const Aes128 aes(key);
  // Exercise the 4-wide interleave plus every remainder length.
  for (size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 31u, 64u}) {
    Bytes in(16 * n), got(16 * n), want(16 * n);
    rng.fill(in.data(), in.size());
    aes.encrypt_blocks(in.data(), got.data(), n);
    for (size_t i = 0; i < n; ++i) {
      aes.encrypt_block(in.data() + 16 * i, want.data() + 16 * i);
    }
    EXPECT_EQ(got, want) << "n=" << n;
  }
}

TEST(CmacMultiTest, EncryptEachMatchesPerLaneCipher) {
  Rng rng(13);
  for (size_t n : {1u, 3u, 4u, 6u, 16u, 33u}) {
    std::vector<AesSchedule> scheds(n);
    std::vector<Aes128> ciphers;
    Bytes in(16 * n), got(16 * n), want(16 * n);
    rng.fill(in.data(), in.size());
    for (size_t i = 0; i < n; ++i) {
      std::uint8_t key[16];
      rng.fill(key, sizeof(key));
      scheds[i].expand(key);
      ciphers.emplace_back(key);
    }
    aes128_encrypt_each(scheds.data(), n, in.data(), got.data());
    for (size_t i = 0; i < n; ++i) {
      ciphers[i].encrypt_block(in.data() + 16 * i, want.data() + 16 * i);
    }
    EXPECT_EQ(got, want) << "n=" << n;
  }
}

TEST(CmacMultiTest, CbcmacFixedMultiMatchesScalarLanes) {
  Rng rng(14);
  std::uint8_t key[16];
  rng.fill(key, sizeof(key));
  const Aes128 aes(key);
  // Message lengths covering exact-block and ragged tails (the data
  // plane uses 25- and 57-byte MAC inputs).
  for (size_t msg_len : {16u, 25u, 32u, 57u, 64u}) {
    const size_t stride = (msg_len + 15) / 16 * 16;
    for (size_t n : {1u, 2u, 5u, 64u}) {
      Bytes msgs(stride * n);
      rng.fill(msgs.data(), msgs.size());
      Bytes got(16 * n);
      cbcmac_fixed_multi(aes, msgs.data(), msg_len, stride, n, got.data());
      for (size_t l = 0; l < n; ++l) {
        // Inline scalar CBC-MAC reference (mirrors dataplane::cbcmac_fixed).
        std::uint8_t x[16] = {};
        size_t off = 0;
        while (off < msg_len) {
          const size_t b = std::min<size_t>(16, msg_len - off);
          for (size_t i = 0; i < b; ++i) x[i] ^= msgs[l * stride + off + i];
          aes.encrypt_block(x, x);
          off += b;
        }
        EXPECT_EQ(0, std::memcmp(got.data() + 16 * l, x, 16))
            << "msg_len=" << msg_len << " lane=" << l << "/" << n;
      }
    }
  }
}

TEST(CmacMultiTest, MultiLanePrimitivesAgreeUnderForcedPortable) {
  // The portable fallback must produce the same bytes as the AES-NI
  // path (when present), because a batch computed on one machine must
  // verify on another.
  Rng rng(15);
  std::uint8_t key[16], block[16];
  rng.fill(key, sizeof(key));
  rng.fill(block, sizeof(block));
  AesSchedule fast;
  fast.expand(key);
  std::uint8_t out_fast[16];
  aes128_encrypt_each(&fast, 1, block, out_fast);

  Aes128::set_force_portable(true);
  AesSchedule slow;
  slow.expand(key);
  std::uint8_t out_slow[16];
  aes128_encrypt_each(&slow, 1, block, out_slow);
  Aes128::set_force_portable(false);

  EXPECT_EQ(0, std::memcmp(fast.rk, slow.rk, sizeof(fast.rk)));
  EXPECT_EQ(0, std::memcmp(out_fast, out_slow, 16));
}

// RFC 4231 test case 2.
TEST(HmacTest, Rfc4231Case2) {
  const Bytes key = {'J', 'e', 'f', 'e'};
  const std::string m = "what do ya want for nothing?";
  const Bytes msg(m.begin(), m.end());
  const auto d = hmac_sha256(key, msg);
  EXPECT_EQ(to_hex(BytesView(d.data(), d.size())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

}  // namespace
}  // namespace colibri::crypto
