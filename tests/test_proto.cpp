// Unit tests: packet wire format, MAC-input builders, control-plane
// message codecs.
#include <gtest/gtest.h>

#include "colibri/common/rand.hpp"
#include "colibri/proto/codec.hpp"
#include "colibri/proto/messages.hpp"

namespace colibri::proto {
namespace {

Packet sample_packet(bool eer) {
  Packet p;
  p.type = eer ? PacketType::kData : PacketType::kSegSetup;
  p.is_eer = eer;
  p.current_hop = 1;
  p.path = {topology::Hop{AsId{1, 1}, kNoInterface, 2},
            topology::Hop{AsId{1, 2}, 3, 4},
            topology::Hop{AsId{1, 3}, 5, kNoInterface}};
  p.resinfo = ResInfo{AsId{1, 1}, 42, 5000, 123456, 2};
  if (eer) {
    p.eerinfo.src_host = HostAddr::from_u64(7);
    p.eerinfo.dst_host = HostAddr::from_u64(9);
  }
  p.timestamp = 0xCAFEBABE;
  p.hvfs = {Hvf{1, 2, 3, 4}, Hvf{5, 6, 7, 8}, Hvf{9, 10, 11, 12}};
  p.payload = {0xAA, 0xBB, 0xCC};
  return p;
}

// AS ids are not carried on the wire (forwarding is interface-based), so
// round-trip equality is checked on the re-encoded bytes.
TEST(PacketCodecTest, RoundTripStable) {
  for (bool eer : {false, true}) {
    const Packet p = sample_packet(eer);
    const Bytes wire = encode_packet(p);
    EXPECT_EQ(wire.size(), p.wire_size());
    auto decoded = decode_packet(wire);
    ASSERT_TRUE(decoded.has_value()) << "eer=" << eer;
    EXPECT_EQ(encode_packet(*decoded), wire);
    EXPECT_EQ(decoded->type, p.type);
    EXPECT_EQ(decoded->resinfo, p.resinfo);
    EXPECT_EQ(decoded->timestamp, p.timestamp);
    EXPECT_EQ(decoded->hvfs, p.hvfs);
    EXPECT_EQ(decoded->payload, p.payload);
    if (eer) EXPECT_EQ(decoded->eerinfo, p.eerinfo);
  }
}

TEST(PacketCodecTest, PreservesInterfaces) {
  const Packet p = sample_packet(true);
  auto decoded = decode_packet(encode_packet(p));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->path.size(), p.path.size());
  for (size_t i = 0; i < p.path.size(); ++i) {
    EXPECT_EQ(decoded->path[i].ingress, p.path[i].ingress);
    EXPECT_EQ(decoded->path[i].egress, p.path[i].egress);
  }
}

TEST(PacketCodecTest, RejectsTruncated) {
  const Bytes wire = encode_packet(sample_packet(true));
  for (size_t cut : {size_t{1}, wire.size() / 2, wire.size() - 1}) {
    EXPECT_FALSE(decode_packet(BytesView(wire.data(), cut)).has_value())
        << "cut=" << cut;
  }
}

TEST(PacketCodecTest, RejectsTrailingGarbage) {
  Bytes wire = encode_packet(sample_packet(false));
  wire.push_back(0x00);
  EXPECT_FALSE(decode_packet(wire).has_value());
}

TEST(PacketCodecTest, RejectsBadType) {
  Bytes wire = encode_packet(sample_packet(false));
  wire[0] = 0x77;
  EXPECT_FALSE(decode_packet(wire).has_value());
}

TEST(PacketCodecTest, RejectsZeroHops) {
  Bytes wire = encode_packet(sample_packet(false));
  wire[2] = 0;  // hop count
  EXPECT_FALSE(decode_packet(wire).has_value());
}

TEST(PacketCodecTest, RejectsCurrentHopBeyondPath) {
  Bytes wire = encode_packet(sample_packet(false));
  wire[3] = 3;  // current hop == hop count
  EXPECT_FALSE(decode_packet(wire).has_value());
}

TEST(TraceContextCodecTest, RoundTripsThroughWire) {
  for (const bool eer : {false, true}) {
    Packet p = sample_packet(eer);
    p.has_trace = true;
    p.trace = TraceContext{0x0123456789ABCDEF, 0xFEDCBA9876543210,
                           0xDEADBEEF, 0xCAFED00D, TraceContext::kSampled};
    const Bytes wire = encode_packet(p);
    EXPECT_EQ(wire.size(), p.wire_size());
    auto decoded = decode_packet(wire);
    ASSERT_TRUE(decoded.has_value()) << "eer=" << eer;
    EXPECT_TRUE(decoded->has_trace);
    EXPECT_EQ(decoded->trace, p.trace);
    EXPECT_TRUE(decoded->trace.sampled());
    EXPECT_EQ(encode_packet(*decoded), wire);
  }
}

TEST(TraceContextCodecTest, AbsentBlockDecodesToZeroedContext) {
  // Frames encoded before the extension existed carry no flag 0x02 and
  // no block; they must decode to an absent context, byte-identically
  // on re-encode.
  const Packet p = sample_packet(false);
  const Bytes wire = encode_packet(p);
  auto decoded = decode_packet(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->has_trace);
  EXPECT_EQ(decoded->trace, TraceContext{});
  EXPECT_FALSE(decoded->trace.present());
  EXPECT_EQ(encode_packet(*decoded), wire);
}

TEST(TraceContextCodecTest, TraceBlockCostsExactlyItsWireBytes) {
  Packet p = sample_packet(true);
  const std::size_t plain = p.wire_size();
  p.has_trace = true;
  EXPECT_EQ(p.wire_size(), plain + kTraceContextLen);
  EXPECT_EQ(encode_packet(p).size(), plain + kTraceContextLen);
}

TEST(TraceContextCodecTest, RejectsTruncatedTraceBlock) {
  Packet p = sample_packet(false);
  p.has_trace = true;
  p.trace.trace_hi = 1;
  const Bytes wire = encode_packet(p);
  // Any cut inside or after the trace block must be rejected, not read
  // out of bounds.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(decode_packet(BytesView(wire.data(), cut)).has_value())
        << "cut=" << cut;
  }
}

TEST(TraceContextCodecTest, ZeroContextWithFlagReencodesCanonically) {
  // has_trace with an all-zero context is a legal frame (flag set, block
  // zeroed); the distinction from "no flag" must survive the round trip
  // so decode∘encode stays the identity for the fuzz harness.
  Packet p = sample_packet(false);
  p.has_trace = true;  // trace left zeroed
  const Bytes wire = encode_packet(p);
  auto decoded = decode_packet(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->has_trace);
  EXPECT_FALSE(decoded->trace.present());
  EXPECT_EQ(encode_packet(*decoded), wire);
}

TEST(TraceContextCodecTest, PeekMatchesFullDecode) {
  for (const bool eer : {false, true}) {
    Packet p = sample_packet(eer);
    EXPECT_EQ(peek_trace_context(encode_packet(p)), TraceContext{});
    p.has_trace = true;
    p.trace = TraceContext{11, 22, 33, 44, TraceContext::kSampled};
    EXPECT_EQ(peek_trace_context(encode_packet(p)), p.trace);
  }
  // Too short to hold the block at its offset: absent, no crash.
  EXPECT_EQ(peek_trace_context(BytesView{}), TraceContext{});
  const Bytes wire = encode_packet([] {
    Packet p = sample_packet(false);
    p.has_trace = true;
    p.trace.span_id = 7;
    return p;
  }());
  EXPECT_EQ(peek_trace_context(BytesView(wire.data(), 30)), TraceContext{});
}

TEST(TraceContextCodecTest, RejectsUnknownFlagBits) {
  Bytes wire = encode_packet(sample_packet(false));
  for (std::uint8_t bit = 0x04; bit != 0; bit <<= 1) {
    Bytes mutated = wire;
    mutated[1] |= bit;
    EXPECT_FALSE(decode_packet(mutated).has_value())
        << "flag bit " << int(bit);
  }
}

TEST(PacketCodecTest, FuzzDecodeNeverCrashes) {
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    Bytes junk(rng.below(200));
    rng.fill(junk.data(), junk.size());
    (void)decode_packet(junk);  // must not crash / UB (ASan would flag)
  }
}

TEST(PacketCodecTest, FuzzMutatedValidPacket) {
  Rng rng(100);
  const Bytes wire = encode_packet(sample_packet(true));
  for (int i = 0; i < 2000; ++i) {
    Bytes mutated = wire;
    mutated[rng.below(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
    if (auto p = decode_packet(mutated)) {
      // If it decodes, re-encoding must reproduce the mutated bytes.
      EXPECT_EQ(encode_packet(*p), mutated);
    }
  }
}

TEST(MacInputTest, SegInputLayout) {
  const ResInfo ri{AsId{1, 5}, 7, 100, 200, 3};
  std::uint8_t buf[kSegMacInputLen];
  build_seg_mac_input(ri, 11, 22, buf);
  // Interfaces at the tail, little-endian.
  EXPECT_EQ(buf[21], 11);
  EXPECT_EQ(buf[23], 22);
  // Version byte after ResInfo scalars.
  EXPECT_EQ(buf[20], 3);
}

TEST(MacInputTest, DifferentInterfacesDifferentInput) {
  const ResInfo ri{AsId{1, 5}, 7, 100, 200, 3};
  std::uint8_t a[kSegMacInputLen], b[kSegMacInputLen];
  build_seg_mac_input(ri, 1, 2, a);
  build_seg_mac_input(ri, 2, 1, b);
  EXPECT_NE(0, std::memcmp(a, b, sizeof(a)));
}

TEST(MacInputTest, HopAuthInputIncludesHosts) {
  const ResInfo ri{AsId{1, 5}, 7, 100, 200, 3};
  EerInfo e1{HostAddr::from_u64(1), HostAddr::from_u64(2)};
  EerInfo e2{HostAddr::from_u64(1), HostAddr::from_u64(3)};
  std::uint8_t a[kHopAuthInputLen], b[kHopAuthInputLen];
  build_hopauth_input(ri, e1, 1, 2, a);
  build_hopauth_input(ri, e2, 1, 2, b);
  EXPECT_NE(0, std::memcmp(a, b, sizeof(a)));
}

TEST(MacInputTest, DataInputBindsSizeAndTime) {
  std::uint8_t a[kDataMacInputLen], b[kDataMacInputLen], c[kDataMacInputLen];
  build_data_mac_input(1, 100, a);
  build_data_mac_input(2, 100, b);
  build_data_mac_input(1, 101, c);
  EXPECT_NE(0, std::memcmp(a, b, sizeof(a)));
  EXPECT_NE(0, std::memcmp(a, c, sizeof(a)));
}

// --- control-plane messages -------------------------------------------------

TEST(MessageCodecTest, SegRequestRoundTrip) {
  SegRequest m;
  m.seg_type = topology::SegType::kCore;
  m.min_bw_kbps = 100;
  m.max_bw_kbps = 1000;
  m.ases = {AsId{1, 1}, AsId{1, 2}};
  m.granted = {900};
  auto decoded = decode_message(encode_message(m));
  ASSERT_TRUE(decoded.has_value());
  auto* d = std::get_if<SegRequest>(&*decoded);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->seg_type, m.seg_type);
  EXPECT_EQ(d->min_bw_kbps, m.min_bw_kbps);
  EXPECT_EQ(d->max_bw_kbps, m.max_bw_kbps);
  EXPECT_EQ(d->ases, m.ases);
  EXPECT_EQ(d->granted, m.granted);
}

TEST(MessageCodecTest, EerRequestRoundTrip) {
  EerRequest m;
  m.min_bw_kbps = 50;
  m.ases = {AsId{1, 1}, AsId{1, 2}, AsId{1, 3}};
  m.path = {topology::Hop{AsId{1, 1}, 0, 1}, topology::Hop{AsId{1, 2}, 2, 3},
            topology::Hop{AsId{1, 3}, 4, 0}};
  m.segrs = {ResKey{AsId{1, 1}, 9}, ResKey{AsId{1, 100}, 3}};
  m.granted = {70, 60};
  auto decoded = decode_message(encode_message(m));
  ASSERT_TRUE(decoded.has_value());
  auto* d = std::get_if<EerRequest>(&*decoded);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->ases, m.ases);
  EXPECT_EQ(d->path, m.path);
  EXPECT_EQ(d->segrs, m.segrs);
  EXPECT_EQ(d->granted, m.granted);
}

TEST(MessageCodecTest, ActivationRoundTrip) {
  SegActivation m{5};
  auto decoded = decode_message(encode_message(m));
  ASSERT_TRUE(decoded.has_value());
  auto* d = std::get_if<SegActivation>(&*decoded);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->version, 5);
}

TEST(MessageCodecTest, ResponseRoundTrip) {
  ControlResponse m;
  m.success = true;
  m.final_bw_kbps = 777;
  m.tokens = {Hvf{1, 2, 3, 4}, Hvf{5, 6, 7, 8}};
  m.sealed_hopauths = {Bytes{1, 2, 3}, Bytes{}};
  m.fail_code = Errc::kOk;
  m.fail_hop = 0;
  auto decoded = decode_message(encode_message(m));
  ASSERT_TRUE(decoded.has_value());
  auto* d = std::get_if<ControlResponse>(&*decoded);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->success, m.success);
  EXPECT_EQ(d->final_bw_kbps, m.final_bw_kbps);
  EXPECT_EQ(d->tokens, m.tokens);
  EXPECT_EQ(d->sealed_hopauths, m.sealed_hopauths);
}

TEST(MessageCodecTest, RejectsUnknownTag) {
  Bytes wire = {0x7F, 0x00};
  EXPECT_FALSE(decode_message(wire).has_value());
}

TEST(AuthInputTest, IndependentOfGrantedVector) {
  SegRequest a;
  a.min_bw_kbps = 1;
  a.max_bw_kbps = 2;
  a.ases = {AsId{1, 1}};
  SegRequest b = a;
  b.granted = {1000, 2000};
  const ResInfo ri{AsId{1, 1}, 1, 2, 3, 0};
  EXPECT_EQ(auth_input(a, ri), auth_input(b, ri));
}

TEST(AuthInputTest, BindsResInfo) {
  SegRequest m;
  m.ases = {AsId{1, 1}};
  const ResInfo r1{AsId{1, 1}, 1, 2, 3, 0};
  const ResInfo r2{AsId{1, 1}, 2, 2, 3, 0};
  EXPECT_NE(auth_input(m, r1), auth_input(m, r2));
}

TEST(AuthedPayloadTest, RoundTrip) {
  AuthedPayload ap;
  SegRequest m;
  m.ases = {AsId{1, 1}, AsId{1, 2}};
  m.max_bw_kbps = 10;
  ap.message = m;
  ap.macs = {Mac16{1}, Mac16{2}};
  auto decoded = decode_authed(encode_authed(ap));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->macs, ap.macs);
  auto* d = std::get_if<SegRequest>(&decoded->message);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->ases, m.ases);
}

TEST(AuthedPayloadTest, RejectsTruncated) {
  AuthedPayload ap;
  ap.message = SegActivation{1};
  ap.macs = {Mac16{}};
  Bytes wire = encode_authed(ap);
  wire.resize(wire.size() - 1);
  EXPECT_FALSE(decode_authed(wire).has_value());
}

TEST(WireSizeTest, EerHeaderLargerThanSegHeader) {
  Packet seg = sample_packet(false);
  Packet eer = sample_packet(true);
  eer.payload = seg.payload;
  EXPECT_EQ(eer.wire_size(), seg.wire_size() + 32);
}

}  // namespace
}  // namespace colibri::proto
