// Control-plane tests: SegR setup/renewal/activation across ASes, EER
// setup over 1-3 SegRs, DRKey-authenticated payloads, rate limiting,
// policy, whitelists, dissemination, policing, and the distributed CServ.
#include <gtest/gtest.h>

#include "colibri/app/testbed.hpp"
#include "colibri/cserv/distributed.hpp"

namespace colibri::cserv {
namespace {

using app::Testbed;

class CservTest : public ::testing::Test {
 protected:
  CservTest()
      : clock_(1000 * kNsPerSec),
        bed_(topology::builders::two_isd_topology(), clock_) {}

  // Convenience: one up-segment starting at `src`.
  topology::PathSegment up_segment(AsId src) {
    auto ups = bed_.pathdb().up_segments_from(src);
    EXPECT_FALSE(ups.empty());
    return *ups.front();
  }

  SimClock clock_;
  Testbed bed_;
};

TEST_F(CservTest, SegrSetupGrantsAndStoresEverywhere) {
  const AsId src{1, 112};  // grandchild: 3-hop up-segment
  const auto seg = up_segment(src);
  ASSERT_EQ(seg.hops.size(), 3u);

  auto r = bed_.cserv(src).setup_segr(seg, 1000, 500'000);
  ASSERT_TRUE(r.ok()) << errc_name(r.error());
  EXPECT_EQ(r.value().bw_kbps, 500'000u);
  EXPECT_EQ(r.value().key.src_as, src);

  // Every on-path AS stores the reservation with the final bandwidth.
  for (const auto& hop : seg.hops) {
    const auto rec = bed_.cserv(hop.as).db().segr_copy(r.value().key);
    ASSERT_TRUE(rec.has_value()) << hop.as.to_string();
    EXPECT_EQ(rec->active.bw_kbps, 500'000u);
    EXPECT_EQ(rec->seg_type, topology::SegType::kUp);
  }
  // The initiator received one token per on-path AS.
  const auto* tokens = bed_.cserv(src).segr_tokens(r.value().key);
  ASSERT_NE(tokens, nullptr);
  EXPECT_EQ(tokens->size(), seg.hops.size());
}

TEST_F(CservTest, SegrTokensValidateAtRouters) {
  const AsId src{1, 112};
  const auto seg = up_segment(src);
  auto r = bed_.cserv(src).setup_segr(seg, 1000, 100'000);
  ASSERT_TRUE(r.ok());
  const auto* tokens = bed_.cserv(src).segr_tokens(r.value().key);
  ASSERT_NE(tokens, nullptr);

  // Construct a SegR control packet and verify each hop's token at the
  // corresponding AS's border router (Eq. 3).
  dataplane::FastPacket pkt;
  pkt.type = proto::PacketType::kSegRenewal;
  pkt.is_eer = false;
  pkt.num_hops = static_cast<std::uint8_t>(seg.hops.size());
  pkt.resinfo.src_as = src;
  pkt.resinfo.res_id = r.value().key.res_id;
  pkt.resinfo.bw_kbps = r.value().bw_kbps;
  pkt.resinfo.exp_time = r.value().exp_time;
  pkt.resinfo.version = r.value().version;
  for (size_t i = 0; i < seg.hops.size(); ++i) {
    pkt.ifaces[i] = dataplane::IfPair{seg.hops[i].ingress, seg.hops[i].egress};
    pkt.hvfs[i] = (*tokens)[i];
  }
  for (size_t i = 0; i + 1 < seg.hops.size(); ++i) {
    EXPECT_EQ(bed_.router(seg.hops[i].as).process(pkt),
              dataplane::BorderRouter::Verdict::kForward)
        << "hop " << i;
  }
  EXPECT_EQ(bed_.router(seg.hops.back().as).process(pkt),
            dataplane::BorderRouter::Verdict::kDeliver);
}

TEST_F(CservTest, SegrContentionSharesCapacity) {
  // Link capacity 40 Gbps * 75 % = 30 Gbps Colibri share. Two siblings
  // request 25 Gbps each through the same parent egress; together they
  // must not exceed the share.
  const AsId a{1, 112};
  const auto seg = up_segment(a);
  auto r1 = bed_.cserv(a).setup_segr(seg, 1000, 25'000'000);
  ASSERT_TRUE(r1.ok());
  auto r2 = bed_.cserv(a).setup_segr(seg, 1000, 25'000'000);
  ASSERT_TRUE(r2.ok());
  EXPECT_LE(static_cast<std::uint64_t>(r1.value().bw_kbps) +
                r2.value().bw_kbps,
            30'000'000u);
}

TEST_F(CservTest, SegrBelowMinFails) {
  const AsId a{1, 112};
  const auto seg = up_segment(a);
  // Saturate.
  ASSERT_TRUE(bed_.cserv(a).setup_segr(seg, 1000, 30'000'000).ok());
  // Impossible minimum.
  auto r = bed_.cserv(a).setup_segr(seg, 29'000'000, 30'000'000);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errc::kBandwidthUnavailable);
}

TEST_F(CservTest, SegrRenewalCreatesPendingThenActivates) {
  const AsId src{1, 110};
  const auto seg = up_segment(src);
  auto setup = bed_.cserv(src).setup_segr(seg, 1000, 1'000'000);
  ASSERT_TRUE(setup.ok());
  const ResKey key = setup.value().key;

  clock_.advance(2 * kNsPerSec);  // renewal rate limit: 1/s
  auto renew = bed_.cserv(src).renew_segr(key, 1000, 2'000'000);
  ASSERT_TRUE(renew.ok()) << errc_name(renew.error());
  EXPECT_EQ(renew.value().version, 1);

  // Pending everywhere, active unchanged (§4.2: explicit activation).
  for (const auto& hop : seg.hops) {
    const auto rec = bed_.cserv(hop.as).db().segr_copy(key);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->active.version, 0);
    ASSERT_TRUE(rec->pending.has_value());
    EXPECT_EQ(rec->pending->version, 1);
  }

  auto act = bed_.cserv(src).activate_segr(key, 1);
  ASSERT_TRUE(act.ok()) << errc_name(act.error());
  for (const auto& hop : seg.hops) {
    const auto rec = bed_.cserv(hop.as).db().segr_copy(key);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->active.version, 1);
    EXPECT_EQ(rec->active.bw_kbps, renew.value().bw_kbps);
    EXPECT_FALSE(rec->pending.has_value());
  }
}

TEST_F(CservTest, ActivationOfUnknownVersionFails) {
  const AsId src{1, 110};
  auto setup = bed_.cserv(src).setup_segr(up_segment(src), 1000, 1'000'000);
  ASSERT_TRUE(setup.ok());
  auto act = bed_.cserv(src).activate_segr(setup.value().key, 7);
  EXPECT_FALSE(act.ok());
  EXPECT_EQ(act.error(), Errc::kBadVersion);
}

TEST_F(CservTest, RenewalRateLimited) {
  const AsId src{1, 110};
  auto setup = bed_.cserv(src).setup_segr(up_segment(src), 1000, 1'000'000);
  ASSERT_TRUE(setup.ok());
  clock_.advance(2 * kNsPerSec);
  ASSERT_TRUE(bed_.cserv(src).renew_segr(setup.value().key, 1000, 1'000'000).ok());
  // Immediate second renewal exceeds 1/s + small burst.
  clock_.advance(kNsPerSec / 100);
  ASSERT_TRUE(bed_.cserv(src).renew_segr(setup.value().key, 1000, 1'000'000).ok());
  clock_.advance(kNsPerSec / 100);
  auto third = bed_.cserv(src).renew_segr(setup.value().key, 1000, 1'000'000);
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.error(), Errc::kRateLimited);
}

class EerTest : public CservTest {
 protected:
  EerTest() { bed_.provision_all_segments(1000, 10'000'000); }
};

TEST_F(EerTest, EndToEndReservationAcrossIsds) {
  // Grandchild in ISD 1 to grandchild in ISD 2: up + core + down.
  const AsId src{1, 112}, dst{2, 212};
  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 100, 50'000);
  ASSERT_TRUE(session.ok()) << errc_name(session.error());
  EXPECT_EQ(session.value().bw_kbps(), 50'000u);

  // The gateway has the reservation installed and produces packets that
  // verify at every on-path router.
  dataplane::FastPacket pkt;
  ASSERT_EQ(session.value().send(800, pkt), dataplane::Gateway::Verdict::kOk);
  const auto rec =
      bed_.cserv(src).db().eer_copy(session.value().key());
  ASSERT_TRUE(rec.has_value());
  for (size_t i = 0; i < rec->path.size(); ++i) {
    const auto verdict = bed_.router(rec->path[i].as).process(pkt);
    if (i + 1 < rec->path.size()) {
      EXPECT_EQ(verdict, dataplane::BorderRouter::Verdict::kForward) << i;
    } else {
      EXPECT_EQ(verdict, dataplane::BorderRouter::Verdict::kDeliver);
    }
  }

  // Every on-path AS stored the EER and accounted it on its SegR.
  for (const auto& hop : rec->path) {
    const auto eer = bed_.cserv(hop.as).db().eer_copy(rec->key);
    ASSERT_TRUE(eer.has_value()) << hop.as.to_string();
    EXPECT_EQ(eer->effective_bw(clock_.now_sec()), 50'000u);
  }
}

TEST_F(EerTest, EerRenewalAddsVersion) {
  const AsId src{1, 110}, dst{1, 120};
  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 100, 20'000);
  ASSERT_TRUE(session.ok()) << errc_name(session.error());
  const ResKey key = session.value().key();

  clock_.advance(13 * kNsPerSec);  // near the 16 s expiry
  EXPECT_TRUE(session.value().maybe_renew(4));
  EXPECT_EQ(session.value().version(), 1);

  const auto rec = bed_.cserv(src).db().eer_copy(key);
  ASSERT_TRUE(rec.has_value());
  EXPECT_GE(rec->versions.size(), 1u);
  EXPECT_EQ(rec->versions.back().version, 1);
  // New expiry extends beyond the old one.
  EXPECT_GT(session.value().exp_time(), 1000u + 16u);
}

TEST_F(EerTest, EerLimitedBySegrBandwidth) {
  const AsId src{1, 110}, dst{1, 120};
  // SegRs were provisioned at 10 Gbps; an EER demanding 50 Gbps gets
  // clamped to the available SegR bandwidth.
  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 100, 50'000'000);
  ASSERT_TRUE(session.ok()) << errc_name(session.error());
  EXPECT_LE(session.value().bw_kbps(), 10'000'000u);
}

TEST_F(EerTest, EerExhaustionRejectsWhenMinUnmet) {
  const AsId src{1, 110}, dst{1, 120};
  // Drain the SegR with large EERs, then ask for more than remains.
  for (int i = 0; i < 2; ++i) {
    auto s = bed_.daemon(src).open_session(dst, HostAddr::from_u64(10 + i),
                                           HostAddr::from_u64(2), 1'000'000,
                                           5'000'000);
    ASSERT_TRUE(s.ok()) << i << ": " << errc_name(s.error());
  }
  auto full = bed_.daemon(src).open_session(dst, HostAddr::from_u64(99),
                                            HostAddr::from_u64(2), 9'000'000,
                                            9'000'000);
  EXPECT_FALSE(full.ok());
}

TEST_F(EerTest, DestinationHostCanReject) {
  const AsId src{1, 110}, dst{1, 120};
  bed_.cserv(dst).set_host_acceptor(
      [](const proto::EerInfo&, BwKbps) { return false; });
  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 100, 1000);
  EXPECT_FALSE(session.ok());
  EXPECT_EQ(session.error(), Errc::kPolicyDenied);
}

TEST_F(EerTest, SourcePolicyCapsPerHost) {
  CservConfig cfg;
  cfg.per_host_eer_cap_kbps = 500;
  SimClock clock(1000 * kNsPerSec);
  Testbed bed(topology::builders::two_isd_topology(), clock, cfg);
  bed.provision_all_segments(100, 1'000'000);
  const AsId src{1, 110}, dst{1, 120};
  auto session = bed.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 100, 100'000);
  ASSERT_TRUE(session.ok()) << errc_name(session.error());
  EXPECT_LE(session.value().bw_kbps(), 500u);

  auto denied = bed.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 1000, 100'000);
  EXPECT_FALSE(denied.ok());
  EXPECT_EQ(denied.error(), Errc::kPolicyDenied);
}

TEST_F(EerTest, WhitelistEnforced) {
  // Publish the down-segment to {2,210} with a whitelist excluding the
  // requester.
  const AsId src{1, 110}, dst{2, 210};
  // Re-publish all SegRs of dst's down segment initiators with whitelists
  // that exclude src.
  for (AsId core : bed_.topology().core_ases()) {
    auto& cs = bed_.cserv(core);
    std::vector<ResKey> keys;
    cs.db().for_each_segr([&](const reservation::SegrRecord& rec) {
      if (rec.key.src_as == core) keys.push_back(rec.key);
    });
    for (const auto& k : keys) cs.publish_segr(k, {AsId{9, 999}});
  }
  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 100, 1000);
  EXPECT_FALSE(session.ok());
}

TEST_F(EerTest, OffenderDeniedFutureReservations) {
  const AsId src{1, 110}, dst{1, 120}, transit{1, 100};
  bed_.cserv(transit).report_offense(
      dataplane::OffenseReport{src, 1, clock_.now_ns(), 1 << 20});
  EXPECT_TRUE(bed_.cserv(transit).reservations_denied_for(src));
  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 100, 1000);
  EXPECT_FALSE(session.ok());
  EXPECT_EQ(session.error(), Errc::kBlocked);
}

TEST_F(EerTest, TickExpiresEverything) {
  const AsId src{1, 110}, dst{1, 120};
  auto session = bed_.daemon(src).open_session(
      dst, HostAddr::from_u64(1), HostAddr::from_u64(2), 100, 1000);
  ASSERT_TRUE(session.ok());
  // Jump past both EER (16 s) and SegR (300 s) lifetimes.
  clock_.advance(400 * kNsPerSec);
  bed_.tick_all();
  EXPECT_EQ(bed_.cserv(src).db().eer_count(), 0u);
  EXPECT_EQ(bed_.cserv(src).db().segr_count(), 0u);
  EXPECT_TRUE(session.value().expired());
}

TEST_F(EerTest, LookupChainsFindsMultiSegmentRoutes) {
  const AsId src{1, 112}, dst{2, 212};
  const auto chains = bed_.cserv(src).lookup_chains(dst);
  ASSERT_FALSE(chains.empty());
  bool has_three = false;
  for (const auto& chain : chains) {
    EXPECT_GE(chain.size(), 1u);
    EXPECT_LE(chain.size(), 3u);
    has_three |= chain.size() == 3;
    // Chain connectivity.
    for (size_t i = 1; i < chain.size(); ++i) {
      EXPECT_EQ(chain[i - 1].last_as(), chain[i].first_as());
    }
  }
  EXPECT_TRUE(has_three);
}

TEST_F(EerTest, RemoteAdvertsAreCached) {
  const AsId src{1, 110}, dst{1, 120};
  const std::uint64_t before = bed_.bus().message_count();
  (void)bed_.cserv(src).lookup_chains(dst);
  const std::uint64_t after_first = bed_.bus().message_count();
  EXPECT_GT(after_first, before);  // remote queries happened
  (void)bed_.cserv(src).lookup_chains(dst);
  const std::uint64_t after_second = bed_.bus().message_count();
  // Cached: the repeat lookup needs strictly fewer remote messages (only
  // the never-hit query pairs are retried; positive results are served
  // from the local registry).
  EXPECT_LT(after_second - after_first, after_first - before);
}

TEST_F(CservTest, ForgedRequestRejected) {
  // Craft a SegReq whose MACs are garbage: every on-path AS must refuse.
  const AsId src{1, 110};
  const auto seg = up_segment(src);
  proto::SegRequest msg;
  msg.seg_type = seg.type;
  msg.min_bw_kbps = 1;
  msg.max_bw_kbps = 1000;
  for (const auto& h : seg.hops) msg.ases.push_back(h.as);

  proto::Packet pkt;
  pkt.type = proto::PacketType::kSegSetup;
  pkt.path = seg.hops;
  pkt.resinfo.src_as = src;
  pkt.resinfo.res_id = 777;
  pkt.resinfo.bw_kbps = 1000;
  pkt.resinfo.exp_time = clock_.now_sec() + 300;
  pkt.current_hop = 1;  // deliver straight to the second AS

  proto::AuthedPayload ap;
  ap.message = msg;
  ap.macs.assign(msg.ases.size(), proto::Mac16{0xDE, 0xAD});
  pkt.payload = proto::encode_authed(ap);

  Bytes framed;
  framed.push_back(0);  // packet channel
  append_bytes(framed, proto::encode_packet(pkt));
  const Bytes resp_wire = bed_.bus().call(seg.hops[1].as, framed);
  auto resp_pkt = proto::decode_packet(resp_wire);
  ASSERT_TRUE(resp_pkt.has_value());
  auto resp_ap = proto::decode_authed(resp_pkt->payload);
  ASSERT_TRUE(resp_ap.has_value());
  auto* resp = std::get_if<proto::ControlResponse>(&resp_ap->message);
  ASSERT_NE(resp, nullptr);
  EXPECT_FALSE(resp->success);
  EXPECT_EQ(resp->fail_code, Errc::kAuthFailed);
  EXPECT_EQ(bed_.cserv(seg.hops[1].as).stats().auth_failures, 1u);
}

TEST(DistributedCservTest, RoutesBySegrConsistently) {
  DistributedEerService svc(4);
  const ResKey segr{AsId{1, 1}, 42};
  EerSubService& first = svc.route(segr);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(&svc.route(segr), &first);
  }
}

TEST(DistributedCservTest, AdmissionThroughSubServices) {
  DistributedEerService svc(4);
  reservation::ReservationDb db(AsId{1, 2}, 4);
  reservation::SegrRecord segr;
  segr.key = ResKey{AsId{1, 1}, 1};
  segr.seg_type = topology::SegType::kUp;
  segr.hops = {topology::Hop{AsId{1, 1}, 0, 1},
               topology::Hop{AsId{1, 2}, 1, 0}};
  segr.local_hop = 1;
  segr.active = reservation::SegrVersion{0, 1000, 10'000};
  const ResKey segr_key = segr.key;
  db.upsert_segr(std::move(segr));

  admission::EerAdmission::Request req;
  req.eer_key = ResKey{AsId{1, 1}, 100};
  req.demand_kbps = 600;
  req.segr_in = segr_key;
  ASSERT_EQ(svc.admit(db, segr_key, req, 0).value(), 600u);
  req.eer_key = ResKey{AsId{1, 1}, 101};
  EXPECT_EQ(svc.admit(db, segr_key, req, 0).value(), 400u);
  svc.release(db, segr_key, ResKey{AsId{1, 1}, 100});
  EXPECT_EQ(db.segr_copy(segr_key)->eer_allocated_kbps, 400u);
}

TEST(DistributedCservTest, LoadSpreadsAcrossSubServices) {
  DistributedEerService svc(8);
  std::set<const EerSubService*> used;
  for (ResId i = 1; i <= 64; ++i) {
    used.insert(&svc.route(ResKey{AsId{1, 1}, i}));
  }
  EXPECT_GE(used.size(), 4u);  // hash spreads over most sub-services
}

}  // namespace
}  // namespace colibri::cserv
