// Tests: CBWFQ / FIFO ports — weight enforcement, work conservation, and
// the isolation comparison against strict priority (App. B).
#include <gtest/gtest.h>

#include "colibri/sim/cbwfq.hpp"

namespace colibri::sim {
namespace {

SimPacket pkt_of(TrafficClass cls, std::uint32_t bytes = 1000) {
  SimPacket p;
  p.cls = cls;
  p.bytes = bytes;
  return p;
}

// Saturates a port with `offered` packets of each class and returns the
// per-class sent counts.
template <typename Port>
std::array<std::uint64_t, kNumClasses> saturate(Simulator& sim, Port& port,
                                                int offered_per_class,
                                                TimeNs run_ns) {
  // Interleave arrivals so no class gets a head start.
  for (int i = 0; i < offered_per_class; ++i) {
    for (int c = 0; c < kNumClasses; ++c) {
      // Stagger in time to keep queues within bounds but always backlogged.
      const TimeNs at = static_cast<TimeNs>(i) * 1000;
      sim.at(at, [&port, c] {
        port.enqueue(pkt_of(static_cast<TrafficClass>(c)));
      });
    }
  }
  sim.run_until(run_ns);
  return {port.counters(TrafficClass::kColibriData).sent_pkts,
          port.counters(TrafficClass::kColibriControl).sent_pkts,
          port.counters(TrafficClass::kBestEffort).sent_pkts};
}

TEST(CbwfqTest, EnforcesWeightsUnderSaturation) {
  Simulator sim;
  CbwfqPort port(sim, 8e9, CbwfqWeights{0.75, 0.05, 0.20},
                 /*queue_limit=*/1 << 22);
  const auto sent = saturate(sim, port, 20'000, 10'000'000);
  const double total = static_cast<double>(sent[0] + sent[1] + sent[2]);
  ASSERT_GT(total, 1000.0);
  EXPECT_NEAR(static_cast<double>(sent[0]) / total, 0.75, 0.05);
  EXPECT_NEAR(static_cast<double>(sent[1]) / total, 0.05, 0.03);
  EXPECT_NEAR(static_cast<double>(sent[2]) / total, 0.20, 0.05);
}

TEST(CbwfqTest, WorkConservingWhenClassesIdle) {
  // Only best effort offered: it gets the whole link despite a 20 % weight.
  Simulator sim;
  CbwfqPort port(sim, 8e9, CbwfqWeights{0.75, 0.05, 0.20});
  int delivered = 0;
  port.set_sink([&](SimPacket&&) { ++delivered; });
  for (int i = 0; i < 100; ++i) port.enqueue(pkt_of(TrafficClass::kBestEffort));
  sim.run();
  EXPECT_EQ(delivered, 100);
  // 100 x 1000 B at 8 Gbps = 100 µs: no weight-induced slowdown.
  EXPECT_LE(sim.now(), 110'000);
}

TEST(CbwfqTest, PerClassDropTail) {
  Simulator sim;
  CbwfqPort port(sim, 1e6, /*weights=*/{}, /*queue_limit=*/3000);
  for (int i = 0; i < 10; ++i) port.enqueue(pkt_of(TrafficClass::kBestEffort));
  EXPECT_GT(port.counters(TrafficClass::kBestEffort).dropped_pkts, 0u);
  // Other classes unaffected by BE drops.
  port.enqueue(pkt_of(TrafficClass::kColibriData));
  EXPECT_EQ(port.counters(TrafficClass::kColibriData).dropped_pkts, 0u);
}

TEST(FifoTest, NoClassIsolation) {
  // The baseline: BE flood starves Colibri data in a plain FIFO.
  Simulator sim;
  FifoPort port(sim, 8e6, /*queue_limit=*/10'000);  // slow link, tiny queue
  // Flood BE first.
  for (int i = 0; i < 50; ++i) port.enqueue(pkt_of(TrafficClass::kBestEffort));
  // Now Colibri data arrives — queue already full.
  for (int i = 0; i < 10; ++i) port.enqueue(pkt_of(TrafficClass::kColibriData));
  EXPECT_GT(port.counters(TrafficClass::kColibriData).dropped_pkts, 0u);
}

TEST(SchedulerComparisonTest, PriorityAndCbwfqProtectColibriFifoDoesNot) {
  // 2 Gbps of Colibri data + 20 Gbps of BE into a 10 Gbps port: both
  // Colibri-aware disciplines deliver all Colibri data; FIFO loses some.
  auto run = [](auto make_port) {
    Simulator sim;
    auto port = make_port(sim);
    for (int i = 0; i < 2000; ++i) {
      const TimeNs at = static_cast<TimeNs>(i) * 4000;  // 2 Gbps
      sim.at(at, [&port] { port->enqueue(pkt_of(TrafficClass::kColibriData)); });
      for (int j = 0; j < 10; ++j) {  // 20 Gbps BE
        sim.at(at + j * 400,
               [&port] { port->enqueue(pkt_of(TrafficClass::kBestEffort)); });
      }
    }
    sim.run_until(20'000'000);
    const auto& c = port->counters(TrafficClass::kColibriData);
    return static_cast<double>(c.sent_pkts) /
           static_cast<double>(c.enqueued_pkts + c.dropped_pkts);
  };

  const double prio = run([](Simulator& sim) {
    return std::make_unique<PriorityPort>(sim, 10e9, 200'000);
  });
  const double cbwfq = run([](Simulator& sim) {
    return std::make_unique<CbwfqPort>(sim, 10e9, CbwfqWeights{},
                                       200'000);
  });
  const double fifo = run([](Simulator& sim) {
    return std::make_unique<FifoPort>(sim, 10e9, 200'000);
  });

  EXPECT_GT(prio, 0.99);
  EXPECT_GT(cbwfq, 0.95);
  EXPECT_LT(fifo, 0.9);  // suffers from BE sharing one queue
}

}  // namespace
}  // namespace colibri::sim
