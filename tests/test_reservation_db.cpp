// Tests: sharded ReservationDb — stable shard routing, scoped access,
// pair locking, atomic id allocation, snapshots, two-phase sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "colibri/reservation/db.hpp"

namespace colibri::reservation {
namespace {

const AsId kOwner{1, 10};

SegrRecord make_segr(ResId id, BwKbps bw = 10'000, UnixSec exp = 1'000) {
  SegrRecord rec;
  rec.key = ResKey{kOwner, id};
  rec.seg_type = topology::SegType::kUp;
  rec.hops = {topology::Hop{kOwner, kNoInterface, kNoInterface}};
  rec.local_hop = 0;
  rec.active = SegrVersion{0, bw, exp};
  return rec;
}

EerRecord make_eer(ResId id, UnixSec exp = 1'000) {
  EerRecord rec;
  rec.key = ResKey{kOwner, id};
  rec.src_host = HostAddr::from_u64(1);
  rec.dst_host = HostAddr::from_u64(2);
  rec.path = {topology::Hop{kOwner, kNoInterface, kNoInterface}};
  rec.local_hop = 0;
  rec.versions = {EerVersion{0, 100, exp}};
  return rec;
}

TEST(ReservationDbShardingTest, RoutingIsStableAndInRange) {
  for (size_t shards : {1u, 2u, 8u, 13u}) {
    for (ResId id = 1; id < 200; ++id) {
      const size_t s = ReservationDb::shard_of(id, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, ReservationDb::shard_of(id, shards));  // deterministic
    }
  }
}

TEST(ReservationDbShardingTest, SpreadsIdsAcrossShards) {
  constexpr size_t kShards = 8;
  std::vector<size_t> per_shard(kShards, 0);
  for (ResId id = 1; id <= 8'000; ++id) {
    ++per_shard[ReservationDb::shard_of(id, kShards)];
  }
  // splitmix64 over sequential ids must not collapse onto few shards.
  for (size_t n : per_shard) {
    EXPECT_GT(n, 8'000 / kShards / 2);
    EXPECT_LT(n, 8'000 / kShards * 2);
  }
}

TEST(ReservationDbShardingTest, ZeroShardCountClampsToOne) {
  ReservationDb db(kOwner, 0);
  EXPECT_EQ(db.num_shards(), 1u);
  db.upsert_segr(make_segr(1));
  EXPECT_TRUE(db.contains_segr(ResKey{kOwner, 1}));
}

TEST(ReservationDbTest, WithSegrSeesStoredRecordAndAbsence) {
  ReservationDb db(kOwner, 4);
  db.upsert_segr(make_segr(5, 7'777));
  const BwKbps bw = db.with_segr(ResKey{kOwner, 5}, [](SegrRecord* rec) {
    return rec == nullptr ? 0u : rec->active.bw_kbps;
  });
  EXPECT_EQ(bw, 7'777u);
  const bool absent = db.with_segr(ResKey{kOwner, 6}, [](SegrRecord* rec) {
    return rec == nullptr;
  });
  EXPECT_TRUE(absent);
}

TEST(ReservationDbTest, WithSegrMutatesInPlace) {
  ReservationDb db(kOwner, 4);
  db.upsert_segr(make_segr(5));
  db.with_segr(ResKey{kOwner, 5}, [](SegrRecord* rec) {
    ASSERT_NE(rec, nullptr);
    rec->eer_allocated_kbps = 42;
  });
  EXPECT_EQ(db.segr_copy(ResKey{kOwner, 5})->eer_allocated_kbps, 42u);
}

TEST(ReservationDbTest, WithSegrPairLocksBothOrEither) {
  ReservationDb db(kOwner, 8);
  // Find two ids landing on different shards and two on the same shard.
  ResId a = 1, b = 2;
  while (db.shard_of(b) == db.shard_of(a)) ++b;
  ResId c = b + 1;
  while (db.shard_of(c) != db.shard_of(a)) ++c;
  db.upsert_segr(make_segr(a));
  db.upsert_segr(make_segr(b));
  db.upsert_segr(make_segr(c));

  // Distinct shards.
  db.with_segr_pair(ResKey{kOwner, a}, ResKey{kOwner, b},
                    [](SegrRecord* ra, SegrRecord* rb) {
                      ASSERT_NE(ra, nullptr);
                      ASSERT_NE(rb, nullptr);
                      ra->eer_allocated_kbps = 1;
                      rb->eer_allocated_kbps = 2;
                    });
  // Same shard (must not deadlock on a double lock).
  db.with_segr_pair(ResKey{kOwner, a}, ResKey{kOwner, c},
                    [](SegrRecord* ra, SegrRecord* rc) {
                      ASSERT_NE(ra, nullptr);
                      ASSERT_NE(rc, nullptr);
                    });
  // No second key.
  db.with_segr_pair(ResKey{kOwner, a}, std::nullopt,
                    [](SegrRecord* ra, SegrRecord* rb) {
                      ASSERT_NE(ra, nullptr);
                      EXPECT_EQ(rb, nullptr);
                    });
  EXPECT_EQ(db.segr_copy(ResKey{kOwner, a})->eer_allocated_kbps, 1u);
  EXPECT_EQ(db.segr_copy(ResKey{kOwner, b})->eer_allocated_kbps, 2u);
}

TEST(ReservationDbTest, CountsAndSnapshotsSpanAllShards) {
  ReservationDb db(kOwner, 8);
  for (ResId id = 1; id <= 100; ++id) db.upsert_segr(make_segr(id));
  for (ResId id = 200; id < 250; ++id) db.upsert_eer(make_eer(id));
  EXPECT_EQ(db.segr_count(), 100u);
  EXPECT_EQ(db.eer_count(), 50u);

  std::set<ResId> seen;
  for (const auto& rec : db.segr_snapshot()) seen.insert(rec.key.res_id);
  EXPECT_EQ(seen.size(), 100u);
  size_t eers = 0;
  db.for_each_eer([&](const EerRecord&) { ++eers; });
  EXPECT_EQ(eers, 50u);
}

TEST(ReservationDbTest, EerKeysOfShardAreOrderedAndPartition) {
  ReservationDb db(kOwner, 8);
  for (ResId id = 1; id <= 500; ++id) db.upsert_eer(make_eer(id));
  std::set<ResId> all;
  for (size_t s = 0; s < db.num_shards(); ++s) {
    const auto keys = db.eer_keys_of_shard(s);
    for (const ResKey& k : keys) {
      EXPECT_EQ(db.shard_of(k.res_id), s);
      EXPECT_TRUE(all.insert(k.res_id).second);  // partition: no overlap
    }
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end(),
                               [](const ResKey& x, const ResKey& y) {
                                 return x.res_id < y.res_id;
                               }));
  }
  EXPECT_EQ(all.size(), 500u);  // partition: complete
}

TEST(ReservationDbTest, TwoPhaseSweepRunsCallbacksOnCopies) {
  ReservationDb db(kOwner, 4);
  for (ResId id = 1; id <= 20; ++id) db.upsert_segr(make_segr(id, 10'000, 100));
  db.upsert_segr(make_segr(21, 10'000, 9'999));  // survives

  std::vector<ResKey> removed;
  const size_t n = db.sweep_segrs(500, [&](const SegrRecord& rec) {
    removed.push_back(rec.key);
    // Callback may re-enter the db: the lock is already dropped.
    EXPECT_FALSE(db.contains_segr(rec.key));
  });
  EXPECT_EQ(n, 20u);
  EXPECT_EQ(removed.size(), 20u);
  EXPECT_EQ(db.segr_count(), 1u);
}

TEST(ReservationDbTest, SweepEersDropsExpiredVersionsOnly) {
  ReservationDb db(kOwner, 4);
  db.upsert_eer(make_eer(1, 100));
  auto live = make_eer(2, 100);
  live.versions.push_back(EerVersion{1, 100, 900});  // renewed
  db.upsert_eer(std::move(live));

  size_t removed = 0;
  db.sweep_eers(500, [&](const EerRecord&) { ++removed; });
  EXPECT_EQ(removed, 1u);
  EXPECT_FALSE(db.contains_eer(ResKey{kOwner, 1}));
  EXPECT_TRUE(db.contains_eer(ResKey{kOwner, 2}));
}

TEST(ReservationDbTest, NextResIdIsUniqueAcrossThreads) {
  ReservationDb db(kOwner, 8);
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 20'000;
  std::vector<std::vector<ResId>> minted(kThreads);
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&db, &minted, t] {
      minted[t].reserve(kPerThread);
      for (size_t i = 0; i < kPerThread; ++i) {
        minted[t].push_back(db.next_res_id());
      }
    });
  }
  for (auto& w : workers) w.join();

  std::set<ResId> unique;
  for (const auto& ids : minted) {
    for (ResId id : ids) {
      EXPECT_GT(id, 0u);
      EXPECT_TRUE(unique.insert(id).second) << "duplicate id " << id;
    }
  }
  EXPECT_EQ(unique.size(), kThreads * kPerThread);
  EXPECT_EQ(db.last_res_id(), kThreads * kPerThread);
}

TEST(ReservationDbTest, ReserveIdsThroughNeverLowersTheFloor) {
  ReservationDb db(kOwner);
  db.reserve_ids_through(100);
  EXPECT_EQ(db.next_res_id(), 101u);
  db.reserve_ids_through(50);  // lower floor: no-op
  EXPECT_EQ(db.next_res_id(), 102u);
}

}  // namespace
}  // namespace colibri::reservation
