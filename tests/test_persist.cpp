// Tests: reservation WAL — record codecs, replay, torn-tail recovery,
// corruption handling, checkpoint compaction, file storage.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <vector>

#include "colibri/common/rand.hpp"
#include "colibri/reservation/persist.hpp"
#include "seed_util.hpp"

namespace colibri::reservation {
namespace {

SegrRecord sample_segr(ResId id) {
  SegrRecord rec;
  rec.key = ResKey{AsId{1, 10}, id};
  rec.seg_type = topology::SegType::kCore;
  rec.hops = {topology::Hop{AsId{1, 10}, kNoInterface, 1},
              topology::Hop{AsId{1, 20}, 2, kNoInterface}};
  rec.local_hop = 1;
  rec.active = SegrVersion{2, 5000, 600};
  rec.pending = SegrVersion{3, 7000, 900};
  rec.eer_allocated_kbps = 1234;
  return rec;
}

EerRecord sample_eer(ResId id) {
  EerRecord rec;
  rec.key = ResKey{AsId{1, 10}, id};
  rec.src_host = HostAddr::from_u64(11);
  rec.dst_host = HostAddr::from_u64(22);
  rec.path = {topology::Hop{AsId{1, 10}, 0, 1}, topology::Hop{AsId{1, 20}, 2, 0}};
  rec.local_hop = 0;
  rec.segrs = {ResKey{AsId{1, 10}, 900}, ResKey{AsId{1, 20}, 901}};
  rec.versions = {EerVersion{0, 100, 50}, EerVersion{1, 150, 66}};
  return rec;
}

TEST(Crc32Test, KnownVector) {
  const Bytes msg = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(msg), 0xCBF43926u);  // the canonical CRC-32 check value
}

TEST(RecordCodecTest, SegrRoundTrip) {
  const SegrRecord rec = sample_segr(7);
  auto decoded = decode_segr_record(encode_segr_record(rec));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->key, rec.key);
  EXPECT_EQ(decoded->seg_type, rec.seg_type);
  EXPECT_EQ(decoded->hops, rec.hops);
  EXPECT_EQ(decoded->local_hop, rec.local_hop);
  EXPECT_EQ(decoded->active.bw_kbps, rec.active.bw_kbps);
  ASSERT_TRUE(decoded->pending.has_value());
  EXPECT_EQ(decoded->pending->version, 3);
  EXPECT_EQ(decoded->eer_allocated_kbps, 1234u);
}

TEST(RecordCodecTest, EerRoundTrip) {
  const EerRecord rec = sample_eer(9);
  auto decoded = decode_eer_record(encode_eer_record(rec));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->key, rec.key);
  EXPECT_EQ(decoded->src_host, rec.src_host);
  EXPECT_EQ(decoded->segrs, rec.segrs);
  ASSERT_EQ(decoded->versions.size(), 2u);
  EXPECT_EQ(decoded->versions[1].bw_kbps, 150u);
}

TEST(RecordCodecTest, RejectsTruncated) {
  const Bytes full = encode_segr_record(sample_segr(1));
  for (size_t cut = 0; cut + 1 < full.size(); cut += 7) {
    EXPECT_FALSE(
        decode_segr_record(BytesView(full.data(), cut)).has_value())
        << cut;
  }
}

TEST(WalTest, ReplayRestoresDb) {
  MemoryStorage storage;
  ReservationWal wal(storage);
  wal.log_segr_upsert(sample_segr(1));
  wal.log_segr_upsert(sample_segr(2));
  wal.log_eer_upsert(sample_eer(3));
  wal.log_segr_erase(ResKey{AsId{1, 10}, 2});

  ReservationDb db(AsId{1, 20});
  EXPECT_EQ(wal.recover(db), 4u);
  EXPECT_TRUE(db.contains_segr(ResKey{AsId{1, 10}, 1}));
  EXPECT_FALSE(db.contains_segr(ResKey{AsId{1, 10}, 2}));  // erased
  EXPECT_TRUE(db.contains_eer(ResKey{AsId{1, 10}, 3}));
}

TEST(WalTest, ReplayRestoresResIdAllocatorFloor) {
  MemoryStorage storage;
  ReservationWal wal(storage);
  wal.log_segr_upsert(sample_segr(17));
  wal.log_eer_upsert(sample_eer(523));
  // Foreign-AS record: its id must NOT advance this owner's allocator.
  EerRecord foreign = sample_eer(9000);
  foreign.key.src_as = AsId{2, 77};
  wal.log_eer_upsert(foreign);

  // The recovering db is owned by the AS that minted ids 17 and 523.
  ReservationDb db(AsId{1, 10});
  EXPECT_EQ(wal.recover(db), 3u);
  EXPECT_EQ(db.last_res_id(), 523u);
  EXPECT_EQ(db.next_res_id(), 524u);  // never re-mints a live id
}

TEST(WalTest, TornTailIsDiscarded) {
  MemoryStorage storage;
  ReservationWal wal(storage);
  wal.log_segr_upsert(sample_segr(1));
  const size_t complete = storage.raw().size();
  wal.log_segr_upsert(sample_segr(2));
  // Crash mid-write: drop half of the second record.
  storage.raw().resize(complete + (storage.raw().size() - complete) / 2);

  ReservationDb db(AsId{1, 20});
  EXPECT_EQ(wal.recover(db), 1u);
  EXPECT_TRUE(db.contains_segr(ResKey{AsId{1, 10}, 1}));
  EXPECT_FALSE(db.contains_segr(ResKey{AsId{1, 10}, 2}));
}

TEST(WalTest, CorruptRecordStopsReplay) {
  MemoryStorage storage;
  ReservationWal wal(storage);
  wal.log_segr_upsert(sample_segr(1));
  const size_t first_end = storage.raw().size();
  wal.log_segr_upsert(sample_segr(2));
  wal.log_segr_upsert(sample_segr(3));
  // Flip a payload byte of record 2: its CRC no longer matches; replay
  // must stop there and keep only record 1 (no torn state applied).
  storage.raw()[first_end + 10] ^= 0xFF;

  ReservationDb db(AsId{1, 20});
  EXPECT_EQ(wal.recover(db), 1u);
  EXPECT_EQ(db.segr_count(), 1u);
}

TEST(WalTest, CheckpointCompacts) {
  MemoryStorage storage;
  ReservationWal wal(storage);
  // Lots of churn.
  for (ResId i = 1; i <= 50; ++i) wal.log_segr_upsert(sample_segr(i));
  for (ResId i = 2; i <= 50; ++i) wal.log_segr_erase(ResKey{AsId{1, 10}, i});
  const size_t churned = storage.raw().size();

  ReservationDb db(AsId{1, 20});
  wal.recover(db);
  ASSERT_EQ(db.segr_count(), 1u);

  wal.checkpoint(db);
  EXPECT_LT(storage.raw().size(), churned / 10);

  ReservationDb fresh(AsId{1, 20});
  EXPECT_EQ(wal.recover(fresh), 1u);
  EXPECT_TRUE(fresh.contains_segr(ResKey{AsId{1, 10}, 1}));
}

TEST(WalTest, FileStorageRoundTrip) {
  const std::string path = "/tmp/colibri_wal_test.log";
  std::remove(path.c_str());
  {
    FileStorage storage(path);
    storage.truncate();
    ReservationWal wal(storage);
    wal.log_segr_upsert(sample_segr(1));
    wal.log_eer_upsert(sample_eer(2));
  }
  {
    FileStorage storage(path);
    ReservationWal wal(storage);
    ReservationDb db(AsId{1, 20});
    EXPECT_EQ(wal.recover(db), 2u);
    EXPECT_EQ(db.segr_count(), 1u);
    EXPECT_EQ(db.eer_count(), 1u);
  }
  std::remove(path.c_str());
}

TEST(WalTest, EmptyLogRecoversNothing) {
  MemoryStorage storage;
  ReservationWal wal(storage);
  ReservationDb db(AsId{1, 20});
  EXPECT_EQ(wal.recover(db), 0u);
  EXPECT_EQ(db.segr_count(), 0u);
}

// --- randomized recovery properties (see docs/TESTING.md) ---------------
//
// Build a log of n records, remember where each complete frame ends,
// then corrupt the raw bytes at a seeded-random spot. Whatever the
// damage, recovery must (a) never crash and (b) replay exactly the
// longest prefix of records untouched by it — the CRC (which spans the
// whole frame, length byte included) rejects the first damaged record
// and replay stops there.
namespace {

struct BuiltLog {
  std::vector<size_t> record_ends;  // raw offset after each append
  size_t appended = 0;
};

BuiltLog build_log(ReservationWal& wal, MemoryStorage& storage, Rng& rng) {
  BuiltLog built;
  const size_t n = 3 + rng.below(12);
  for (size_t i = 0; i < n; ++i) {
    const ResId id = static_cast<ResId>(i + 1);
    if (rng.below(3) == 0) {
      wal.log_eer_upsert(sample_eer(id));
    } else {
      wal.log_segr_upsert(sample_segr(id));
    }
    built.record_ends.push_back(storage.raw().size());
  }
  built.appended = n;
  return built;
}

size_t records_before(const BuiltLog& built, size_t damage_offset) {
  size_t intact = 0;
  for (const size_t end : built.record_ends) {
    if (end <= damage_offset) ++intact;
  }
  return intact;
}

}  // namespace

TEST(WalPropertyTest, RandomTruncationsReplayLongestCompletePrefix) {
  const std::uint64_t seed = colibri::testing::test_seed(0x7EA27A11ULL);
  COLIBRI_SEED_TRACE(seed);
  Rng rng(seed);
  for (int iter = 0; iter < 60; ++iter) {
    MemoryStorage storage;
    ReservationWal wal(storage);
    const BuiltLog built = build_log(wal, storage, rng);
    // Tear anywhere, from "everything lost" to "nothing lost".
    const size_t cut = rng.below(storage.raw().size() + 1);
    storage.raw().resize(cut);

    ReservationDb db(AsId{1, 20});
    const size_t applied = wal.recover(db);
    EXPECT_EQ(applied, records_before(built, cut))
        << "iter " << iter << " cut at " << cut;
    EXPECT_EQ(db.segr_count() + db.eer_count(), applied);
  }
}

TEST(WalPropertyTest, RandomBitFlipsStopReplayAtTheDamagedRecord) {
  const std::uint64_t seed = colibri::testing::test_seed(0xB17F11BULL);
  COLIBRI_SEED_TRACE(seed);
  Rng rng(seed);
  for (int iter = 0; iter < 60; ++iter) {
    MemoryStorage storage;
    ReservationWal wal(storage);
    const BuiltLog built = build_log(wal, storage, rng);
    const size_t bit = rng.below(storage.raw().size() * 8);
    storage.raw()[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));

    ReservationDb db(AsId{1, 20});
    const size_t applied = wal.recover(db);
    // Every record strictly before the flipped byte replays; the CRC
    // rejects the damaged one and recovery stops there.
    EXPECT_EQ(applied, records_before(built, bit / 8))
        << "iter " << iter << " flipped bit " << bit;
  }
}

TEST(WalPropertyTest, RandomTearPlusTrailingGarbageNeverCrashes) {
  const std::uint64_t seed = colibri::testing::test_seed(0x6A2BA6EULL);
  COLIBRI_SEED_TRACE(seed);
  Rng rng(seed);
  for (int iter = 0; iter < 40; ++iter) {
    MemoryStorage storage;
    ReservationWal wal(storage);
    const BuiltLog built = build_log(wal, storage, rng);
    const size_t cut = rng.below(storage.raw().size() + 1);
    storage.raw().resize(cut);
    // A crashed writer can leave arbitrary junk after the tear.
    const size_t junk = rng.below(32);
    for (size_t i = 0; i < junk; ++i) {
      storage.raw().push_back(static_cast<std::uint8_t>(rng.below(256)));
    }

    ReservationDb db(AsId{1, 20});
    const size_t applied = wal.recover(db);
    // The junk can only ever hide records, never invent them.
    EXPECT_GE(applied, records_before(built, cut)) << "iter " << iter;
    EXPECT_LE(applied, built.appended) << "iter " << iter;
  }
}

}  // namespace
}  // namespace colibri::reservation
