// Seed hygiene for randomized tests (see docs/TESTING.md).
//
// Every randomized test derives its seed through test_seed(): the
// checked-in fallback keeps CI deterministic, while the
// COLIBRI_TEST_SEED environment variable overrides it to replay (or
// explore) a specific run. Always announce the seed with
// COLIBRI_SEED_TRACE right after deriving it — a failing randomized
// test must print the exact seed needed to reproduce it.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

namespace colibri::testing {

inline std::uint64_t test_seed(std::uint64_t fallback) {
  if (const char* env = std::getenv("COLIBRI_TEST_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return fallback;
}

}  // namespace colibri::testing

// Attaches "COLIBRI_TEST_SEED=<seed>" to every assertion failure in the
// enclosing scope, so the log of a red randomized test is self-replaying.
#define COLIBRI_SEED_TRACE(seed) \
  SCOPED_TRACE("COLIBRI_TEST_SEED=" + std::to_string(seed))
