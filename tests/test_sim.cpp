// Unit tests: event loop, priority port, links, traffic sources, and the
// Table 2 protection scenario (shape-level assertions; the full-rate runs
// live in bench_table2_protection).
#include <gtest/gtest.h>

#include "colibri/sim/scenario.hpp"

namespace colibri::sim {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(30, [&] { order.push_back(3); });
  sim.at(10, [&] { order.push_back(1); });
  sim.at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.executed(), 3u);
}

TEST(SimulatorTest, EqualTimesRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(10, [&] { order.push_back(1); });
  sim.at(10, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int ran = 0;
  sim.at(10, [&] { ++ran; });
  sim.at(100, [&] { ++ran; });
  sim.run_until(50);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.after(10, recurse);
  };
  sim.at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(SimulatorTest, PastEventsClampToNow) {
  Simulator sim;
  sim.at(100, [] {});
  sim.run();
  TimeNs seen = -1;
  sim.at(5, [&] { seen = sim.now(); });  // in the past
  sim.run();
  EXPECT_EQ(seen, 100);
}

TEST(PriorityPortTest, TransmitsAtLineRate) {
  Simulator sim;
  PriorityPort port(sim, 8e9);  // 8 Gbps: 1000 B = 1 µs
  int delivered = 0;
  port.set_sink([&](SimPacket&&) { ++delivered; });
  for (int i = 0; i < 10; ++i) {
    SimPacket p;
    p.cls = TrafficClass::kBestEffort;
    p.bytes = 1000;
    port.enqueue(std::move(p));
  }
  sim.run();
  EXPECT_EQ(delivered, 10);
  EXPECT_EQ(sim.now(), 10'000);  // 10 packets x 1 µs
}

TEST(PriorityPortTest, StrictPriorityOrdering) {
  Simulator sim;
  PriorityPort port(sim, 8e9);
  std::vector<TrafficClass> order;
  port.set_sink([&](SimPacket&& p) { order.push_back(p.cls); });
  // Enqueue BE first, then Colibri data; data must transmit before the
  // queued BE packets (after the one already in flight).
  for (int i = 0; i < 3; ++i) {
    SimPacket p;
    p.cls = TrafficClass::kBestEffort;
    p.bytes = 1000;
    port.enqueue(std::move(p));
  }
  for (int i = 0; i < 3; ++i) {
    SimPacket p;
    p.cls = TrafficClass::kColibriData;
    p.bytes = 1000;
    port.enqueue(std::move(p));
  }
  sim.run();
  ASSERT_EQ(order.size(), 6u);
  // First packet was already committed (BE); all Colibri data precedes
  // the remaining BE.
  EXPECT_EQ(order[0], TrafficClass::kBestEffort);
  EXPECT_EQ(order[1], TrafficClass::kColibriData);
  EXPECT_EQ(order[2], TrafficClass::kColibriData);
  EXPECT_EQ(order[3], TrafficClass::kColibriData);
}

TEST(PriorityPortTest, DropTailOnFullQueue) {
  Simulator sim;
  PriorityPort port(sim, 1e6, /*queue_limit_bytes=*/2000);
  port.set_sink([](SimPacket&&) {});
  for (int i = 0; i < 10; ++i) {
    SimPacket p;
    p.cls = TrafficClass::kBestEffort;
    p.bytes = 1000;
    port.enqueue(std::move(p));
  }
  const auto& ctr = port.counters(TrafficClass::kBestEffort);
  EXPECT_GT(ctr.dropped_pkts, 0u);
  EXPECT_LE(ctr.enqueued_pkts, 4u);  // 1 in flight + 2000 B of queue
  EXPECT_EQ(ctr.enqueued_pkts + ctr.dropped_pkts, 10u);
}

TEST(SimLinkTest, AddsPropagationDelay) {
  Simulator sim;
  SimLink link(sim, 8e9, /*propagation_ns=*/5000);
  TimeNs arrival = -1;
  link.set_sink([&](SimPacket&&) { arrival = sim.now(); });
  SimPacket p;
  p.bytes = 1000;  // 1 µs serialization at 8 Gbps
  link.send(std::move(p));
  sim.run();
  EXPECT_EQ(arrival, 1000 + 5000);
}

TEST(CbrSourceTest, EmitsAtConfiguredRate) {
  Simulator sim;
  int count = 0;
  CbrSource src(
      sim, [&](SimPacket&&) { ++count; }, TrafficClass::kBestEffort,
      /*rate=*/8e6, /*pkt_bytes=*/1000, 1);
  // 8 Mbps at 1000 B -> 1000 pkts/s -> 100 packets in 0.1 s.
  src.start(0, 100'000'000);
  sim.run();
  EXPECT_NEAR(count, 100, 2);
}

TEST(ScenarioTest, Phase1ReservationsAndBestEffortShareLink) {
  ScenarioConfig cfg;
  cfg.duration_ns = 50'000'000;  // short run for unit testing
  cfg.warmup_ns = 10'000'000;
  ProtectionScenario scenario(cfg);
  const auto phases = table2_phases();
  const PhaseResult r = scenario.run_phase(phases[0]);
  ASSERT_EQ(r.flows.size(), 4u);
  // Reservations get their guaranteed bandwidth (±10 %).
  EXPECT_NEAR(r.flows[0].delivered_gbps, 0.4, 0.05);
  EXPECT_NEAR(r.flows[1].delivered_gbps, 0.8, 0.08);
  // Best effort fills the rest of the 40 G link but no more.
  const double be = r.flows[2].delivered_gbps + r.flows[3].delivered_gbps;
  EXPECT_GT(be, 30.0);
  EXPECT_LT(be, 40.0);
  EXPECT_EQ(r.router_bad_hvf, 0u);
}

TEST(ScenarioTest, Phase2UnauthenticTrafficFiltered) {
  ScenarioConfig cfg;
  cfg.duration_ns = 50'000'000;
  cfg.warmup_ns = 10'000'000;
  ProtectionScenario scenario(cfg);
  const PhaseResult r = scenario.run_phase(table2_phases()[1]);
  // The unauthentic flood (flow 5) is dropped entirely at the router.
  EXPECT_NEAR(r.flows[4].delivered_gbps, 0.0, 1e-6);
  EXPECT_GT(r.router_bad_hvf, 0u);
  // Reservations unaffected.
  EXPECT_NEAR(r.flows[0].delivered_gbps, 0.4, 0.05);
  EXPECT_NEAR(r.flows[1].delivered_gbps, 0.8, 0.08);
}

TEST(ScenarioTest, Phase3OveruseLimitedToReservation) {
  ScenarioConfig cfg;
  cfg.duration_ns = 50'000'000;
  cfg.warmup_ns = 10'000'000;
  ProtectionScenario scenario(cfg);
  const PhaseResult r = scenario.run_phase(table2_phases()[2]);
  // 40 Gbps offered over a 0.4 Gbps reservation: limited to ~0.4.
  EXPECT_LT(r.flows[0].delivered_gbps, 1.0);
  EXPECT_GT(r.router_overuse_dropped, 0u);
  // The honest reservation 2 is unaffected by its neighbor's overuse.
  EXPECT_NEAR(r.flows[1].delivered_gbps, 0.8, 0.08);
}

}  // namespace
}  // namespace colibri::sim
