// Stress tests: sharded control plane under concurrency. Built to run in
// the CI race lane (TSan) — the assertions are deliberately about
// invariants that hold under any interleaving, and the value of the suite
// is the interleavings themselves.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "colibri/admission/eer_admission.hpp"
#include "colibri/app/renewal_storm.hpp"
#include "colibri/reservation/db.hpp"

namespace colibri {
namespace {

const AsId kOwner{1, 10};

reservation::SegrRecord make_segr(ResId id, BwKbps bw) {
  reservation::SegrRecord rec;
  rec.key = ResKey{kOwner, id};
  rec.seg_type = topology::SegType::kUp;
  rec.hops = {topology::Hop{kOwner, kNoInterface, kNoInterface}};
  rec.local_hop = 0;
  rec.active = reservation::SegrVersion{0, bw, 1 << 30};
  return rec;
}

TEST(ControlPlaneStressTest, ConcurrentAdmitReleaseKeepsLedgerConsistent) {
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 1'000;
  constexpr BwKbps kDemand = 100;

  reservation::ReservationDb db(kOwner, 8);
  admission::EerAdmission adm(8);
  std::vector<ResKey> segr_keys;
  for (ResId id = 1; id <= 16; ++id) {
    // Ample capacity: every admit must succeed.
    db.upsert_segr(make_segr(id, kThreads * kPerThread * kDemand));
    segr_keys.push_back(ResKey{kOwner, id});
  }

  std::atomic<size_t> live{0};
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        admission::EerAdmission::Request req;
        req.eer_key = ResKey{kOwner, db.next_res_id()};
        req.demand_kbps = kDemand;
        req.segr_in = segr_keys[(t * kPerThread + i) % segr_keys.size()];
        auto granted = adm.admit(db, req, 0);
        ASSERT_TRUE(granted.ok());
        // Half the admissions release immediately (churn).
        if (i % 2 == 0) {
          adm.release(db, req.eer_key);
        } else {
          live.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(adm.tracked(), live.load());
  BwKbps allocated = 0;
  db.for_each_segr([&](const reservation::SegrRecord& rec) {
    allocated += rec.eer_allocated_kbps;
  });
  EXPECT_EQ(allocated, live.load() * kDemand);
}

TEST(ControlPlaneStressTest, SnapshotReadersRaceWriters) {
  reservation::ReservationDb db(kOwner, 8);
  constexpr size_t kRecords = 4'000;
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    for (ResId id = 1; id <= kRecords; ++id) {
      db.upsert_segr(make_segr(id, 1'000));
      db.with_segr(ResKey{kOwner, id}, [](reservation::SegrRecord* rec) {
        if (rec != nullptr) rec->eer_allocated_kbps = 7;
      });
    }
    stop.store(true);
  });

  size_t max_seen = 0;
  std::vector<std::thread> readers;
  std::mutex max_mu;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const auto snap = db.segr_snapshot();
        size_t keyed = 0;
        for (size_t s = 0; s < db.num_shards(); ++s) {
          keyed += db.eer_keys_of_shard(s).size();
        }
        EXPECT_EQ(keyed, 0u);  // no EERs in this test
        std::lock_guard lock(max_mu);
        max_seen = std::max(max_seen, snap.size());
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(db.segr_count(), kRecords);
  EXPECT_LE(max_seen, kRecords);
}

TEST(ControlPlaneStressTest, SweepRacesBatchedRenewalDrain) {
  app::RenewalStormConfig cfg;
  cfg.num_eers = 4'000;
  cfg.num_segrs = 16;
  cfg.shards = 8;
  cfg.threads = 2;
  app::RenewalStorm storm(cfg);
  storm.populate();

  // The drain renews at the storm instant while a sweeper concurrently
  // expires whatever has not been renewed yet — the mid-storm race the
  // two-phase sweep is built for.
  const UnixSec now = storm.storm_expiry();
  std::atomic<size_t> swept{0};
  app::RenewalStormStats st;
  std::thread sweeper([&] {
    swept = storm.db().sweep_eers(
        now + 1, [&](const reservation::EerRecord& rec) {
          storm.admission().release(storm.db(), rec.key);
        });
  });
  std::thread drainer([&] { st = storm.drain_batched(now); });
  sweeper.join();
  drainer.join();

  // Every EER was either renewed or swept; EERs the sweep removed before
  // the drain read its shard's key list are counted by neither renewed
  // nor failed, so the counters bound the fleet rather than tile it.
  EXPECT_GE(st.renewed + swept.load(), cfg.num_eers);
  EXPECT_LE(st.renewed + st.failed, cfg.num_eers);
  EXPECT_LE(storm.db().eer_count(), st.renewed);
  // Whatever survived carries a version that outlives the storm.
  storm.db().for_each_eer([&](const reservation::EerRecord& rec) {
    EXPECT_FALSE(rec.expired(now + 1));
  });
}

TEST(ControlPlaneStressTest, ParallelDrainWorkersSplitTheShards) {
  app::RenewalStormConfig cfg;
  cfg.num_eers = 8'000;
  cfg.num_segrs = 16;
  cfg.shards = 8;
  cfg.threads = 4;
  app::RenewalStorm storm(cfg);
  storm.populate();

  const auto st = storm.drain_batched(storm.storm_expiry());
  EXPECT_EQ(st.renewed, cfg.num_eers);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(st.batches, cfg.shards);
  EXPECT_EQ(storm.db().eer_count(), cfg.num_eers);
}

TEST(ControlPlaneStressTest, ConcurrentIdAllocationNeverCollides) {
  reservation::ReservationDb db(kOwner, 8);
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 5'000;
  std::vector<std::vector<ResId>> minted(kThreads);
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&db, &minted, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        minted[t].push_back(db.next_res_id());
      }
    });
  }
  for (auto& w : workers) w.join();
  std::vector<ResId> all;
  for (auto& ids : minted) all.insert(all.end(), ids.begin(), ids.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  EXPECT_EQ(all.size(), kThreads * kPerThread);
}

}  // namespace
}  // namespace colibri
