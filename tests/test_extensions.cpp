// Tests for the §3.2/§3.3 extension features: explicit down-SegR requests
// and demand forecasting for SegR renewals.
#include <gtest/gtest.h>

#include "colibri/app/testbed.hpp"
#include "colibri/cserv/forecast.hpp"

namespace colibri::cserv {
namespace {

class DownSegrTest : public ::testing::Test {
 protected:
  DownSegrTest()
      : clock_(1000 * kNsPerSec),
        bed_(topology::builders::two_isd_topology(), clock_) {}

  topology::PathSegment down_segment_to(AsId dst) {
    auto downs = bed_.pathdb().down_segments_to(dst);
    EXPECT_FALSE(downs.empty());
    return *downs.front();
  }

  SimClock clock_;
  app::Testbed bed_;
};

TEST_F(DownSegrTest, LastAsTriggersSetupAtCore) {
  const AsId eyeball{1, 120};
  const auto seg = down_segment_to(eyeball);
  const AsId core = seg.first_as();

  auto r = bed_.cserv(eyeball).request_down_segr(seg, 1000, 5'000'000);
  ASSERT_TRUE(r.ok()) << errc_name(r.error());
  EXPECT_EQ(r.value().key.src_as, core);
  EXPECT_GE(r.value().bw_kbps, 1000u);

  // The core AS holds the reservation; every on-path AS stored it.
  for (const auto& hop : seg.hops) {
    EXPECT_TRUE(bed_.cserv(hop.as).db().contains_segr(r.value().key))
        << hop.as.to_string();
  }
  // It is published at the core, whitelisted for the requester.
  auto advert = bed_.cserv(core).registry().find(r.value().key);
  ASSERT_TRUE(advert.has_value());
  EXPECT_TRUE(advert->usable_by(eyeball));
  EXPECT_FALSE(advert->usable_by(AsId{1, 121}));
}

TEST_F(DownSegrTest, OnlyLastAsMayRequest) {
  const AsId eyeball{1, 120};
  const auto seg = down_segment_to(eyeball);
  // An unrelated AS tries to request the same segment.
  auto r = bed_.cserv(AsId{1, 121}).request_down_segr(seg, 1000, 1'000'000);
  EXPECT_FALSE(r.ok());
}

TEST_F(DownSegrTest, RequesterMustBeSegmentTail) {
  const AsId eyeball{1, 120};
  auto seg = down_segment_to(eyeball);
  seg.hops.pop_back();  // now ends at the parent, not at us
  auto r = bed_.cserv(eyeball).request_down_segr(seg, 1000, 1'000'000);
  EXPECT_FALSE(r.ok());
}

TEST_F(DownSegrTest, DownSegrUsableForEers) {
  // The classic eyeball flow: request a down-SegR, then build an EER to a
  // host in the eyeball AS over (up at the content AS + that down-SegR).
  const AsId eyeball{1, 120}, content{1, 121};  // both children of core 1-101
  const auto down = down_segment_to(eyeball);
  auto down_r = bed_.cserv(eyeball).request_down_segr(down, 1000, 5'000'000);
  ASSERT_TRUE(down_r.ok());

  // Content side provisions its up segment.
  const auto up = *bed_.pathdb().up_segments_from(content).front();
  ASSERT_EQ(up.last_as(), down.first_as());  // join at the core
  auto up_r = bed_.cserv(content).setup_segr(up, 1000, 5'000'000);
  ASSERT_TRUE(up_r.ok());
  ASSERT_TRUE(bed_.cserv(content).publish_segr(up_r.value().key, {}));

  // But the down-SegR is whitelisted to the *eyeball* AS, not to the
  // content AS — the EER must be refused. Enforcement can bite at either
  // layer: the registry refuses to serve the advert (kNoSuchSegment) or
  // the initiating AS rejects the EEReq (kNotWhitelisted).
  auto denied = bed_.cserv(content).setup_eer(
      {up_r.value().key, down_r.value().key}, HostAddr::from_u64(1),
      HostAddr::from_u64(2), 100, 1000);
  ASSERT_FALSE(denied.ok());
  EXPECT_TRUE(denied.error() == Errc::kNotWhitelisted ||
              denied.error() == Errc::kNoSuchSegment)
      << errc_name(denied.error());

  // ...until the eyeball AS widens the whitelist at the core.
  const AsId core = down.first_as();
  ASSERT_TRUE(bed_.cserv(core).publish_segr(down_r.value().key,
                                            {eyeball, content}));
  auto session = bed_.cserv(content).setup_eer(
      {up_r.value().key, down_r.value().key}, HostAddr::from_u64(1),
      HostAddr::from_u64(2), 100, 1000);
  ASSERT_TRUE(session.ok()) << errc_name(session.error());
}

TEST(ForecastTest, EmptyRecommendsFloor) {
  DemandForecaster f;
  EXPECT_EQ(f.recommend(), ForecastConfig{}.floor_kbps);
}

TEST(ForecastTest, ConvergesToSteadyDemandWithHeadroom) {
  DemandForecaster f;
  for (int i = 0; i < 200; ++i) f.observe(100'000);
  // EWMA -> 100k, peak 100k; recommend = 125k.
  EXPECT_NEAR(static_cast<double>(f.recommend()), 125'000, 2'000);
}

TEST(ForecastTest, PeakTrackerCoversBursts) {
  DemandForecaster f;
  for (int i = 0; i < 50; ++i) f.observe(10'000);
  f.observe(500'000);  // one burst
  // Right after the burst, the recommendation covers it.
  EXPECT_GE(f.recommend(), 500'000u);
  // ...and decays once the burst is long gone.
  for (int i = 0; i < 200; ++i) f.observe(10'000);
  EXPECT_LT(f.recommend(), 100'000u);
  EXPECT_GE(f.recommend(), 12'500u - 1000);  // never below EWMA x headroom
}

TEST(ForecastTest, DrivesRenewalDemand) {
  // End-to-end: feed a forecaster from SegR utilization and renew at the
  // recommended size.
  SimClock clock(1000 * kNsPerSec);
  app::Testbed bed(topology::builders::two_isd_topology(), clock);
  const AsId src{1, 110};
  const auto seg = *bed.pathdb().up_segments_from(src).front();
  auto setup = bed.cserv(src).setup_segr(seg, 1000, 10'000'000);
  ASSERT_TRUE(setup.ok());

  DemandForecaster f;
  // Observed utilization hovers around 3 Gbps.
  for (int i = 0; i < 60; ++i) f.observe(3'000'000);

  clock.advance(2 * kNsPerSec);
  auto renewed =
      bed.cserv(src).renew_segr(setup.value().key, 1000, f.recommend());
  ASSERT_TRUE(renewed.ok()) << errc_name(renewed.error());
  // ~3 Gbps x 1.25 headroom.
  EXPECT_NEAR(static_cast<double>(renewed.value().bw_kbps), 3'750'000,
              100'000);
}

}  // namespace
}  // namespace colibri::cserv
