// Observability layer: packet flight recorder (ring semantics,
// deterministic sampling, record-on-drop, per-verdict forensics),
// structured event log (schema round-trip, bounding, severity filter),
// OpenMetrics exposition (strict parse + agreement with the JSON
// snapshot), multi-source snapshot/reset interleaving, cross-kind name
// collisions, and the end-to-end audit trail of the obs scenario.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <initializer_list>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "colibri/app/obs.hpp"
#include "colibri/app/obs_cli.hpp"
#include "colibri/dataplane/gateway.hpp"
#include "colibri/dataplane/ofd.hpp"
#include "colibri/dataplane/router.hpp"
#include "colibri/telemetry/events.hpp"
#include "colibri/telemetry/flight_recorder.hpp"
#include "colibri/telemetry/metrics.hpp"
#include "colibri/telemetry/openmetrics.hpp"

namespace colibri {
namespace {

using dataplane::BorderRouter;
using dataplane::FastPacket;
using dataplane::Gateway;
using telemetry::Event;
using telemetry::EventLog;
using telemetry::FlightRecord;
using telemetry::FlightRecorder;
using telemetry::MetricsRegistry;
using telemetry::MetricsSnapshot;
using telemetry::Severity;

// --- FlightRecorder ring semantics ------------------------------------------

FlightRecord make_record(std::uint64_t res_id) {
  FlightRecord r;
  r.res_id = static_cast<ResId>(res_id);
  return r;
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder r5(FlightRecorder::Config{.capacity = 5});
  EXPECT_EQ(r5.capacity(), 8u);
  FlightRecorder r8(FlightRecorder::Config{.capacity = 8});
  EXPECT_EQ(r8.capacity(), 8u);
}

TEST(FlightRecorderTest, WrapAroundKeepsNewestOldestFirst) {
  FlightRecorder rec(FlightRecorder::Config{.capacity = 8});
  for (std::uint64_t i = 0; i < 20; ++i) rec.commit(make_record(i));

  EXPECT_EQ(rec.committed(), 20u);
  EXPECT_EQ(rec.overwritten(), 12u);
  EXPECT_EQ(rec.size(), 8u);

  const auto records = rec.records();
  ASSERT_EQ(records.size(), 8u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, 12 + i);           // oldest survivor first
    EXPECT_EQ(records[i].res_id, 12 + i);        // payload matches seq
  }
}

TEST(FlightRecorderTest, DrainClearsButKeepsRecording) {
  FlightRecorder rec(FlightRecorder::Config{.capacity = 4});
  rec.commit(make_record(1));
  rec.commit(make_record(2));
  EXPECT_EQ(rec.drain().size(), 2u);
  EXPECT_EQ(rec.size(), 0u);
  rec.commit(make_record(3));
  EXPECT_EQ(rec.size(), 1u);
}

TEST(FlightRecorderTest, SamplingIsDeterministic) {
  const auto pattern = [](FlightRecorder& r, int n) {
    std::string out;
    for (int i = 0; i < n; ++i) out += r.sample_tick() ? '1' : '0';
    return out;
  };
  FlightRecorder a(FlightRecorder::Config{.sample_every = 4});
  FlightRecorder b(FlightRecorder::Config{.sample_every = 4});
  // Same stream, same recorder config -> identical keep decisions, with
  // exactly one keep per period.
  EXPECT_EQ(pattern(a, 16), "0001000100010001");
  EXPECT_EQ(pattern(b, 16), "0001000100010001");

  FlightRecorder every(FlightRecorder::Config{.sample_every = 1});
  EXPECT_EQ(pattern(every, 4), "1111");
  FlightRecorder never(FlightRecorder::Config{.sample_every = 0});
  EXPECT_EQ(pattern(never, 4), "0000");
}

TEST(FlightRecorderTest, DrainPreservesSamplingPhase) {
  FlightRecorder rec(FlightRecorder::Config{.sample_every = 4});
  EXPECT_FALSE(rec.sample_tick());
  EXPECT_FALSE(rec.sample_tick());
  rec.drain();
  EXPECT_FALSE(rec.sample_tick());
  EXPECT_TRUE(rec.sample_tick());  // 4th tick overall
}

TEST(FlightRecorderTest, ArmedReflectsCaptureModes) {
  FlightRecorder rec(
      FlightRecorder::Config{.sample_every = 0, .record_drops = false});
  EXPECT_FALSE(rec.armed());
  rec.set_sampling(2);
  EXPECT_TRUE(rec.armed());
  rec.set_sampling(0);
  rec.set_record_drops(true);
  EXPECT_TRUE(rec.armed());
}

// --- Recorder wired into the data path --------------------------------------

const AsId kSrcAs{1, 10};
const AsId kMidAs{1, 20};
const AsId kDstAs{1, 30};

drkey::Key128 key_of(std::uint8_t seed) {
  drkey::Key128 k;
  k.bytes.fill(seed);
  return k;
}

// The DataPathTest topology from test_dataplane, with a private metrics
// registry so counters can be asserted in isolation.
class RecordedPathTest : public ::testing::Test {
 protected:
  RecordedPathTest()
      : gateway_(kSrcAs, clock_, dataplane::GatewayConfig{}, &registry_),
        router_src_(kSrcAs, key_of(1), clock_, &registry_),
        router_mid_(kMidAs, key_of(2), clock_, &registry_) {
    clock_.set(100 * kNsPerSec);
    resinfo_.src_as = kSrcAs;
    resinfo_.res_id = 42;
    resinfo_.bw_kbps = 100'000;
    resinfo_.exp_time = 200;
    resinfo_.version = 1;
    eerinfo_.src_host = HostAddr::from_u64(0xAAA);
    eerinfo_.dst_host = HostAddr::from_u64(0xBBB);
    path_ = {topology::Hop{kSrcAs, kNoInterface, 1},
             topology::Hop{kMidAs, 2, 3},
             topology::Hop{kDstAs, 4, kNoInterface}};
    std::vector<dataplane::HopAuth> sigmas;
    const drkey::Key128 keys[] = {key_of(1), key_of(2), key_of(3)};
    for (size_t i = 0; i < path_.size(); ++i) {
      crypto::Aes128 cipher(keys[i].bytes.data());
      sigmas.push_back(dataplane::compute_hopauth(
          cipher, resinfo_, eerinfo_, path_[i].ingress, path_[i].egress));
    }
    EXPECT_TRUE(gateway_.install(resinfo_, eerinfo_, path_, sigmas));
  }

  FastPacket fresh_packet() {
    FastPacket pkt;
    EXPECT_EQ(gateway_.process(42, 500, pkt), Gateway::Verdict::kOk);
    return pkt;
  }

  SimClock clock_;
  MetricsRegistry registry_;
  Gateway gateway_;
  BorderRouter router_src_;
  BorderRouter router_mid_;
  proto::ResInfo resinfo_;
  proto::EerInfo eerinfo_;
  std::vector<topology::Hop> path_;
};

TEST_F(RecordedPathTest, CleanTrafficNotRecordedWithoutSampling) {
  FlightRecorder rec;  // sample_every = 0, record_drops = true
  router_src_.attach_flight_recorder(&rec);
  for (int i = 0; i < 10; ++i) {
    FastPacket pkt = fresh_packet();
    ASSERT_EQ(router_src_.process(pkt), BorderRouter::Verdict::kForward);
  }
  EXPECT_EQ(rec.committed(), 0u);
  EXPECT_EQ(router_src_.snapshot().forwarded, 10u);
}

TEST_F(RecordedPathTest, SampledCleanPacketsCaptureHvfMatch) {
  FlightRecorder rec(FlightRecorder::Config{.sample_every = 2});
  router_src_.attach_flight_recorder(&rec);
  for (int i = 0; i < 10; ++i) {
    FastPacket pkt = fresh_packet();
    ASSERT_EQ(router_src_.process(pkt), BorderRouter::Verdict::kForward);
  }
  const auto records = rec.records();
  ASSERT_EQ(records.size(), 5u);  // every 2nd of 10
  for (const FlightRecord& r : records) {
    EXPECT_EQ(r.component, FlightRecorder::kRouter);
    EXPECT_EQ(r.verdict,
              static_cast<std::uint8_t>(BorderRouter::Verdict::kForward));
    EXPECT_FALSE(r.forced_by_drop);
    EXPECT_EQ(r.res_id, 42u);
    EXPECT_EQ(r.src_as, kSrcAs.raw());
    EXPECT_TRUE(r.hvf_checked);
    EXPECT_EQ(r.hvf_got, r.hvf_want);  // valid packet: prefixes agree
  }
}

TEST_F(RecordedPathTest, EachRouterDropClassRecordsMatchingReason) {
  FlightRecorder rec;  // drops only
  router_src_.attach_flight_recorder(&rec);
  router_mid_.attach_flight_recorder(&rec);

  // kBadHvf: tampered bandwidth field.
  {
    FastPacket pkt = fresh_packet();
    pkt.resinfo.bw_kbps *= 2;
    ASSERT_EQ(router_src_.process(pkt), BorderRouter::Verdict::kBadHvf);
  }
  // kMalformed: empty hop list.
  {
    FastPacket pkt;
    pkt.num_hops = 0;
    ASSERT_EQ(router_src_.process(pkt), BorderRouter::Verdict::kMalformed);
  }
  // kExpired: validity passed between stamping and validation.
  {
    FastPacket pkt = fresh_packet();
    clock_.set(static_cast<TimeNs>(resinfo_.exp_time) * kNsPerSec + 1);
    ASSERT_EQ(router_src_.process(pkt), BorderRouter::Verdict::kExpired);
    clock_.set(100 * kNsPerSec);
  }
  // kBlocked: source AS on the blocklist.
  dataplane::Blocklist blocklist(&registry_);
  {
    router_mid_.attach_blocklist(&blocklist);
    blocklist.block(kSrcAs);
    FastPacket pkt = fresh_packet();
    ASSERT_EQ(router_src_.process(pkt), BorderRouter::Verdict::kForward);
    ASSERT_EQ(router_mid_.process(pkt), BorderRouter::Verdict::kBlocked);
    router_mid_.attach_blocklist(nullptr);
  }
  // kReplay: the same packet processed twice.
  dataplane::DuplicateSuppression dupsup;
  {
    router_mid_.attach_dupsup(&dupsup);
    FastPacket pkt = fresh_packet();
    ASSERT_EQ(router_src_.process(pkt), BorderRouter::Verdict::kForward);
    FastPacket replay = pkt;
    ASSERT_EQ(router_mid_.process(pkt), BorderRouter::Verdict::kForward);
    ASSERT_EQ(router_mid_.process(replay), BorderRouter::Verdict::kReplay);
    router_mid_.attach_dupsup(nullptr);
  }
  // kOveruse: OFD pre-warmed to a confirmed overuser of this flow.
  dataplane::OverUseFlowDetector ofd(dataplane::OfdConfig{}, &registry_);
  {
    router_src_.attach_ofd(&ofd);
    auto v = dataplane::OverUseFlowDetector::Verdict::kOk;
    TimeNs t = clock_.now_ns();
    for (int i = 0;
         i < 100'000 && v != dataplane::OverUseFlowDetector::Verdict::kOveruse;
         ++i) {
      t += 1'000'000;
      v = ofd.update(kSrcAs, 42, 1'000'000, resinfo_.bw_kbps, t);
    }
    ASSERT_EQ(v, dataplane::OverUseFlowDetector::Verdict::kOveruse);
    // Drain the watchlist bucket below the routed packet's wire size so
    // the next on-path packet is a certain overuse, not kWatched.
    for (int i = 0; i < 1'000'000 &&
                    ofd.update(kSrcAs, 42, 100, resinfo_.bw_kbps, t) !=
                        dataplane::OverUseFlowDetector::Verdict::kOveruse;
         ++i) {
    }
    clock_.set(t);  // keep the router's clock at the pre-warm time
    FastPacket pkt = fresh_packet();
    ASSERT_EQ(router_src_.process(pkt), BorderRouter::Verdict::kOveruse);
    router_src_.attach_ofd(nullptr);
  }
  router_src_.attach_flight_recorder(nullptr);
  router_mid_.attach_flight_recorder(nullptr);

  const auto records = rec.records();
  ASSERT_EQ(records.size(), 6u);
  const BorderRouter::Verdict expected[] = {
      BorderRouter::Verdict::kBadHvf,  BorderRouter::Verdict::kMalformed,
      BorderRouter::Verdict::kExpired, BorderRouter::Verdict::kBlocked,
      BorderRouter::Verdict::kReplay,  BorderRouter::Verdict::kOveruse,
  };
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].verdict, static_cast<std::uint8_t>(expected[i]))
        << "record " << i;
    // The recorded reason is the single source of truth: it must agree
    // with errc_from_verdict for the recorded verdict.
    EXPECT_EQ(records[i].errc, static_cast<std::uint8_t>(
                                   errc_from_verdict(expected[i])))
        << "record " << i;
    EXPECT_TRUE(records[i].forced_by_drop);
  }
  // Forensic detail per class: the HVF mismatch kept both prefixes; the
  // replay kept the dupsup verdict; the overuse kept the OFD verdict.
  EXPECT_TRUE(records[0].hvf_checked);
  EXPECT_NE(records[0].hvf_got, records[0].hvf_want);
  EXPECT_EQ(records[4].dupsup_verdict,
            static_cast<std::uint8_t>(
                dataplane::DuplicateSuppression::Verdict::kDuplicate));
  EXPECT_EQ(records[5].ofd_verdict,
            static_cast<std::uint8_t>(
                dataplane::OverUseFlowDetector::Verdict::kOveruse));
}

TEST_F(RecordedPathTest, GatewayDropClassesRecordMatchingReason) {
  FlightRecorder rec;  // drops only
  gateway_.attach_flight_recorder(&rec);

  FastPacket out;
  ASSERT_EQ(gateway_.process(7, 500, out), Gateway::Verdict::kNoReservation);
  // Rate-limit: flood far beyond the reserved 100 Mbps without letting
  // the bucket refill.
  Gateway::Verdict v = Gateway::Verdict::kOk;
  for (int i = 0; i < 100'000 && v != Gateway::Verdict::kRateLimited; ++i) {
    v = gateway_.process(42, 1400, out);
  }
  ASSERT_EQ(v, Gateway::Verdict::kRateLimited);
  clock_.set(static_cast<TimeNs>(resinfo_.exp_time) * kNsPerSec + 1);
  ASSERT_EQ(gateway_.process(42, 500, out), Gateway::Verdict::kExpired);
  gateway_.attach_flight_recorder(nullptr);

  const auto records = rec.records();
  ASSERT_EQ(records.size(), 3u);
  const Gateway::Verdict expected[] = {Gateway::Verdict::kNoReservation,
                                       Gateway::Verdict::kRateLimited,
                                       Gateway::Verdict::kExpired};
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].component, FlightRecorder::kGateway);
    EXPECT_EQ(records[i].verdict, static_cast<std::uint8_t>(expected[i]));
    EXPECT_EQ(records[i].errc, static_cast<std::uint8_t>(
                                   errc_from_verdict(expected[i])));
    EXPECT_TRUE(records[i].forced_by_drop);
  }
  // The rate-limit record captured the bucket state at decision time.
  EXPECT_TRUE(records[1].bucket_checked);
  EXPECT_LT(records[1].bucket_available_bytes, 1400u);
}

TEST_F(RecordedPathTest, AttachedButDisarmedRecordsNothing) {
  FlightRecorder rec(
      FlightRecorder::Config{.sample_every = 0, .record_drops = false});
  router_src_.attach_flight_recorder(&rec);
  FastPacket good = fresh_packet();
  ASSERT_EQ(router_src_.process(good), BorderRouter::Verdict::kForward);
  FastPacket bad = fresh_packet();
  bad.resinfo.bw_kbps *= 2;
  ASSERT_EQ(router_src_.process(bad), BorderRouter::Verdict::kBadHvf);
  EXPECT_EQ(rec.committed(), 0u);
  // Counters still advance: the recorder only adds detail, never
  // replaces accounting.
  EXPECT_EQ(router_src_.snapshot().forwarded, 1u);
  EXPECT_EQ(router_src_.snapshot().bad_hvf, 1u);
}

TEST_F(RecordedPathTest, RecorderJsonlHasOneObjectPerRecord) {
  FlightRecorder rec;
  router_src_.attach_flight_recorder(&rec);
  FastPacket bad = fresh_packet();
  bad.resinfo.bw_kbps *= 2;
  ASSERT_EQ(router_src_.process(bad), BorderRouter::Verdict::kBadHvf);

  const std::string jsonl = rec.to_jsonl();
  ASSERT_FALSE(jsonl.empty());
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"component\":\"router\""), std::string::npos);
    EXPECT_NE(line.find("\"reason\":\"auth-failed\""), std::string::npos);
    EXPECT_NE(line.find("\"hvf_got\":"), std::string::npos);
  }
  EXPECT_EQ(n, rec.size());
}

// --- Structured event log ----------------------------------------------------

TEST(EventLogTest, SchemaRoundTripsThroughJson) {
  SimClock clock(1'234'567'890);
  EventLog log(clock);
  log.emit(Severity::kWarn, "cserv", "request.denied")
      .u64("res_id", 42)
      .i64("delta", -7)
      .str("reason", "bandwidth-unavailable")
      .str("quoted", "a \"b\" \\ c");

  const auto events = log.events();
  ASSERT_EQ(events.size(), 1u);
  const std::string json = events[0].to_json();

  const auto parsed = Event::from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->time_ns, 1'234'567'890);
  EXPECT_EQ(parsed->severity, Severity::kWarn);
  EXPECT_EQ(parsed->component, "cserv");
  EXPECT_EQ(parsed->name, "request.denied");
  ASSERT_EQ(parsed->fields.size(), 4u);
  EXPECT_EQ(parsed->u64("res_id"), 42u);
  ASSERT_NE(parsed->field("delta"), nullptr);
  EXPECT_EQ(parsed->field("delta")->i, -7);
  EXPECT_EQ(parsed->str("reason"), "bandwidth-unavailable");
  EXPECT_EQ(parsed->str("quoted"), "a \"b\" \\ c");
  // The round-trip is exact: re-serializing gives the same line.
  EXPECT_EQ(parsed->to_json(), json);
}

TEST(EventLogTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(Event::from_json("").has_value());
  EXPECT_FALSE(Event::from_json("not json").has_value());
  EXPECT_FALSE(Event::from_json("{\"time_ns\":1}").has_value());
}

TEST(EventLogTest, FromJsonRejectsMalformedInputTable) {
  // A line the exporter actually emits; every mutation of it below must
  // be rejected, and the pristine line must keep parsing.
  const std::string ok =
      "{\"time_ns\":1,\"seq\":2,\"severity\":\"warn\",\"component\":\"cserv\","
      "\"name\":\"denied\",\"fields\":{\"res_id\":42,\"reason\":\"full\"}}";
  ASSERT_TRUE(Event::from_json(ok).has_value());

  const std::string cases[] = {
      // Trailing garbage after the closing brace.
      ok + " ",
      ok + "x",
      ok + "}",
      ok + "\n",
      ok + ok,
      // Duplicate keys, both in fields and at the top level.
      "{\"time_ns\":1,\"seq\":2,\"severity\":\"warn\",\"component\":\"c\","
      "\"name\":\"n\",\"fields\":{\"k\":1,\"k\":2}}",
      "{\"time_ns\":1,\"time_ns\":1,\"seq\":2,\"severity\":\"warn\","
      "\"component\":\"c\",\"name\":\"n\",\"fields\":{}}",
      // Trailing commas.
      "{\"time_ns\":1,\"seq\":2,\"severity\":\"warn\",\"component\":\"c\","
      "\"name\":\"n\",\"fields\":{\"k\":1,}}",
      "{\"time_ns\":1,\"seq\":2,\"severity\":\"warn\",\"component\":\"c\","
      "\"name\":\"n\",\"fields\":{},}",
      // Invalid UTF-8 in a string: stray continuation byte, truncated
      // 2-byte sequence, overlong encoding of '/', UTF-16 surrogate.
      std::string("{\"time_ns\":1,\"seq\":2,\"severity\":\"warn\","
                  "\"component\":\"c\x80\",\"name\":\"n\",\"fields\":{}}"),
      std::string("{\"time_ns\":1,\"seq\":2,\"severity\":\"warn\","
                  "\"component\":\"c\",\"name\":\"n\xC3\",\"fields\":{}}"),
      std::string("{\"time_ns\":1,\"seq\":2,\"severity\":\"warn\","
                  "\"component\":\"c\",\"name\":\"\xC0\xAF\",\"fields\":{}}"),
      "{\"time_ns\":1,\"seq\":2,\"severity\":\"warn\",\"component\":\"c\","
      "\"name\":\"\\ud800\",\"fields\":{}}",
      // Malformed \u escapes: too short, non-hex.
      "{\"time_ns\":1,\"seq\":2,\"severity\":\"warn\",\"component\":\"c\","
      "\"name\":\"\\u12\",\"fields\":{}}",
      "{\"time_ns\":1,\"seq\":2,\"severity\":\"warn\",\"component\":\"c\","
      "\"name\":\"\\uzzzz\",\"fields\":{}}",
      // Unknown severity.
      "{\"time_ns\":1,\"seq\":2,\"severity\":\"loud\",\"component\":\"c\","
      "\"name\":\"n\",\"fields\":{}}",
  };
  for (const std::string& line : cases) {
    EXPECT_FALSE(Event::from_json(line).has_value()) << "accepted: " << line;
  }

  // Every proper prefix of a valid line is truncated and must fail.
  for (std::size_t len = 0; len < ok.size(); ++len) {
    EXPECT_FALSE(Event::from_json(ok.substr(0, len)).has_value())
        << "accepted truncation at " << len;
  }
}

TEST(EventLogTest, BoundedCapacityDropsOldest) {
  SimClock clock(0);
  EventLog log(clock, /*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    log.emit(Severity::kInfo, "test", "e").u64("n", i);
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 2u);
  const auto events = log.events();
  EXPECT_EQ(events.front().u64("n"), 2u);  // 0 and 1 were evicted
  EXPECT_EQ(events.back().u64("n"), 5u);
}

TEST(EventLogTest, SeverityFloorAndDisableSuppress) {
  SimClock clock(0);
  EventLog log(clock);
  log.set_min_severity(Severity::kWarn);
  log.emit(Severity::kInfo, "test", "below");
  log.emit(Severity::kError, "test", "above");
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.events()[0].name, "above");

  log.set_enabled(false);
  log.emit(Severity::kError, "test", "while-disabled");
  EXPECT_EQ(log.size(), 1u);
}

TEST(EventLogTest, JsonlRoundTripsEveryLine) {
  SimClock clock(50);
  EventLog log(clock);
  log.emit(Severity::kInfo, "cserv", "eer.admitted").u64("res_id", 1);
  clock.advance(10);
  log.emit(Severity::kError, "blocklist", "as.blocked")
      .str("offender", "2-999");

  std::istringstream lines(log.to_jsonl());
  std::string line;
  std::vector<Event> parsed;
  while (std::getline(lines, line)) {
    auto ev = Event::from_json(line);
    ASSERT_TRUE(ev.has_value()) << line;
    parsed.push_back(*ev);
  }
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_LT(parsed[0].time_ns, parsed[1].time_ns);
  EXPECT_EQ(parsed[1].str("offender"), "2-999");
}

TEST(EventLogTest, SequenceNumbersAreMonotonicAndRoundTrip) {
  SimClock clock(0);  // frozen clock: every event shares one timestamp
  EventLog log(clock);
  for (int i = 0; i < 5; ++i) {
    log.emit(Severity::kInfo, "test", "tick").u64("n", i);
  }
  const auto events = log.events();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
    EXPECT_EQ(events[i].time_ns, events[0].time_ns);  // seq breaks the tie
  }
  // seq survives the exact JSON round-trip.
  const std::string json = events[3].to_json();
  EXPECT_NE(json.find("\"seq\":"), std::string::npos);
  const auto parsed = Event::from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seq, events[3].seq);
  EXPECT_EQ(parsed->to_json(), json);
}

TEST(EventLogTest, SequenceIsProcessGlobalAcrossLogs) {
  SimClock clock(0);
  EventLog a(clock);
  EventLog b(clock);
  a.emit(Severity::kInfo, "test", "first");
  b.emit(Severity::kInfo, "test", "second");
  a.emit(Severity::kInfo, "test", "third");
  // Interleaved emissions across two logs still totally order.
  EXPECT_LT(a.events()[0].seq, b.events()[0].seq);
  EXPECT_LT(b.events()[0].seq, a.events()[1].seq);
}

// --- OpenMetrics exposition --------------------------------------------------

// Strict line-oriented parse of the subset of the OpenMetrics text
// format that to_openmetrics emits. Fails the test on any line that is
// neither a well-formed comment nor a well-formed sample.
struct ParsedExposition {
  std::map<std::string, std::string> types;   // family -> counter|gauge|...
  std::map<std::string, std::string> helps;   // family -> escaped help text
  std::map<std::string, double> samples;      // full series name -> value
  bool saw_eof = false;
};

ParsedExposition parse_openmetrics(const std::string& text) {
  ParsedExposition out;
  EXPECT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n') << "exposition must end with a newline";
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_FALSE(out.saw_eof) << "content after # EOF: " << line;
    if (line == "# EOF") {
      out.saw_eof = true;
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string rest = line.substr(7);
      const auto space = rest.find(' ');
      EXPECT_NE(space, std::string::npos) << line;
      if (space == std::string::npos) continue;
      const std::string family = rest.substr(0, space);
      const std::string help = rest.substr(space + 1);
      EXPECT_FALSE(help.empty()) << line;
      // Spec ordering: HELP precedes TYPE for its family, once.
      EXPECT_EQ(out.types.count(family), 0u)
          << "HELP after TYPE for " << family;
      EXPECT_EQ(out.helps.count(family), 0u)
          << "duplicate HELP for " << family;
      // Escaping: a raw backslash must be part of \\ or \n.
      for (std::size_t i = 0; i < help.size(); ++i) {
        if (help[i] != '\\') continue;
        EXPECT_LT(i + 1, help.size()) << line;
        if (i + 1 >= help.size()) break;
        EXPECT_TRUE(help[i + 1] == '\\' || help[i + 1] == 'n') << line;
        ++i;
      }
      out.helps[family] = help;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream is(line.substr(7));
      std::string family, type;
      is >> family >> type;
      EXPECT_TRUE(type == "counter" || type == "gauge" ||
                  type == "histogram")
          << line;
      EXPECT_EQ(out.types.count(family), 0u)
          << "duplicate TYPE for " << family;
      out.types[family] = type;
      continue;
    }
    EXPECT_FALSE(line.empty() || line[0] == '#') << "bad line: " << line;
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << line;
    if (space == std::string::npos) continue;
    const std::string series = line.substr(0, space);
    std::size_t pos = 0;
    const double value = std::stod(line.substr(space + 1), &pos);
    EXPECT_EQ(pos, line.size() - space - 1) << "trailing junk: " << line;
    // Series name: metric name chars, optionally one {le="..."} matcher.
    const auto brace = series.find('{');
    const std::string base = series.substr(0, brace);
    for (char c : base) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == ':')
          << "bad metric name char in: " << series;
    }
    if (brace != std::string::npos) {
      EXPECT_EQ(series.back(), '}') << series;
      EXPECT_EQ(series.compare(brace, 5, "{le=\""), 0) << series;
    }
    EXPECT_EQ(out.samples.count(series), 0u) << "duplicate series " << series;
    out.samples[series] = value;
  }
  EXPECT_TRUE(out.saw_eof) << "missing # EOF terminator";
  return out;
}

// Asserts that the OpenMetrics rendering of `snap` carries exactly the
// same values as the snapshot itself (which to_json() serializes), for
// every counter, gauge, and histogram.
void expect_exposition_agrees(const MetricsSnapshot& snap,
                              const ParsedExposition& exp) {
  for (const auto& [name, value] : snap.counters) {
    const std::string om = telemetry::openmetrics_name(name);
    EXPECT_EQ(exp.types.at(om), "counter") << name;
    EXPECT_EQ(exp.samples.at(om + "_total"), static_cast<double>(value))
        << name;
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string om = telemetry::openmetrics_name(name);
    EXPECT_EQ(exp.types.at(om), "gauge") << name;
    EXPECT_EQ(exp.samples.at(om), static_cast<double>(value)) << name;
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string om = telemetry::openmetrics_name(name);
    EXPECT_EQ(exp.types.at(om), "histogram") << name;
    EXPECT_EQ(exp.samples.at(om + "_count"), static_cast<double>(h.count))
        << name;
    EXPECT_EQ(exp.samples.at(om + "_sum"), static_cast<double>(h.sum))
        << name;
    // Cumulative buckets: monotone in the numeric le order, ending at
    // +Inf == total count.
    std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
    const std::string prefix = om + "_bucket{le=\"";
    for (const auto& [series, value] : exp.samples) {
      if (series.rfind(prefix, 0) != 0) continue;
      const std::string le =
          series.substr(prefix.size(), series.size() - prefix.size() - 2);
      buckets.emplace_back(le == "+Inf"
                               ? std::numeric_limits<double>::infinity()
                               : std::stod(le),
                           value);
    }
    std::sort(buckets.begin(), buckets.end());
    ASSERT_FALSE(buckets.empty()) << name;
    double prev = 0;
    for (const auto& [le, value] : buckets) {
      EXPECT_GE(value, prev) << name << " le=" << le;
      prev = value;
    }
    EXPECT_TRUE(std::isinf(buckets.back().first)) << name;
    EXPECT_EQ(buckets.back().second, static_cast<double>(h.count)) << name;
  }
}

TEST(OpenMetricsTest, NameSanitization) {
  EXPECT_EQ(telemetry::openmetrics_name("router.drop.auth-failed"),
            "colibri_router_drop_auth_failed");
  EXPECT_EQ(telemetry::openmetrics_name("gateway.ok"), "colibri_gateway_ok");
}

TEST(OpenMetricsTest, StrictParseAndAgreementWithSnapshot) {
  MetricsRegistry registry;
  registry.counter("cserv.requests").inc(17);
  registry.counter("router.drop.auth-failed").inc(3);
  registry.gauge("bus.inflight").set(-2);
  auto& h = registry.histogram("cserv.admission_latency_ns");
  for (std::uint64_t v : {0ull, 1ull, 700ull, 900ull, 1'000'000ull}) {
    h.record(v);
  }

  const MetricsSnapshot snap = registry.snapshot();
  const ParsedExposition exp = parse_openmetrics(to_openmetrics(snap));
  expect_exposition_agrees(snap, exp);
  // Spot-check the rendered series names.
  EXPECT_EQ(exp.samples.at("colibri_cserv_requests_total"), 17.0);
  EXPECT_EQ(exp.samples.at("colibri_bus_inflight"), -2.0);
  EXPECT_EQ(exp.samples.at("colibri_cserv_admission_latency_ns_count"), 5.0);
}

// --- library parser (telemetry::parse_openmetrics) ---------------------------

TEST(OpenMetricsParserTest, RoundTripsTheEmitterOutput) {
  MetricsRegistry registry;
  registry.counter("cserv.requests").inc(17);
  registry.gauge("bus.inflight").set(-2);
  registry.histogram("cserv.admission_latency_ns").record(700);
  std::string err;
  const auto exp =
      telemetry::parse_openmetrics(to_openmetrics(registry.snapshot()), &err);
  ASSERT_TRUE(exp.has_value()) << err;
  EXPECT_EQ(exp->samples.at("colibri_cserv_requests_total"), 17.0);
  EXPECT_EQ(exp->samples.at("colibri_bus_inflight"), -2.0);
  EXPECT_EQ(exp->types.at("colibri_cserv_requests"), "counter");
  EXPECT_EQ(exp->types.at("colibri_bus_inflight"), "gauge");
  EXPECT_EQ(exp->types.at("colibri_cserv_admission_latency_ns"), "histogram");
  EXPECT_GT(exp->sample_count(), 0u);
}

TEST(OpenMetricsParserTest, RequiresTheEofTerminator) {
  std::string err;
  // Well-formed except for the terminator: must be rejected, so a
  // truncated scrape can never pass for a complete one.
  EXPECT_FALSE(telemetry::parse_openmetrics("colibri_x 1\n", &err));
  EXPECT_NE(err.find("# EOF"), std::string::npos);
  // ...and consumed: nothing may follow it.
  EXPECT_FALSE(
      telemetry::parse_openmetrics("# EOF\ncolibri_x 1\n", &err));
  EXPECT_NE(err.find("after # EOF"), std::string::npos);
  // The minimal valid exposition is the bare terminator.
  const auto empty = telemetry::parse_openmetrics("# EOF\n");
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(empty->sample_count(), 0u);
}

TEST(OpenMetricsParserTest, RejectsMalformedLines) {
  const auto bad = [](std::string_view text) {
    return !telemetry::parse_openmetrics(text).has_value();
  };
  EXPECT_TRUE(bad(""));                         // no trailing newline
  EXPECT_TRUE(bad("colibri_x 1\n# EOF"));       // unterminated last line
  EXPECT_TRUE(bad("\n# EOF\n"));                // empty line
  EXPECT_TRUE(bad("# bogus comment\n# EOF\n"));
  EXPECT_TRUE(bad("# TYPE colibri_x summary\n# EOF\n"));  // unknown type
  EXPECT_TRUE(bad("colibri_x\n# EOF\n"));       // sample without value
  EXPECT_TRUE(bad("colibri_x one\n# EOF\n"));   // non-numeric value
  EXPECT_TRUE(bad("9bad 1\n# EOF\n"));          // leading-digit name
  EXPECT_TRUE(bad("colibri_x{le=\"5\" 1\n# EOF\n"));  // unclosed labels
  EXPECT_TRUE(bad("colibri_x 1\ncolibri_x 2\n# EOF\n"));  // duplicate
  EXPECT_TRUE(bad("# TYPE colibri_x counter\n# TYPE colibri_x counter\n"
                  "# EOF\n"));
  EXPECT_TRUE(bad("# TYPE colibri_x counter\n# HELP colibri_x h\n"
                  "# EOF\n"));  // HELP must precede TYPE
}

TEST(OpenMetricsParserTest, AcceptsLabeledSamplesAndReportsLineNumbers) {
  const auto exp = telemetry::parse_openmetrics(
      "# HELP colibri_h hist\n# TYPE colibri_h histogram\n"
      "colibri_h_bucket{le=\"512\"} 3\ncolibri_h_bucket{le=\"+Inf\"} 4\n"
      "colibri_h_sum 900\ncolibri_h_count 4\n# EOF\n");
  ASSERT_TRUE(exp.has_value());
  EXPECT_EQ(exp->samples.at("colibri_h_bucket{le=\"512\"}"), 3.0);
  EXPECT_EQ(exp->helps.at("colibri_h"), "hist");
  std::string err;
  EXPECT_FALSE(telemetry::parse_openmetrics("colibri_a 1\nbad line here\n",
                                            &err));
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

TEST(OpenMetricsTest, EscapingHelpers) {
  EXPECT_EQ(telemetry::openmetrics_escape_label("a\\b\"c\nd"),
            "a\\\\b\\\"c\\nd");
  EXPECT_EQ(telemetry::openmetrics_escape_help("a\\b\nc\"d"),
            "a\\\\b\\nc\"d");  // quotes are legal in HELP text
}

TEST(OpenMetricsTest, HelpTableMatchesByLongestPrefix) {
  // Specific entry wins over the family entry it is nested under.
  const char* shard_count = telemetry::openmetrics_help(
      "gateway_runtime.shard.count");
  const char* shard_series = telemetry::openmetrics_help(
      "gateway_runtime.shard.0.ring_depth");
  ASSERT_NE(shard_count, nullptr);
  ASSERT_NE(shard_series, nullptr);
  EXPECT_STRNE(shard_count, shard_series);
  EXPECT_NE(telemetry::openmetrics_help("router.stage.hvf_crypto_ns"),
            nullptr);
  EXPECT_EQ(telemetry::openmetrics_help("no.such.family"), nullptr);
}

TEST(OpenMetricsTest, HelpLinesPrecedeTypeAndOnlyKnownFamilies) {
  MetricsRegistry registry;
  registry.counter("router.forwarded").inc(3);
  registry.histogram("router.stage.hvf_crypto_ns").record_shared(512);
  registry.gauge("gateway_runtime.shard.count").set(4);
  registry.counter("unregistered.family").inc(1);

  const MetricsSnapshot snap = registry.snapshot();
  // parse_openmetrics itself asserts HELP-before-TYPE, single HELP per
  // family, and spec escaping of the help text.
  const ParsedExposition exp = parse_openmetrics(to_openmetrics(snap));
  expect_exposition_agrees(snap, exp);
  EXPECT_EQ(exp.helps.at("colibri_router_forwarded"),
            telemetry::openmetrics_help("router.forwarded"));
  EXPECT_EQ(exp.helps.count("colibri_router_stage_hvf_crypto_ns"), 1u);
  EXPECT_EQ(exp.helps.count("colibri_gateway_runtime_shard_count"), 1u);
  // Families without registered help text get no HELP line at all.
  EXPECT_EQ(exp.helps.count("colibri_unregistered_family"), 0u);
  EXPECT_EQ(exp.types.count("colibri_unregistered_family"), 1u);
}

// --- Multi-source snapshot / reset interleaving ------------------------------

TEST(MetricsMultiSourceTest, SnapshotMergesAndResetsInterleave) {
  SimClock clock(0);
  MetricsRegistry registry;
  BorderRouter a(kSrcAs, key_of(1), clock, &registry);
  BorderRouter b(kMidAs, key_of(2), clock, &registry);
  registry.counter("custom.count").inc(7);

  FastPacket malformed;
  malformed.num_hops = 0;
  for (int i = 0; i < 3; ++i) (void)a.process(malformed);
  for (int i = 0; i < 2; ++i) (void)b.process(malformed);

  // Both instances merge into one series.
  MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("router.drop.malformed"), 5u);
  EXPECT_EQ(snap.counters.at("custom.count"), 7u);

  // Source counters reset through their owner; the other source and the
  // owned metrics are untouched.
  a.reset();
  snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("router.drop.malformed"), 2u);
  EXPECT_EQ(snap.counters.at("custom.count"), 7u);

  // Registry reset zeroes owned metrics only.
  registry.reset();
  snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("router.drop.malformed"), 2u);
  EXPECT_EQ(snap.counters.at("custom.count"), 0u);

  // A source that keeps recording between snapshots is picked up.
  (void)b.process(malformed);
  EXPECT_EQ(registry.snapshot().counters.at("router.drop.malformed"), 3u);
}

TEST(MetricsMultiSourceTest, DetachedSourceLeavesSnapshot) {
  SimClock clock(0);
  MetricsRegistry registry;
  FastPacket malformed;
  malformed.num_hops = 0;
  {
    BorderRouter a(kSrcAs, key_of(1), clock, &registry);
    (void)a.process(malformed);
    EXPECT_EQ(registry.snapshot().counters.at("router.drop.malformed"), 1u);
    EXPECT_EQ(registry.source_count(), 1u);
  }
  EXPECT_EQ(registry.source_count(), 0u);
  EXPECT_EQ(registry.snapshot().counters.count("router.drop.malformed"), 0u);
}

// --- Cross-kind name collisions ----------------------------------------------

TEST(MetricsCollisionTest, RegistryRejectsCrossKindRegistration) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::logic_error);
  EXPECT_THROW(registry.histogram("x"), std::logic_error);
  registry.gauge("y");
  EXPECT_THROW(registry.counter("y"), std::logic_error);
  // Same-kind re-registration is the documented get-or-create.
  registry.counter("x").inc();
  EXPECT_EQ(registry.counter("x").value(), 1u);
}

namespace {
class FixedSource final : public telemetry::MetricsSource {
 public:
  enum class Kind { kCounter, kGauge };
  FixedSource(std::string name, Kind kind, std::int64_t value)
      : name_(std::move(name)), kind_(kind), value_(value) {}
  void collect_metrics(telemetry::MetricSink& sink) const override {
    if (kind_ == Kind::kCounter) {
      sink.counter(name_, static_cast<std::uint64_t>(value_));
    } else {
      sink.gauge(name_, value_);
    }
  }

 private:
  std::string name_;
  Kind kind_;
  std::int64_t value_;
};
}  // namespace

TEST(MetricsCollisionTest, SourceCollisionIsNamespacedNotSummed) {
  MetricsRegistry registry;
  FixedSource counter_src("dup", FixedSource::Kind::kCounter, 5);
  FixedSource gauge_src("dup", FixedSource::Kind::kGauge, 9);
  registry.attach(&counter_src);
  registry.attach(&gauge_src);

  const MetricsSnapshot snap = registry.snapshot();
  // First kind seen keeps the plain name; the conflicting kind is
  // namespaced; the clash is reported.
  EXPECT_EQ(snap.counters.at("dup"), 5u);
  EXPECT_EQ(snap.gauges.at("dup.gauge"), 9);
  ASSERT_EQ(snap.collisions.size(), 1u);
  EXPECT_EQ(snap.collisions[0], "dup");
  // The JSON export surfaces the collision list.
  EXPECT_NE(snap.to_json().find("\"collisions\":[\"dup\"]"),
            std::string::npos);
  // And the OpenMetrics rendering still parses: the namespaced series
  // sanitizes to a distinct exposition name.
  const ParsedExposition exp = parse_openmetrics(to_openmetrics(snap));
  expect_exposition_agrees(snap, exp);

  registry.detach(&counter_src);
  registry.detach(&gauge_src);
}

TEST(MetricsCollisionTest, CollisionsAbsentFromJsonWhenNoneOccur) {
  MetricsRegistry registry;
  registry.counter("a").inc();
  EXPECT_EQ(registry.to_json().find("collisions"), std::string::npos);
}

// --- End-to-end scenario: ordered audit trail --------------------------------

class ObsScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    app::ObsOptions opts;
    opts.packets = 60;
    opts.sample_every = 4;
    art_ = new app::ObsArtifacts(app::run_obs_scenario(opts));
  }
  static void TearDownTestSuite() {
    delete art_;
    art_ = nullptr;
  }

  static std::vector<Event> parsed_events() {
    std::vector<Event> out;
    std::istringstream lines(art_->events_jsonl);
    std::string line;
    while (std::getline(lines, line)) {
      auto ev = Event::from_json(line);
      EXPECT_TRUE(ev.has_value()) << line;
      if (ev.has_value()) out.push_back(*ev);
    }
    return out;
  }

  // Index of the first event with `name`, or npos.
  static std::size_t first_index(const std::vector<Event>& evs,
                                 std::string_view name) {
    for (std::size_t i = 0; i < evs.size(); ++i) {
      if (evs[i].name == name) return i;
    }
    return std::string::npos;
  }

  static app::ObsArtifacts* art_;
};

app::ObsArtifacts* ObsScenarioTest::art_ = nullptr;

TEST_F(ObsScenarioTest, DeliversTrafficAndProducesAllArtifacts) {
  EXPECT_GT(art_->delivered, 0);
  EXPECT_GT(art_->events_count, 0u);
  EXPECT_GT(art_->records_count, 0u);
  EXPECT_FALSE(art_->metrics_json.empty());
}

TEST_F(ObsScenarioTest, LifecycleAuditEventsAreOrdered) {
  const auto evs = parsed_events();
  ASSERT_FALSE(evs.empty());

  // Every line round-trips and timestamps never go backwards (the sim
  // clock only advances).
  for (std::size_t i = 1; i < evs.size(); ++i) {
    EXPECT_GE(evs[i].time_ns, evs[i - 1].time_ns) << "event " << i;
  }

  // Admission before use: SegRs are admitted, then the EER over them.
  const std::size_t segr_admitted = first_index(evs, "segr.admitted");
  const std::size_t eer_admitted = first_index(evs, "eer.admitted");
  ASSERT_NE(segr_admitted, std::string::npos);
  ASSERT_NE(eer_admitted, std::string::npos);
  EXPECT_LT(segr_admitted, eer_admitted);

  // Renewal cycle: renewed then activated, after the original admission.
  const std::size_t renewed = first_index(evs, "segr.renewed");
  const std::size_t activated = first_index(evs, "segr.activated");
  ASSERT_NE(renewed, std::string::npos);
  ASSERT_NE(activated, std::string::npos);
  EXPECT_GT(renewed, segr_admitted);
  EXPECT_GT(activated, renewed);

  // Expiry closes the lifecycle.
  const std::size_t expired = first_index(evs, "eer.expired");
  ASSERT_NE(expired, std::string::npos);
  EXPECT_GT(expired, eer_admitted);
  EXPECT_EQ(evs[expired].component, "cserv");

  // Policing escalations from the injected offense.
  const std::size_t blocked = first_index(evs, "as.blocked");
  ASSERT_NE(blocked, std::string::npos);
  EXPECT_EQ(evs[blocked].severity, Severity::kError);
  EXPECT_EQ(evs[blocked].str("offender"), "2-999");
  EXPECT_NE(first_index(evs, "source.denied"), std::string::npos);

  // Admission events carry the fields an auditor needs.
  const Event& adm = evs[eer_admitted];
  EXPECT_TRUE(adm.u64("res_id").has_value());
  EXPECT_TRUE(adm.u64("bw_kbps").has_value());
  EXPECT_TRUE(adm.str("src_as").has_value());
}

TEST_F(ObsScenarioTest, FlightRecordsCoverCleanAndDroppedTraffic) {
  std::istringstream lines(art_->records_jsonl);
  std::string line;
  std::size_t n = 0, forced = 0, sampled = 0;
  bool saw_auth_failed = false;
  while (std::getline(lines, line)) {
    ++n;
    ASSERT_EQ(line.front(), '{');
    if (line.find("\"forced_by_drop\":true") != std::string::npos) {
      ++forced;
    } else {
      ++sampled;
    }
    saw_auth_failed |=
        line.find("\"reason\":\"auth-failed\"") != std::string::npos;
  }
  EXPECT_EQ(n, art_->records_count);
  EXPECT_GT(sampled, 0u) << "1-in-4 sampling must keep clean packets";
  EXPECT_GT(forced, 0u) << "injected failures must be force-recorded";
  EXPECT_TRUE(saw_auth_failed) << "the tampered packet must be traced";
}

TEST_F(ObsScenarioTest, OpenMetricsAgreesWithJsonSnapshot) {
  const ParsedExposition exp = parse_openmetrics(art_->openmetrics);
  expect_exposition_agrees(art_->metrics, exp);
  // The scenario's headline series made it to the exposition.
  EXPECT_GT(exp.samples.at("colibri_router_forwarded_total"), 0.0);
  EXPECT_GT(exp.samples.at("colibri_gateway_forwarded_total"), 0.0);
  EXPECT_GT(exp.samples.at("colibri_router_drop_auth_failed_total"), 0.0);
}

TEST_F(ObsScenarioTest, AssemblesDistributedTracesWithMetrics) {
  // The setup conversation produced at least one multi-hop causal tree
  // with a reservation id and per-hop attribution.
  ASSERT_FALSE(art_->traces.empty());
  bool saw_multi_hop = false;
  for (const auto& t : art_->traces) {
    ASSERT_FALSE(t.hops.empty());
    EXPECT_EQ(t.hops[0].depth, 0);
    for (const auto& h : t.hops) {
      EXPECT_GE(h.total_ns, h.self_ns);
      EXPECT_GE(h.self_ns, 0);
    }
    saw_multi_hop |= t.hops.size() >= 2;
  }
  EXPECT_TRUE(saw_multi_hop);
  // cserv.trace.* landed in the same snapshot as everything else.
  EXPECT_GT(art_->metrics.counters.at("cserv.trace.assembled"), 0u);
  EXPECT_EQ(art_->metrics.counters.at("cserv.trace.orphan_spans"), 0u);
  ASSERT_TRUE(art_->metrics.histograms.count("cserv.trace.hop_total_ns"));
  // The Perfetto export carries the cross-track flow arrows.
  EXPECT_NE(art_->perfetto_json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(art_->perfetto_json.find("\"ph\":\"f\""), std::string::npos);
}

TEST_F(ObsScenarioTest, WindowedTelemetryAndAlertPlaneRan) {
  // The monitoring plane sampled windows and evaluated rules while the
  // scenario ran — the acceptance bar for `watch --once`.
  EXPECT_GT(art_->sampler_windows, 0u);
  EXPECT_GE(art_->alert_rules, 1u);
  EXPECT_GT(art_->alert_evaluations, 0u);
  EXPECT_FALSE(art_->watch_frames.empty());
  // Every intermediate frame and the final render carry the dashboard
  // sections an operator greps for.
  for (const std::string* text :
       {&art_->watch_frames.front(), &art_->watch_text}) {
    EXPECT_NE(text->find("colibri watch"), std::string::npos);
    EXPECT_NE(text->find("alerts:"), std::string::npos);
    EXPECT_NE(text->find("slo "), std::string::npos);
  }
  // The healthy demo run ends with no alert still firing, and the
  // derived gauges rode the ordinary metrics snapshot out.
  EXPECT_EQ(art_->alerts_firing, 0u);
  EXPECT_TRUE(art_->metrics.counters.contains("telemetry.sampler.windows"));
  EXPECT_TRUE(art_->metrics.counters.contains("telemetry.alerts.evaluations"));
  EXPECT_TRUE(art_->metrics.gauges.contains("telemetry.alerts.rules"));
  EXPECT_TRUE(art_->metrics.gauges.contains("gateway.forwarded.rate_1s"));
}

TEST_F(ObsScenarioTest, EventSequenceNumbersIncreaseWithinTheRun) {
  const auto evs = parsed_events();
  ASSERT_GE(evs.size(), 2u);
  for (std::size_t i = 1; i < evs.size(); ++i) {
    EXPECT_GT(evs[i].seq, evs[i - 1].seq) << "event " << i;
  }
}

// --- colibri_obs CLI surface -------------------------------------------------

int run_cli(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"colibri_obs"};
  argv.insert(argv.end(), args);
  return app::run_obs_cli(static_cast<int>(argv.size()), argv.data());
}

TEST(ObsCliTest, UnknownSubcommandFailsWithUsage) {
  testing::internal::CaptureStderr();
  EXPECT_EQ(run_cli({"frobnicate"}), 2);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("unknown command 'frobnicate'"), std::string::npos);
  EXPECT_NE(err.find("usage:"), std::string::npos);
}

TEST(ObsCliTest, UnknownFlagFailsWithUsage) {
  testing::internal::CaptureStderr();
  EXPECT_EQ(run_cli({"--bogus=1"}), 2);
  EXPECT_NE(testing::internal::GetCapturedStderr().find("usage:"),
            std::string::npos);
}

TEST(ObsCliTest, MissingPerfettoPathFailsWithUsage) {
  // `--perfetto` as the last token has no value to consume.
  testing::internal::CaptureStderr();
  EXPECT_EQ(run_cli({"trace", "--perfetto"}), 2);
  EXPECT_NE(testing::internal::GetCapturedStderr().find("usage:"),
            std::string::npos);
}

TEST(ObsCliTest, NonexistentScenarioFailsWithUsage) {
  testing::internal::CaptureStderr();
  EXPECT_EQ(run_cli({"--scenario=mars"}), 2);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("unknown scenario 'mars'"), std::string::npos);
  EXPECT_NE(err.find("usage:"), std::string::npos);
}

TEST(ObsCliTest, ReservationRequiresTraceCommandAndNumericId) {
  testing::internal::CaptureStderr();
  EXPECT_EQ(run_cli({"--reservation=5"}), 2);  // no trace command
  EXPECT_EQ(run_cli({"trace", "--reservation=abc"}), 2);
  EXPECT_NE(testing::internal::GetCapturedStderr().find("--reservation"),
            std::string::npos);
}

TEST(ObsCliTest, OnceFlagRequiresTheWatchCommand) {
  testing::internal::CaptureStderr();
  EXPECT_EQ(run_cli({"--once"}), 2);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("--once"), std::string::npos);
  EXPECT_NE(err.find("usage:"), std::string::npos);
}

TEST(ObsCliTest, WatchOnceRendersTheFinalFrame) {
  testing::internal::CaptureStdout();
  EXPECT_EQ(run_cli({"watch", "--once", "--packets=40"}), 0);
  const std::string out = testing::internal::GetCapturedStdout();
  // Single-shot mode: exactly one frame, no ANSI clear-screen escapes.
  EXPECT_EQ(out.find('\033'), std::string::npos);
  EXPECT_NE(out.find("colibri watch"), std::string::npos) << out;
  EXPECT_NE(out.find("alerts: rules="), std::string::npos) << out;
  EXPECT_NE(out.find("slo "), std::string::npos) << out;
  EXPECT_NE(out.find("peak"), std::string::npos) << out;
}

TEST(ObsCliTest, TraceWaterfallForKnownAndUnknownReservation) {
  // One cheap scenario run per invocation; keep the traffic leg small.
  testing::internal::CaptureStderr();
  EXPECT_EQ(run_cli({"trace", "--packets=40", "--reservation", "999999"}), 1);
  EXPECT_NE(
      testing::internal::GetCapturedStderr().find("no assembled trace"),
      std::string::npos);

  // The deterministic scenario always provisions reservation id 1 first.
  testing::internal::CaptureStdout();
  EXPECT_EQ(run_cli({"trace", "--packets=40", "--reservation=1"}), 0);
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("res_id=1"), std::string::npos) << out;
  EXPECT_NE(out.find("<-- bottleneck"), std::string::npos) << out;
}

}  // namespace
}  // namespace colibri
