// Tests: renewal-storm scenario — correlated expiry, legacy vs batched
// drain equivalence, per-shard batch shape.
#include <gtest/gtest.h>

#include <map>

#include "colibri/app/renewal_storm.hpp"

namespace colibri::app {
namespace {

RenewalStormConfig small_config() {
  RenewalStormConfig cfg;
  cfg.num_eers = 2'000;
  cfg.num_segrs = 16;
  cfg.shards = 8;
  return cfg;
}

// Per-SegR allocation counters, keyed for comparison across storms.
std::map<ResKey, BwKbps> allocations(RenewalStorm& storm) {
  std::map<ResKey, BwKbps> out;
  for (const auto& rec : storm.db().segr_snapshot()) {
    out[rec.key] = rec.eer_allocated_kbps;
  }
  return out;
}

TEST(RenewalStormTest, PopulateBuildsCorrelatedFleet) {
  RenewalStorm storm(small_config());
  storm.populate();
  EXPECT_EQ(storm.db().segr_count(), 16u);
  EXPECT_EQ(storm.db().eer_count(), 2'000u);
  // Every EER expires at the same instant — the storm.
  storm.db().for_each_eer([&](const reservation::EerRecord& rec) {
    ASSERT_EQ(rec.versions.size(), 1u);
    EXPECT_EQ(rec.versions.front().exp_time, storm.storm_expiry());
  });
}

TEST(RenewalStormTest, UnrenewedFleetSweepsOutTogether) {
  RenewalStorm storm(small_config());
  storm.populate();
  size_t removed = 0;
  storm.db().sweep_eers(storm.storm_expiry() + 1,
                        [&](const reservation::EerRecord&) { ++removed; });
  EXPECT_EQ(removed, 2'000u);
  EXPECT_EQ(storm.db().eer_count(), 0u);
}

TEST(RenewalStormTest, BatchedDrainRenewsEverythingBeforeExpiry) {
  RenewalStorm storm(small_config());
  storm.populate();
  const auto st = storm.drain_batched(storm.storm_expiry());
  EXPECT_EQ(st.renewed, 2'000u);
  EXPECT_EQ(st.failed, 0u);
  // One batch per non-empty shard, ResId-ordered inside.
  EXPECT_EQ(st.batches, 8u);
  EXPECT_GE(st.max_batch, 2'000u / 8);
  EXPECT_LT(st.max_batch, 2'000u);

  // The renewed fleet survives the storm instant.
  size_t removed = 0;
  storm.db().sweep_eers(storm.storm_expiry() + 1,
                        [&](const reservation::EerRecord&) { ++removed; });
  EXPECT_EQ(removed, 0u);
  EXPECT_EQ(storm.db().eer_count(), 2'000u);
}

TEST(RenewalStormTest, BatchedDrainMatchesLegacyEndState) {
  RenewalStorm legacy(small_config());
  RenewalStorm batched(small_config());
  legacy.populate();
  batched.populate();

  const UnixSec now = legacy.storm_expiry();
  const auto lst = legacy.drain_legacy(now);
  const auto bst = batched.drain_batched(now);

  EXPECT_EQ(lst.renewed, bst.renewed);
  EXPECT_EQ(lst.failed, bst.failed);
  EXPECT_EQ(lst.renewed, 2'000u);
  // The legacy drain is one undifferentiated pass.
  EXPECT_EQ(lst.batches, 1u);
  EXPECT_EQ(lst.max_batch, 2'000u);

  // Identical reservation state: same records, same versions, same
  // per-SegR allocation counters.
  EXPECT_EQ(legacy.db().eer_count(), batched.db().eer_count());
  EXPECT_EQ(allocations(legacy), allocations(batched));
  for (const auto& rec : legacy.db().eer_snapshot()) {
    const auto other = batched.db().eer_copy(rec.key);
    ASSERT_TRUE(other.has_value());
    ASSERT_EQ(other->versions.size(), rec.versions.size());
    EXPECT_EQ(other->versions.back().exp_time, rec.versions.back().exp_time);
    EXPECT_EQ(other->versions.back().bw_kbps, rec.versions.back().bw_kbps);
  }
}

TEST(RenewalStormTest, MultiThreadedDrainMatchesSingleThreaded) {
  RenewalStormConfig cfg = small_config();
  RenewalStorm single(cfg);
  cfg.threads = 4;
  RenewalStorm threaded(cfg);
  single.populate();
  threaded.populate();

  const UnixSec now = single.storm_expiry();
  const auto sst = single.drain_batched(now);
  const auto tst = threaded.drain_batched(now);

  EXPECT_EQ(sst.renewed, tst.renewed);
  EXPECT_EQ(sst.failed, tst.failed);
  EXPECT_EQ(sst.batches, tst.batches);
  EXPECT_EQ(allocations(single), allocations(threaded));
}

}  // namespace
}  // namespace colibri::app
