// Unit tests: token bucket, reservation table, duplicate suppression,
// OFD, blocklist, and the gateway <-> border-router HVF interoperability
// (Eqs. 3, 4, 6).
#include <gtest/gtest.h>

#include "colibri/common/rand.hpp"
#include "colibri/dataplane/blocklist.hpp"
#include "colibri/dataplane/dupsup.hpp"
#include "colibri/dataplane/gateway.hpp"
#include "colibri/dataplane/ofd.hpp"
#include "colibri/dataplane/restable.hpp"
#include "colibri/dataplane/router.hpp"

namespace colibri::dataplane {
namespace {

const AsId kSrcAs{1, 10};
const AsId kMidAs{1, 20};
const AsId kDstAs{1, 30};

drkey::Key128 key_of(std::uint8_t seed) {
  drkey::Key128 k;
  k.bytes.fill(seed);
  return k;
}

// --- TokenBucket -------------------------------------------------------------

TEST(TokenBucketTest, AllowsBurstThenBlocks) {
  TokenBucket tb(/*rate=*/8, /*burst=*/1000, /*now=*/0);  // 8 kbps = 1 KB/s
  EXPECT_TRUE(tb.allow(1000, 0));   // full burst
  EXPECT_FALSE(tb.allow(1, 0));     // drained
}

TEST(TokenBucketTest, RefillsAtRate) {
  TokenBucket tb(8, 1000, 0);  // 1000 B/s
  ASSERT_TRUE(tb.allow(1000, 0));
  EXPECT_FALSE(tb.allow(500, 100 * 1'000'000));  // 0.1 s -> 100 B refilled
  EXPECT_TRUE(tb.allow(500, 500 * 1'000'000));   // 0.5 s -> 500 B
}

TEST(TokenBucketTest, CapsAtBurst) {
  TokenBucket tb(8, 1000, 0);
  // Long idle: tokens capped at burst, not unbounded.
  EXPECT_TRUE(tb.allow(1000, 100 * kNsPerSec));
  EXPECT_FALSE(tb.allow(200, 100 * kNsPerSec));
}

TEST(TokenBucketTest, SubResolutionIntervalsAccumulate) {
  // 1 kbps = 125 B/s: a single 1 µs step refills 0.125 mB (milli-bytes);
  // 8000 steps of 1 µs must together refill ~1 B, not zero.
  TokenBucket tb(1, 10, 0);
  ASSERT_TRUE(tb.allow(10, 0));
  TimeNs t = 0;
  for (int i = 0; i < 8000; ++i) {
    t += 1000;
    (void)tb.allow(0, t);
  }
  EXPECT_GE(tb.available_bytes(), 1u);
}

TEST(TokenBucketTest, SustainedRateConverges) {
  // Offered exactly at rate: nearly all packets conform.
  TokenBucket tb(8000, 2000, 0);  // 1 MB/s
  int allowed = 0;
  TimeNs t = 0;
  for (int i = 0; i < 1000; ++i) {
    t += 1'000'000;  // 1 ms -> 1000 B budget
    if (tb.allow(1000, t)) ++allowed;
  }
  EXPECT_GE(allowed, 990);
}

TEST(TokenBucketTest, DoubleRateDropsHalf) {
  TokenBucket tb(8000, 2000, 0);  // 1 MB/s
  int allowed = 0;
  TimeNs t = 0;
  for (int i = 0; i < 2000; ++i) {
    t += 500'000;  // 2 MB/s offered
    if (tb.allow(1000, t)) ++allowed;
  }
  EXPECT_NEAR(allowed, 1000, 30);
}

// --- ResTable ----------------------------------------------------------------

TEST(ResTableTest, InsertFindErase) {
  ResTable table(16);
  GatewayEntry e;
  e.resinfo.res_id = 5;
  EXPECT_TRUE(table.insert(5, e));
  ASSERT_NE(table.find(5), nullptr);
  EXPECT_EQ(table.find(5)->resinfo.res_id, 5u);
  EXPECT_EQ(table.find(6), nullptr);
  EXPECT_TRUE(table.erase(5));
  EXPECT_EQ(table.find(5), nullptr);
  EXPECT_FALSE(table.erase(5));
}

TEST(ResTableTest, RejectsReservedIds) {
  ResTable table(16);
  EXPECT_FALSE(table.insert(0, GatewayEntry{}));
  EXPECT_FALSE(table.insert(0xFFFFFFFF, GatewayEntry{}));
}

TEST(ResTableTest, GrowsUnderLoad) {
  ResTable table(4);
  const size_t initial_cap = table.capacity();
  for (ResId i = 1; i <= 1000; ++i) {
    GatewayEntry e;
    e.resinfo.res_id = i;
    ASSERT_TRUE(table.insert(i, e));
  }
  EXPECT_EQ(table.size(), 1000u);
  EXPECT_GT(table.capacity(), initial_cap);
  for (ResId i = 1; i <= 1000; ++i) {
    ASSERT_NE(table.find(i), nullptr) << i;
    EXPECT_EQ(table.find(i)->resinfo.res_id, i);
  }
}

TEST(ResTableTest, TombstonesDoNotBreakProbing) {
  ResTable table(8);
  for (ResId i = 1; i <= 50; ++i) table.insert(i, GatewayEntry{});
  for (ResId i = 1; i <= 50; i += 2) table.erase(i);
  for (ResId i = 2; i <= 50; i += 2) {
    EXPECT_NE(table.find(i), nullptr) << i;
  }
  for (ResId i = 1; i <= 50; i += 2) {
    EXPECT_EQ(table.find(i), nullptr) << i;
  }
  // Reinsertion reuses tombstones.
  for (ResId i = 1; i <= 50; i += 2) EXPECT_TRUE(table.insert(i, GatewayEntry{}));
  EXPECT_EQ(table.size(), 50u);
}

TEST(ResTableTest, RandomizedAgainstReference) {
  Rng rng(13);
  ResTable table(16);
  std::unordered_map<ResId, bool> reference;
  for (int i = 0; i < 5000; ++i) {
    const ResId id = static_cast<ResId>(1 + rng.below(300));
    if (rng.below(3) == 0) {
      EXPECT_EQ(table.erase(id), reference.erase(id) > 0);
    } else {
      GatewayEntry e;
      e.resinfo.res_id = id;
      table.insert(id, e);
      reference[id] = true;
    }
  }
  EXPECT_EQ(table.size(), reference.size());
  for (const auto& [id, _] : reference) EXPECT_NE(table.find(id), nullptr);
}

// --- DuplicateSuppression ------------------------------------------------------

TEST(BloomFilterTest, TestAndSet) {
  BloomFilter f(1 << 10, 4);
  EXPECT_FALSE(f.test(1, 3));
  EXPECT_FALSE(f.test_and_set(1, 3));
  EXPECT_TRUE(f.test(1, 3));
  EXPECT_TRUE(f.test_and_set(1, 3));
  f.clear();
  EXPECT_FALSE(f.test(1, 3));
}

TEST(BloomFilterTest, FalsePositiveRateNearPrediction) {
  const size_t bits = 1 << 14;
  const int k = 4;
  const size_t n = 1500;
  BloomFilter f(bits, k);
  Rng rng(3);
  for (size_t i = 0; i < n; ++i) {
    f.test_and_set(rng.next(), rng.next() | 1);
  }
  int fp = 0;
  const int probes = 20'000;
  for (int i = 0; i < probes; ++i) {
    if (f.test(rng.next(), rng.next() | 1)) ++fp;
  }
  const double measured = static_cast<double>(fp) / probes;
  const double predicted = BloomFilter::predicted_fpr(bits, k, n);
  EXPECT_LT(measured, predicted * 3 + 0.01);
}

TEST(DupSupTest, DetectsReplay) {
  DuplicateSuppression ds;
  const TimeNs now = 10 * kNsPerSec;
  EXPECT_EQ(ds.check(kSrcAs, 1, 100, now, now),
            DuplicateSuppression::Verdict::kFresh);
  EXPECT_EQ(ds.check(kSrcAs, 1, 100, now, now),
            DuplicateSuppression::Verdict::kDuplicate);
  EXPECT_EQ(ds.duplicates_seen(), 1u);
}

TEST(DupSupTest, DistinctTimestampsPass) {
  DuplicateSuppression ds;
  const TimeNs now = 10 * kNsPerSec;
  for (std::uint32_t ts = 1; ts <= 100; ++ts) {
    EXPECT_EQ(ds.check(kSrcAs, 1, ts, now, now),
              DuplicateSuppression::Verdict::kFresh);
  }
}

TEST(DupSupTest, RemembersAcrossOneRotation) {
  DupSupConfig cfg;
  cfg.window_ns = kNsPerSec;
  DuplicateSuppression ds(cfg);
  TimeNs t = 0;
  EXPECT_EQ(ds.check(kSrcAs, 1, 7, t, t), DuplicateSuppression::Verdict::kFresh);
  // After one rotation the identifier lives in the previous filter.
  t = kNsPerSec + 100;
  EXPECT_EQ(ds.check(kSrcAs, 1, 7, t, t),
            DuplicateSuppression::Verdict::kDuplicate);
}

TEST(DupSupTest, StalePacketsRejected) {
  DupSupConfig cfg;
  cfg.window_ns = kNsPerSec;
  DuplicateSuppression ds(cfg);
  const TimeNs now = 10 * kNsPerSec;
  // Timestamp 5 s old: beyond both windows.
  EXPECT_EQ(ds.check(kSrcAs, 1, 7, now - 5 * kNsPerSec, now),
            DuplicateSuppression::Verdict::kStale);
  EXPECT_EQ(ds.stale_seen(), 1u);
}

// --- OFD -----------------------------------------------------------------------

TEST(OfdTest, HonestFlowStaysClean) {
  OverUseFlowDetector ofd;
  // 1 Mbps reservation, sending exactly at rate: 125 B/ms.
  TimeNs t = 0;
  for (int i = 0; i < 2000; ++i) {
    t += 1'000'000;
    const auto v = ofd.update(kSrcAs, 1, 125, 1000, t);
    ASSERT_EQ(v, OverUseFlowDetector::Verdict::kOk) << "packet " << i;
  }
  EXPECT_EQ(ofd.watchlist_size(), 0u);
}

TEST(OfdTest, OveruserFlaggedThenConfirmed) {
  OverUseFlowDetector ofd;
  // 1 Mbps reservation, sending 10x: 1250 B/ms.
  TimeNs t = 0;
  bool flagged = false;
  bool confirmed = false;
  for (int i = 0; i < 5000 && !confirmed; ++i) {
    t += 1'000'000;
    const auto v = ofd.update(kSrcAs, 2, 1250, 1000, t);
    flagged |= v == OverUseFlowDetector::Verdict::kSuspicious;
    confirmed |= v == OverUseFlowDetector::Verdict::kOveruse;
  }
  EXPECT_TRUE(flagged);
  EXPECT_TRUE(confirmed);
  EXPECT_GE(ofd.confirmed_total(), 1u);
}

TEST(OfdTest, WatchedFlowWithinRatePasses) {
  OverUseFlowDetector ofd;
  TimeNs t = 0;
  // Force the flow onto the watchlist by bursting.
  for (int i = 0; i < 20000; ++i) {
    t += 100'000;
    if (ofd.update(kSrcAs, 3, 12500, 1000, t) !=
        OverUseFlowDetector::Verdict::kOk) {
      break;
    }
  }
  ASSERT_EQ(ofd.watchlist_size(), 1u);
  // Now behave: send at the reserved rate; after the bucket refills, the
  // verdicts must be kWatched (not kOveruse).
  t += 2 * kNsPerSec;
  int watched = 0;
  for (int i = 0; i < 100; ++i) {
    t += 1'000'000;
    if (ofd.update(kSrcAs, 3, 125, 1000, t) ==
        OverUseFlowDetector::Verdict::kWatched) {
      ++watched;
    }
  }
  EXPECT_GE(watched, 95);
}

TEST(OfdTest, ZeroBandwidthIsOveruse) {
  OverUseFlowDetector ofd;
  EXPECT_EQ(ofd.update(kSrcAs, 4, 100, 0, 0),
            OverUseFlowDetector::Verdict::kOveruse);
}

TEST(OfdTest, EpochRotationResetsSketch) {
  OfdConfig cfg;
  cfg.epoch_ns = kNsPerSec;
  OverUseFlowDetector ofd(cfg);
  ofd.update(kSrcAs, 5, 10000, 1000, 100);
  EXPECT_GT(ofd.estimate(kSrcAs, 5), 0.0);
  ofd.update(kSrcAs, 6, 100, 1000, 2 * kNsPerSec);  // triggers rotation
  EXPECT_NEAR(ofd.estimate(kSrcAs, 5), 0.0, 1e-9);
}

// --- Blocklist ------------------------------------------------------------------

TEST(BlocklistTest, BlockUnblock) {
  Blocklist bl;
  EXPECT_FALSE(bl.blocked(kSrcAs));
  bl.block(kSrcAs);
  EXPECT_TRUE(bl.blocked(kSrcAs));
  bl.unblock(kSrcAs);
  EXPECT_FALSE(bl.blocked(kSrcAs));
}

TEST(BlocklistTest, ReportBlocksAndLogs) {
  Blocklist bl;
  bl.report(OffenseReport{kSrcAs, 7, 123, 4567});
  EXPECT_TRUE(bl.blocked(kSrcAs));
  ASSERT_EQ(bl.reports().size(), 1u);
  EXPECT_EQ(bl.reports()[0].reservation, 7u);
  const auto drained = bl.drain_reports();
  EXPECT_EQ(drained.size(), 1u);
  EXPECT_TRUE(bl.reports().empty());
}

// --- Gateway + BorderRouter end-to-end -------------------------------------------

class DataPathTest : public ::testing::Test {
 protected:
  DataPathTest()
      : gateway_(kSrcAs, clock_),
        router_src_(kSrcAs, key_of(1), clock_),
        router_mid_(kMidAs, key_of(2), clock_),
        router_dst_(kDstAs, key_of(3), clock_) {
    clock_.set(100 * kNsPerSec);
    resinfo_.src_as = kSrcAs;
    resinfo_.res_id = 42;
    resinfo_.bw_kbps = 100'000;
    resinfo_.exp_time = 200;
    resinfo_.version = 1;
    eerinfo_.src_host = HostAddr::from_u64(0xAAA);
    eerinfo_.dst_host = HostAddr::from_u64(0xBBB);
    path_ = {topology::Hop{kSrcAs, kNoInterface, 1},
             topology::Hop{kMidAs, 2, 3},
             topology::Hop{kDstAs, 4, kNoInterface}};
    install();
  }

  void install() {
    // σ_i computed by each on-path AS from its own key (Eq. 4) — here
    // built directly, standing in for the control-plane exchange.
    std::vector<HopAuth> sigmas;
    const drkey::Key128 keys[] = {key_of(1), key_of(2), key_of(3)};
    for (size_t i = 0; i < path_.size(); ++i) {
      crypto::Aes128 cipher(keys[i].bytes.data());
      sigmas.push_back(compute_hopauth(cipher, resinfo_, eerinfo_,
                                       path_[i].ingress, path_[i].egress));
    }
    ASSERT_TRUE(gateway_.install(resinfo_, eerinfo_, path_, sigmas));
  }

  SimClock clock_;
  dataplane::Gateway gateway_;
  BorderRouter router_src_;
  BorderRouter router_mid_;
  BorderRouter router_dst_;
  proto::ResInfo resinfo_;
  proto::EerInfo eerinfo_;
  std::vector<topology::Hop> path_;
};

TEST_F(DataPathTest, PacketTraversesAllRouters) {
  FastPacket pkt;
  ASSERT_EQ(gateway_.process(42, 500, pkt), Gateway::Verdict::kOk);
  EXPECT_EQ(pkt.current_hop, 0);
  EXPECT_EQ(router_src_.process(pkt), BorderRouter::Verdict::kForward);
  EXPECT_EQ(pkt.current_hop, 1);
  EXPECT_EQ(router_mid_.process(pkt), BorderRouter::Verdict::kForward);
  EXPECT_EQ(pkt.current_hop, 2);
  EXPECT_EQ(router_dst_.process(pkt), BorderRouter::Verdict::kDeliver);
  EXPECT_EQ(router_dst_.stats().delivered, 1u);
}

TEST_F(DataPathTest, UnknownReservationRejectedAtGateway) {
  FastPacket pkt;
  EXPECT_EQ(gateway_.process(99, 100, pkt), Gateway::Verdict::kNoReservation);
}

TEST_F(DataPathTest, TamperedHvfRejected) {
  FastPacket pkt;
  ASSERT_EQ(gateway_.process(42, 500, pkt), Gateway::Verdict::kOk);
  pkt.hvfs[0][0] ^= 1;
  EXPECT_EQ(router_src_.process(pkt), BorderRouter::Verdict::kBadHvf);
}

TEST_F(DataPathTest, TamperedSizeRejected) {
  // PktSize is authenticated (Eq. 6): shrinking the claimed payload to
  // cheat the monitors breaks the MAC.
  FastPacket pkt;
  ASSERT_EQ(gateway_.process(42, 500, pkt), Gateway::Verdict::kOk);
  pkt.payload_bytes = 5;
  EXPECT_EQ(router_src_.process(pkt), BorderRouter::Verdict::kBadHvf);
}

TEST_F(DataPathTest, TamperedBandwidthRejected) {
  FastPacket pkt;
  ASSERT_EQ(gateway_.process(42, 500, pkt), Gateway::Verdict::kOk);
  pkt.resinfo.bw_kbps *= 2;  // claim a bigger reservation
  EXPECT_EQ(router_src_.process(pkt), BorderRouter::Verdict::kBadHvf);
}

TEST_F(DataPathTest, TamperedHostsRejected) {
  FastPacket pkt;
  ASSERT_EQ(gateway_.process(42, 500, pkt), Gateway::Verdict::kOk);
  pkt.eerinfo.dst_host = HostAddr::from_u64(0xCCC);
  EXPECT_EQ(router_src_.process(pkt), BorderRouter::Verdict::kBadHvf);
}

TEST_F(DataPathTest, WrongInterfacesRejected) {
  // Path splicing: rerouting the packet over different interfaces breaks
  // σ_i, which binds (In_i, Eg_i).
  FastPacket pkt;
  ASSERT_EQ(gateway_.process(42, 500, pkt), Gateway::Verdict::kOk);
  pkt.ifaces[0].eg = 9;
  EXPECT_EQ(router_src_.process(pkt), BorderRouter::Verdict::kBadHvf);
}

TEST_F(DataPathTest, ExpiredReservationRejected) {
  FastPacket pkt;
  ASSERT_EQ(gateway_.process(42, 500, pkt), Gateway::Verdict::kOk);
  clock_.set(static_cast<TimeNs>(resinfo_.exp_time) * kNsPerSec + 1);
  EXPECT_EQ(router_src_.process(pkt), BorderRouter::Verdict::kExpired);
  // And the gateway refuses to emit more.
  FastPacket pkt2;
  EXPECT_EQ(gateway_.process(42, 500, pkt2), Gateway::Verdict::kExpired);
}

TEST_F(DataPathTest, GatewayRateLimitsOveruse) {
  // 100 Mbps reservation; try to push ~10x for long enough to exhaust
  // the burst allowance (0.125 s of the rate).
  int ok = 0, limited = 0;
  for (int i = 0; i < 5000; ++i) {
    FastPacket pkt;
    const auto v = gateway_.process(42, 1400, pkt);
    ok += v == Gateway::Verdict::kOk;
    limited += v == Gateway::Verdict::kRateLimited;
    clock_.advance(10'000);  // 1.12 Gbps offered
  }
  EXPECT_GT(limited, 0);
  EXPECT_GT(ok, 0);
  EXPECT_EQ(gateway_.stats().rate_limited, static_cast<std::uint64_t>(limited));
}

TEST_F(DataPathTest, MalformedPacketsRejected) {
  FastPacket pkt;
  pkt.num_hops = 0;
  EXPECT_EQ(router_src_.process(pkt), BorderRouter::Verdict::kMalformed);
  pkt.num_hops = kMaxHops + 1;
  EXPECT_EQ(router_src_.process(pkt), BorderRouter::Verdict::kMalformed);
  pkt.num_hops = 2;
  pkt.current_hop = 2;
  EXPECT_EQ(router_src_.process(pkt), BorderRouter::Verdict::kMalformed);
}

TEST_F(DataPathTest, BlocklistedSourceDropped) {
  Blocklist bl;
  router_mid_.attach_blocklist(&bl);
  bl.block(kSrcAs);
  FastPacket pkt;
  ASSERT_EQ(gateway_.process(42, 500, pkt), Gateway::Verdict::kOk);
  ASSERT_EQ(router_src_.process(pkt), BorderRouter::Verdict::kForward);
  EXPECT_EQ(router_mid_.process(pkt), BorderRouter::Verdict::kBlocked);
}

TEST_F(DataPathTest, ReplayDetectedAtRouter) {
  DuplicateSuppression ds;
  router_mid_.attach_dupsup(&ds);
  FastPacket pkt;
  ASSERT_EQ(gateway_.process(42, 500, pkt), Gateway::Verdict::kOk);
  ASSERT_EQ(router_src_.process(pkt), BorderRouter::Verdict::kForward);
  FastPacket replayed = pkt;  // on-path adversary captures a copy
  EXPECT_EQ(router_mid_.process(pkt), BorderRouter::Verdict::kForward);
  EXPECT_EQ(router_mid_.process(replayed), BorderRouter::Verdict::kReplay);
}

TEST_F(DataPathTest, SegRControlPacketValidated) {
  // SegR packets carry the static token of Eq. 3.
  FastPacket pkt;
  pkt.type = proto::PacketType::kSegRenewal;
  pkt.is_eer = false;
  pkt.num_hops = 3;
  pkt.current_hop = 0;
  pkt.resinfo = resinfo_;
  for (size_t i = 0; i < path_.size(); ++i) {
    pkt.ifaces[i] = IfPair{path_[i].ingress, path_[i].egress};
  }
  crypto::Aes128 src_cipher(key_of(1).bytes.data());
  pkt.hvfs[0] = compute_seg_hvf(src_cipher, resinfo_, path_[0].ingress,
                                path_[0].egress);
  EXPECT_EQ(router_src_.process(pkt), BorderRouter::Verdict::kForward);

  // A forged token fails.
  pkt.current_hop = 0;
  pkt.hvfs[0][1] ^= 0xFF;
  EXPECT_EQ(router_src_.process(pkt), BorderRouter::Verdict::kBadHvf);
}

TEST_F(DataPathTest, BurstProcessingMatchesSingle) {
  constexpr size_t kBurst = 32;
  ResId ids[kBurst];
  std::uint32_t sizes[kBurst];
  FastPacket pkts[kBurst];
  Gateway::Verdict verdicts[kBurst];
  for (size_t i = 0; i < kBurst; ++i) {
    ids[i] = 42;
    sizes[i] = 100;
  }
  const size_t ok = gateway_.process_burst(ids, sizes, kBurst, pkts, verdicts);
  EXPECT_EQ(ok, kBurst);

  BorderRouter::Verdict rv[kBurst];
  router_src_.process_burst(pkts, kBurst, rv);
  for (size_t i = 0; i < kBurst; ++i) {
    EXPECT_EQ(rv[i], BorderRouter::Verdict::kForward) << i;
  }
}

TEST_F(DataPathTest, FastPacketConversionRoundTrip) {
  FastPacket pkt;
  ASSERT_EQ(gateway_.process(42, 64, pkt), Gateway::Verdict::kOk);
  const proto::Packet p = to_packet(pkt);
  EXPECT_EQ(p.wire_size(), pkt.wire_size());
  const FastPacket back = to_fast(p);
  EXPECT_EQ(back.resinfo, pkt.resinfo);
  EXPECT_EQ(back.timestamp, pkt.timestamp);
  EXPECT_EQ(back.num_hops, pkt.num_hops);
  for (size_t i = 0; i < pkt.num_hops; ++i) {
    EXPECT_EQ(back.hvfs[i], pkt.hvfs[i]);
  }
  // The converted packet still verifies at the router.
  FastPacket verify = back;
  EXPECT_EQ(router_src_.process(verify), BorderRouter::Verdict::kForward);
}

TEST_F(DataPathTest, GatewayRemoveStopsTraffic) {
  EXPECT_TRUE(gateway_.remove(42));
  FastPacket pkt;
  EXPECT_EQ(gateway_.process(42, 100, pkt), Gateway::Verdict::kNoReservation);
}

TEST_F(DataPathTest, TimestampsUniquePerPacket) {
  FastPacket a, b;
  ASSERT_EQ(gateway_.process(42, 100, a), Gateway::Verdict::kOk);
  clock_.advance(1000);  // > one 2^-22 s tick? No: 1 µs > 238 ns tick.
  ASSERT_EQ(gateway_.process(42, 100, b), Gateway::Verdict::kOk);
  EXPECT_NE(a.timestamp, b.timestamp);
}

}  // namespace
}  // namespace colibri::dataplane
