// Unit tests: identifiers, byte codecs, clocks, timestamps, RNG.
#include <gtest/gtest.h>

#include <string>
#include <type_traits>

#include "colibri/common/bytes.hpp"
#include "colibri/common/clock.hpp"
#include "colibri/common/errors.hpp"
#include "colibri/common/ids.hpp"
#include "colibri/common/rand.hpp"

namespace colibri {
namespace {

TEST(AsIdTest, PacksIsdAndAsNumber) {
  const AsId id{3, 0xABCDEF};
  EXPECT_EQ(id.isd(), 3);
  EXPECT_EQ(id.as_number(), 0xABCDEFu);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(AsId::from_raw(id.raw()), id);
}

TEST(AsIdTest, ZeroIsInvalid) {
  EXPECT_FALSE(AsId{}.valid());
  EXPECT_FALSE(AsId::from_raw(0).valid());
}

TEST(AsIdTest, AsNumberMasksTo48Bits) {
  const AsId id{1, 0xFFFF'FFFF'FFFF'FFFFULL};
  EXPECT_EQ(id.as_number(), 0xFFFF'FFFF'FFFFULL);
  EXPECT_EQ(id.isd(), 1);
}

TEST(AsIdTest, ToStringFormat) {
  EXPECT_EQ((AsId{2, 42}).to_string(), "2-42");
}

TEST(HostAddrTest, U64RoundTrip) {
  const auto h = HostAddr::from_u64(0x1122334455667788ULL);
  EXPECT_EQ(h.low_u64(), 0x1122334455667788ULL);
}

TEST(HostAddrTest, DistinctValuesDiffer) {
  EXPECT_NE(HostAddr::from_u64(1), HostAddr::from_u64(2));
}

TEST(ResKeyTest, EqualityAndHash) {
  const ResKey a{AsId{1, 5}, 7};
  const ResKey b{AsId{1, 5}, 7};
  const ResKey c{AsId{1, 5}, 8};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(std::hash<ResKey>{}(a), std::hash<ResKey>{}(b));
}

TEST(BytesTest, PutGetLeRoundTrip) {
  Bytes out;
  put_le<std::uint16_t>(out, 0xBEEF);
  put_le<std::uint32_t>(out, 0xDEADBEEF);
  put_le<std::uint64_t>(out, 0x0123456789ABCDEFULL);
  ASSERT_EQ(out.size(), 14u);
  EXPECT_EQ(get_le<std::uint16_t>(out.data()), 0xBEEF);
  EXPECT_EQ(get_le<std::uint32_t>(out.data() + 2), 0xDEADBEEFu);
  EXPECT_EQ(get_le<std::uint64_t>(out.data() + 6), 0x0123456789ABCDEFULL);
}

TEST(ByteReaderTest, ReadsSequentially) {
  Bytes data;
  put_le<std::uint32_t>(data, 42);
  put_le<std::uint8_t>(data, 7);
  ByteReader r(data);
  EXPECT_EQ(r.read<std::uint32_t>(), 42u);
  EXPECT_EQ(r.read<std::uint8_t>(), 7);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReaderTest, OverreadMarksBad) {
  Bytes data{1, 2};
  ByteReader r(data);
  EXPECT_EQ(r.read<std::uint32_t>(), 0u);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
  // Subsequent reads stay zero and bad.
  EXPECT_EQ(r.read<std::uint8_t>(), 0);
  EXPECT_FALSE(r.ok());
}

TEST(ByteReaderTest, ReadBytesZeroesOnFailure) {
  Bytes data{1};
  ByteReader r(data);
  std::uint8_t buf[4] = {9, 9, 9, 9};
  EXPECT_FALSE(r.read_bytes(buf, 4));
  for (auto b : buf) EXPECT_EQ(b, 0);
}

TEST(HexTest, Encodes) {
  const Bytes data{0x00, 0xFF, 0xA5};
  EXPECT_EQ(to_hex(data), "00ffa5");
}

TEST(SimClockTest, AdvanceAndSkew) {
  SimClock c(100);
  EXPECT_EQ(c.now_ns(), 100);
  c.advance(50);
  EXPECT_EQ(c.now_ns(), 150);
  c.set_skew(25);
  EXPECT_EQ(c.now_ns(), 175);
  EXPECT_EQ(c.raw(), 150);
}

TEST(SystemClockTest, Monotonic) {
  auto& c = SystemClock::instance();
  const TimeNs a = c.now_ns();
  const TimeNs b = c.now_ns();
  EXPECT_LE(a, b);
}

TEST(PacketTimestampTest, EncodesBackwardFromExpiry) {
  const UnixSec exp = 1000;
  const TimeNs t1 = 990 * kNsPerSec;
  const TimeNs t2 = 995 * kNsPerSec;
  const auto ts1 = PacketTimestamp::encode(t1, exp);
  const auto ts2 = PacketTimestamp::encode(t2, exp);
  // Later packets are closer to expiry: smaller tick count.
  EXPECT_GT(ts1, ts2);
}

TEST(PacketTimestampTest, DecodeInvertsEncodeWithinTick) {
  const UnixSec exp = 2000;
  const TimeNs t = 1987 * kNsPerSec + 123'456;
  const auto ts = PacketTimestamp::encode(t, exp);
  const TimeNs decoded = PacketTimestamp::decode(ts, exp);
  EXPECT_NEAR(static_cast<double>(decoded), static_cast<double>(t), 300.0);
}

TEST(PacketTimestampTest, ClampsPastExpiry) {
  EXPECT_EQ(PacketTimestamp::encode(2001 * kNsPerSec, 2000), 0u);
}

TEST(PacketTimestampTest, SubTickResolutionIsUnique) {
  // Two packets ≥1 tick (~238 ns) apart must get distinct timestamps.
  const UnixSec exp = 100;
  const TimeNs base = 50 * kNsPerSec;
  const auto a = PacketTimestamp::encode(base, exp);
  const auto b = PacketTimestamp::encode(base + 240, exp);
  EXPECT_NE(a, b);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, FillCoversAllBytes) {
  Rng rng(3);
  std::uint8_t buf[37] = {};
  rng.fill(buf, sizeof(buf));
  int nonzero = 0;
  for (auto b : buf) nonzero += b != 0;
  EXPECT_GT(nonzero, 20);  // all-zero would be astronomically unlikely
}

TEST(ErrcTest, NamesAreStable) {
  EXPECT_STREQ(errc_name(Errc::kOk), "ok");
  EXPECT_STREQ(errc_name(Errc::kBandwidthUnavailable),
               "bandwidth-unavailable");
  EXPECT_STREQ(errc_name(Errc::kReplay), "replay");
}

TEST(ResultTest, HoldsValueOrError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.error(), Errc::kOk);

  Result<int> err(Errc::kExpired);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error(), Errc::kExpired);
}

TEST(ResultTest, VoidSpecialization) {
  Result<void> ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.error(), Errc::kOk);

  Result<void> err(Errc::kPolicyDenied);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error(), Errc::kPolicyDenied);

  // kOk through the error constructor still means success.
  Result<void> ok2(Errc::kOk);
  EXPECT_TRUE(ok2.ok());
}

TEST(ResultTest, ErrorContextCarriesBottleneckLocation) {
  Result<int> plain(Errc::kBandwidthUnavailable);
  EXPECT_TRUE(plain.error_context().empty());

  Result<int> located(Errc::kBandwidthUnavailable, "at 1-110 (hop 2)");
  EXPECT_FALSE(located.ok());
  EXPECT_EQ(located.error_context(), "at 1-110 (hop 2)");

  auto annotated = Result<int>(Errc::kExpired).with_context("renewal window");
  EXPECT_EQ(annotated.error(), Errc::kExpired);
  EXPECT_EQ(annotated.error_context(), "renewal window");

  // with_context on a success value is a no-op.
  auto still_ok = Result<int>(7).with_context("ignored");
  EXPECT_TRUE(still_ok.ok());
  EXPECT_EQ(still_ok.value(), 7);
}

TEST(ResultTest, MapTransformsValueAndPropagatesError) {
  auto doubled = Result<int>(21).map([](int v) { return v * 2; });
  EXPECT_TRUE(doubled.ok());
  EXPECT_EQ(doubled.value(), 42);

  auto err = Result<int>(Errc::kExpired, "ctx").map([](int v) { return v * 2; });
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error(), Errc::kExpired);
  EXPECT_EQ(err.error_context(), "ctx");

  // map to a different type, and map to void.
  auto str = Result<int>(5).map([](int v) { return std::to_string(v); });
  EXPECT_EQ(str.value(), "5");
  int observed = 0;
  auto voided = Result<int>(9).map([&](int v) { observed = v; });
  static_assert(std::is_same_v<decltype(voided), Result<void>>);
  EXPECT_TRUE(voided.ok());
  EXPECT_EQ(observed, 9);

  // Result<void>::map chains into a value-producing stage.
  auto from_void = Result<void>().map([] { return 3; });
  EXPECT_EQ(from_void.value(), 3);
}

TEST(ResultTest, AndThenChainsShortCircuitingOnError) {
  auto chain = Result<int>(10).and_then([](int v) -> Result<std::string> {
    if (v > 5) return std::string("big");
    return {Errc::kMalformed};
  });
  EXPECT_TRUE(chain.ok());
  EXPECT_EQ(chain.value(), "big");

  auto failed = Result<int>(2).and_then([](int v) -> Result<std::string> {
    if (v > 5) return std::string("big");
    return {Errc::kMalformed, "too small"};
  });
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.error(), Errc::kMalformed);
  EXPECT_EQ(failed.error_context(), "too small");

  // Error short-circuits: the continuation must not run.
  bool ran = false;
  auto skipped = Result<int>(Errc::kExpired).and_then([&](int) -> Result<int> {
    ran = true;
    return 1;
  });
  EXPECT_FALSE(ran);
  EXPECT_EQ(skipped.error(), Errc::kExpired);

  // Result<void>::and_then.
  auto vchain = Result<void>().and_then([]() -> Result<int> { return 11; });
  EXPECT_EQ(vchain.value(), 11);
}

TEST(ResultTest, OveruseErrcHasName) {
  EXPECT_STREQ(errc_name(Errc::kOveruse), "overuse");
}

}  // namespace
}  // namespace colibri
