#!/usr/bin/env python3
"""Benchmark regression gate.

Compares the BENCH_*.json files a benchmark run emitted (see
bench/bench_json.hpp for the schema) against the committed baselines in
bench/baselines/.  A result regresses when its throughput drops below
(1 - tolerance) x baseline or a latency percentile rises above
(1 + tolerance) x baseline.

Only benchmarks with a committed baseline are gated: a new bench binary
is not a regression, it just is not protected until its baseline is
seeded with --write-baselines.  A baseline whose BENCH file or result
row disappeared from the current run *is* an error -- silently losing
coverage is how gates rot.

Every gated row is printed in a PASS/FAIL summary table, and --report
writes the same verdicts as machine-readable JSON for tooling to
consume.  --self-test runs the gate against synthetic fixtures in a
temp directory and needs no benchmark run at all (CI runs it first, so
a broken gate fails loudly instead of waving regressions through).

  scripts/check_bench.py --current build/bench             # gate
  scripts/check_bench.py --current build/bench \
      --write-baselines                                    # (re)seed
  scripts/check_bench.py --current build/bench --tolerance 0.5
  scripts/check_bench.py --current build/bench \
      --report build/bench_gate_report.json
  scripts/check_bench.py --self-test

Exit codes: 0 all gated results within tolerance, 1 regression or
missing coverage, 2 usage / IO error.
"""

import argparse
import json
import os
import shutil
import sys
import tempfile

DEFAULT_TOLERANCE = 0.35  # fraction; generous because CI machines vary


def load_results(path):
    """BENCH_*.json -> {result name: {ops_per_sec, p50_ns, p99_ns}}."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    for row in doc.get("results", []):
        out[row["name"]] = {
            "ops_per_sec": float(row.get("ops_per_sec", 0)),
            "p50_ns": float(row.get("p50_ns", 0)),
            "p99_ns": float(row.get("p99_ns", 0)),
        }
    return out


def bench_files(directory):
    return sorted(
        f for f in os.listdir(directory)
        if f.startswith("BENCH_") and f.endswith(".json")
    )


def check_file(name, baseline, current, tolerance):
    """Gates one benchmark file.

    Returns a list of row verdicts: {file, result, status, reasons,
    metrics: {metric: {baseline, current, limit}}}.  status is "pass",
    "fail", or "missing" (baseline row absent from the current run).
    """
    rows = []
    for result, base in sorted(baseline.items()):
        row = {"file": name, "result": result, "status": "pass",
               "reasons": [], "metrics": {}}
        cur = current.get(result)
        if cur is None:
            row["status"] = "missing"
            row["reasons"].append(
                "present in baseline but missing from the current run")
            rows.append(row)
            continue
        # Throughput must not drop.
        if base["ops_per_sec"] > 0:
            floor = base["ops_per_sec"] * (1 - tolerance)
            row["metrics"]["ops_per_sec"] = {
                "baseline": base["ops_per_sec"],
                "current": cur["ops_per_sec"],
                "limit": floor,
            }
            if cur["ops_per_sec"] < floor:
                row["status"] = "fail"
                row["reasons"].append(
                    f"ops_per_sec {cur['ops_per_sec']:.4g} < floor "
                    f"{floor:.4g} (baseline {base['ops_per_sec']:.4g})")
        # Latency percentiles must not rise.
        for pct in ("p50_ns", "p99_ns"):
            if base[pct] <= 0:
                continue
            ceiling = base[pct] * (1 + tolerance)
            row["metrics"][pct] = {
                "baseline": base[pct],
                "current": cur[pct],
                "limit": ceiling,
            }
            if cur[pct] > ceiling:
                row["status"] = "fail"
                row["reasons"].append(
                    f"{pct} {cur[pct]:.4g} > ceiling {ceiling:.4g} "
                    f"(baseline {base[pct]:.4g})")
        rows.append(row)
    return rows


def print_summary(rows, tolerance):
    """Per-row PASS/FAIL table on stdout."""
    if not rows:
        return
    width = max(len(f"{r['file']}:{r['result']}") for r in rows)
    print(f"benchmark gate (tolerance {tolerance:.0%}):")
    for r in rows:
        label = f"{r['file']}:{r['result']}"
        status = r["status"].upper()
        if r["status"] == "pass":
            ops = r["metrics"].get("ops_per_sec")
            detail = (f"ops/s {ops['current']:.4g} "
                      f"(floor {ops['limit']:.4g})" if ops else "")
        else:
            detail = "; ".join(r["reasons"])
        print(f"  {status:7s} {label:<{width}}  {detail}")


def run_gate(args):
    """The gate proper; returns the process exit code."""
    if not os.path.isdir(args.current):
        print(f"check_bench: current dir not found: {args.current}",
              file=sys.stderr)
        return 2
    if not (0 <= args.tolerance < 10):
        print(f"check_bench: implausible tolerance {args.tolerance}",
              file=sys.stderr)
        return 2

    if args.write_baselines:
        os.makedirs(args.baselines, exist_ok=True)
        copied = bench_files(args.current)
        if not copied:
            print(f"check_bench: no BENCH_*.json in {args.current}",
                  file=sys.stderr)
            return 2
        for f in copied:
            shutil.copyfile(os.path.join(args.current, f),
                            os.path.join(args.baselines, f))
            print(f"seeded baseline {f}")
        return 0

    if not os.path.isdir(args.baselines):
        print(f"check_bench: baseline dir not found: {args.baselines}",
              file=sys.stderr)
        return 2
    gated = bench_files(args.baselines)
    if not gated:
        print(f"check_bench: no baselines in {args.baselines}",
              file=sys.stderr)
        return 2

    rows = []
    missing_files = []
    for f in gated:
        cur_path = os.path.join(args.current, f)
        if not os.path.isfile(cur_path):
            missing_files.append(f)
            rows.append({"file": f, "result": "*", "status": "missing",
                         "reasons": ["baseline exists but the current run "
                                     "did not emit it"], "metrics": {}})
            continue
        baseline = load_results(os.path.join(args.baselines, f))
        current = load_results(cur_path)
        rows.extend(check_file(f, baseline, current, args.tolerance))

    bad = [r for r in rows if r["status"] != "pass"]
    print_summary(rows, args.tolerance)

    if args.report:
        report = {
            "tolerance": args.tolerance,
            "baselines": args.baselines,
            "current": args.current,
            "checked": len(rows),
            "failed": len(bad),
            "ok": not bad,
            "rows": rows,
        }
        with open(args.report, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=1)
            f.write("\n")
        print(f"wrote {args.report}")

    if bad:
        print(f"check_bench: {len(bad)} violation(s):", file=sys.stderr)
        for r in bad:
            for reason in r["reasons"]:
                print(f"  {r['file']}: {r['result']}: {reason}",
                      file=sys.stderr)
        return 1
    print(f"check_bench: {len(rows)} gated result(s) across {len(gated)} "
          f"benchmark(s) within {args.tolerance:.0%} of baseline")
    return 0


def self_test():
    """Gates synthetic fixtures; returns 0 when every case behaves."""

    def bench_doc(rows):
        return {"results": [
            {"name": n, "ops_per_sec": ops, "p50_ns": p50, "p99_ns": p99}
            for (n, ops, p50, p99) in rows]}

    def write_doc(directory, name, rows):
        with open(os.path.join(directory, name), "w", encoding="utf-8") as f:
            json.dump(bench_doc(rows), f)

    def gate(base_dir, cur_dir, report=None, write=False, tolerance=0.35):
        args = argparse.Namespace(
            baselines=base_dir, current=cur_dir, tolerance=tolerance,
            write_baselines=write, report=report)
        return run_gate(args)

    failures = []

    def expect(case, got, want):
        if got != want:
            failures.append(f"{case}: exit {got}, want {want}")

    with tempfile.TemporaryDirectory(prefix="check_bench_selftest_") as tmp:
        base = os.path.join(tmp, "baselines")
        cur = os.path.join(tmp, "current")
        os.makedirs(base)
        os.makedirs(cur)
        rows = [("BM_X/1", 1000.0, 100.0, 200.0),
                ("ratio_row", 1.05, 0.0, 0.0)]

        # Identical run passes and the report says so.
        write_doc(base, "BENCH_x.json", rows)
        write_doc(cur, "BENCH_x.json", rows)
        report = os.path.join(tmp, "report.json")
        expect("pass", gate(base, cur, report=report), 0)
        with open(report, encoding="utf-8") as f:
            doc = json.load(f)
        if not doc["ok"] or doc["failed"] != 0 or doc["checked"] != 2:
            failures.append(f"pass: bad report {doc}")

        # Throughput collapse fails and the report carries the verdict.
        write_doc(cur, "BENCH_x.json",
                  [("BM_X/1", 100.0, 100.0, 200.0), rows[1]])
        expect("regression", gate(base, cur, report=report), 1)
        with open(report, encoding="utf-8") as f:
            doc = json.load(f)
        bad = [r for r in doc["rows"] if r["status"] == "fail"]
        if doc["ok"] or len(bad) != 1 or bad[0]["result"] != "BM_X/1":
            failures.append(f"regression: bad report {doc}")

        # Latency blow-up alone also fails.
        write_doc(cur, "BENCH_x.json",
                  [("BM_X/1", 1000.0, 100.0, 2000.0), rows[1]])
        expect("latency", gate(base, cur), 1)

        # A vanished result row fails; a vanished BENCH file fails.
        write_doc(cur, "BENCH_x.json", [rows[0]])
        expect("missing-row", gate(base, cur), 1)
        os.remove(os.path.join(cur, "BENCH_x.json"))
        expect("missing-file", gate(base, cur), 1)

        # Slack within tolerance passes.
        write_doc(cur, "BENCH_x.json",
                  [("BM_X/1", 800.0, 120.0, 250.0), rows[1]])
        expect("within-tolerance", gate(base, cur), 0)

        # --write-baselines seeds, after which the gate passes.
        base2 = os.path.join(tmp, "baselines2")
        expect("seed", gate(base2, cur, write=True), 0)
        expect("seeded-pass", gate(base2, cur), 0)

    if failures:
        print("check_bench --self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("check_bench --self-test: all cases behave")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baselines", default="bench/baselines",
                    help="directory of committed baseline BENCH_*.json")
    ap.add_argument("--current",
                    help="directory the benchmark run wrote BENCH_*.json to")
    ap.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                    help="allowed fractional slack (default %(default)s)")
    ap.add_argument("--write-baselines", action="store_true",
                    help="copy the current BENCH_*.json over the baselines "
                         "instead of gating")
    ap.add_argument("--report", metavar="PATH",
                    help="also write the row verdicts as JSON to PATH")
    ap.add_argument("--self-test", action="store_true",
                    help="gate synthetic fixtures in a temp dir and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.current:
        ap.error("--current is required (or use --self-test)")
    return run_gate(args)


if __name__ == "__main__":
    sys.exit(main())
