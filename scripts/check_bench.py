#!/usr/bin/env python3
"""Benchmark regression gate.

Compares the BENCH_*.json files a benchmark run emitted (see
bench/bench_json.hpp for the schema) against the committed baselines in
bench/baselines/.  A result regresses when its throughput drops below
(1 - tolerance) x baseline or a latency percentile rises above
(1 + tolerance) x baseline.

Only benchmarks with a committed baseline are gated: a new bench binary
is not a regression, it just is not protected until its baseline is
seeded with --write-baselines.  A baseline whose BENCH file or result
row disappeared from the current run *is* an error -- silently losing
coverage is how gates rot.

  scripts/check_bench.py --current build/bench             # gate
  scripts/check_bench.py --current build/bench \
      --write-baselines                                    # (re)seed
  scripts/check_bench.py --current build/bench --tolerance 0.5

Exit codes: 0 all gated results within tolerance, 1 regression or
missing coverage, 2 usage / IO error.
"""

import argparse
import json
import os
import shutil
import sys

DEFAULT_TOLERANCE = 0.35  # fraction; generous because CI machines vary


def load_results(path):
    """BENCH_*.json -> {result name: {ops_per_sec, p50_ns, p99_ns}}."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    for row in doc.get("results", []):
        out[row["name"]] = {
            "ops_per_sec": float(row.get("ops_per_sec", 0)),
            "p50_ns": float(row.get("p50_ns", 0)),
            "p99_ns": float(row.get("p99_ns", 0)),
        }
    return out


def bench_files(directory):
    return sorted(
        f for f in os.listdir(directory)
        if f.startswith("BENCH_") and f.endswith(".json")
    )


def check_file(name, baseline, current, tolerance):
    """Returns a list of violation strings for one benchmark file."""
    violations = []
    for result, base in sorted(baseline.items()):
        cur = current.get(result)
        if cur is None:
            violations.append(
                f"{name}: result '{result}' present in baseline but missing "
                f"from the current run")
            continue
        # Throughput must not drop.
        if base["ops_per_sec"] > 0:
            floor = base["ops_per_sec"] * (1 - tolerance)
            if cur["ops_per_sec"] < floor:
                violations.append(
                    f"{name}: {result}: ops_per_sec {cur['ops_per_sec']:.4g} "
                    f"< {floor:.4g} (baseline {base['ops_per_sec']:.4g}, "
                    f"tolerance {tolerance:.0%})")
        # Latency percentiles must not rise.
        for pct in ("p50_ns", "p99_ns"):
            if base[pct] <= 0:
                continue
            ceiling = base[pct] * (1 + tolerance)
            if cur[pct] > ceiling:
                violations.append(
                    f"{name}: {result}: {pct} {cur[pct]:.4g} > "
                    f"{ceiling:.4g} (baseline {base[pct]:.4g}, "
                    f"tolerance {tolerance:.0%})")
    return violations


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baselines", default="bench/baselines",
                    help="directory of committed baseline BENCH_*.json")
    ap.add_argument("--current", required=True,
                    help="directory the benchmark run wrote BENCH_*.json to")
    ap.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                    help="allowed fractional slack (default %(default)s)")
    ap.add_argument("--write-baselines", action="store_true",
                    help="copy the current BENCH_*.json over the baselines "
                         "instead of gating")
    args = ap.parse_args()

    if not os.path.isdir(args.current):
        print(f"check_bench: current dir not found: {args.current}",
              file=sys.stderr)
        return 2
    if not (0 <= args.tolerance < 10):
        print(f"check_bench: implausible tolerance {args.tolerance}",
              file=sys.stderr)
        return 2

    if args.write_baselines:
        os.makedirs(args.baselines, exist_ok=True)
        copied = bench_files(args.current)
        if not copied:
            print(f"check_bench: no BENCH_*.json in {args.current}",
                  file=sys.stderr)
            return 2
        for f in copied:
            shutil.copyfile(os.path.join(args.current, f),
                            os.path.join(args.baselines, f))
            print(f"seeded baseline {f}")
        return 0

    if not os.path.isdir(args.baselines):
        print(f"check_bench: baseline dir not found: {args.baselines}",
              file=sys.stderr)
        return 2
    gated = bench_files(args.baselines)
    if not gated:
        print(f"check_bench: no baselines in {args.baselines}",
              file=sys.stderr)
        return 2

    violations = []
    checked = 0
    for f in gated:
        cur_path = os.path.join(args.current, f)
        if not os.path.isfile(cur_path):
            violations.append(
                f"{f}: baseline exists but the current run did not emit it")
            continue
        baseline = load_results(os.path.join(args.baselines, f))
        current = load_results(cur_path)
        violations.extend(check_file(f, baseline, current, args.tolerance))
        checked += len(baseline)

    if violations:
        print(f"check_bench: {len(violations)} violation(s):",
              file=sys.stderr)
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        return 1
    print(f"check_bench: {checked} gated result(s) across {len(gated)} "
          f"benchmark(s) within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
