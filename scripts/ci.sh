#!/usr/bin/env bash
# CI entry point: build + test the default (Release) tree and the
# ASan+UBSan tree (COLIBRI_SANITIZE=ON). Any failing step fails the run.
#
# After each preset's full suite, the data-plane parity gate re-runs by
# name: the wire-fuzz corpus replay (tests/fuzz) plus the scalar-vs-
# batched differential suites. These are the tests that prove the
# batched/sharded pipeline is observationally identical to the scalar
# reference, so they get their own visible (and grep-able) CI step —
# under the asan preset this is the required "differential under
# ASan+UBSan" run.
#
#   scripts/ci.sh              # both presets
#   scripts/ci.sh default      # just one
#   JOBS=4 scripts/ci.sh       # limit build parallelism
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
PRESETS=("$@")
[ ${#PRESETS[@]} -gt 0 ] || PRESETS=(default asan)

for preset in "${PRESETS[@]}"; do
  echo "=== [$preset] configure"
  cmake --preset "$preset"
  echo "=== [$preset] build"
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] test"
  ctest --preset "$preset"
  echo "=== [$preset] data-plane parity gate (fuzz corpus + differential)"
  ctest --preset "$preset" \
    -R 'fuzz_corpus_replay|RouterDifferential|GatewayDifferential|ShardedGatewayTest|CmacMultiTest'
done

echo "=== all presets green: ${PRESETS[*]}"
