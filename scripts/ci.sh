#!/usr/bin/env bash
# CI entry point: build + test the default (Release) tree and the
# ASan+UBSan tree (COLIBRI_SANITIZE=ON). Any failing step fails the run.
#
#   scripts/ci.sh              # both presets
#   scripts/ci.sh default      # just one
#   JOBS=4 scripts/ci.sh       # limit build parallelism
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
PRESETS=("$@")
[ ${#PRESETS[@]} -gt 0 ] || PRESETS=(default asan)

for preset in "${PRESETS[@]}"; do
  echo "=== [$preset] configure"
  cmake --preset "$preset"
  echo "=== [$preset] build"
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] test"
  ctest --preset "$preset"
done

echo "=== all presets green: ${PRESETS[*]}"
