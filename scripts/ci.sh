#!/usr/bin/env bash
# CI entry point: build + test the default (Release) tree, the
# ASan+UBSan tree (COLIBRI_SANITIZE=ON), and the TSan tree
# (COLIBRI_SANITIZE=thread). Any failing step fails the run.
#
# After each functional preset's full suite, the data-plane parity gate
# re-runs by name: the wire-fuzz corpus replay (tests/fuzz) plus the
# scalar-vs-batched differential suites. These are the tests that prove
# the batched/sharded pipeline is observationally identical to the
# scalar reference, so they get their own visible (and grep-able) CI
# step — under the asan preset this is the required "differential under
# ASan+UBSan" run.
#
# The tsan preset is a race lane, not a functional lane: it runs the
# concurrency-shaped suites (the telemetry stress test, the sharded
# runtime drain/health tests, the SPSC ring, concurrent counters) under
# ThreadSanitizer instead of repeating the whole functional suite.
#
# Every functional preset (and the tsan race lane) then re-runs the
# chaos lane by label: the fault-injection, link-failover, and WAL
# crash-recovery suites carry the `chaos` ctest label (tests/CMakeLists)
# so the deterministic-adversity proof is a visible CI step of its own.
#
# The default preset additionally smoke-tests the colibri_obs tool end
# to end: run the demo scenario, dump every artifact, export a Perfetto
# trace, query the sharded-runtime health surface, drive the failover
# scenario through the watch dashboard, and run the fleet-federation
# scenario through both the fleet table and the watch fleet line.
#
# The opt-in bench-gate lane (not part of the default preset list —
# benchmark numbers are machine-sensitive, so it only runs when asked
# for) builds the Release tree, runs every benchmark that has a
# committed baseline under bench/baselines/, and fails the run if
# throughput or latency percentiles regressed beyond the tolerance
# (BENCH_TOLERANCE, default from scripts/check_bench.py).
#
#   scripts/ci.sh              # all three presets
#   scripts/ci.sh default      # just one
#   scripts/ci.sh bench-gate   # benchmark regression gate only
#   JOBS=4 scripts/ci.sh       # limit build parallelism
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
PRESETS=("$@")
[ ${#PRESETS[@]} -gt 0 ] || PRESETS=(default asan tsan)

# The gate's own self-test runs before anything it might gate: a broken
# gate must fail the run, not wave regressions through.
echo "=== check_bench self-test"
python3 scripts/check_bench.py --self-test

TSAN_SUITES='TelemetryStressTest|ShardedRuntimeTest|SpscRingTest'
TSAN_SUITES+='|CounterTest.ConcurrentIncrementsFromManyThreads'
TSAN_SUITES+='|ControlPlaneStressTest'
TSAN_SUITES+='|RenewalStormTest.MultiThreadedDrainMatchesSingleThreaded'
TSAN_SUITES+='|ReservationDbTest.NextResIdIsUniqueAcrossThreads'
TSAN_SUITES+='|SamplerAlertStressTest'
TSAN_SUITES+='|FleetAuditStressTest'
TSAN_SUITES+='|HistoryIncidentStressTest'

for preset in "${PRESETS[@]}"; do
  if [ "$preset" = bench-gate ]; then
    echo "=== [bench-gate] configure + build (default preset)"
    cmake --preset default
    cmake --build --preset default -j "$JOBS"
    BENCH_DIR=$(dirname "$(find build -name bench_cserv_throughput -type f | head -1)")
    echo "=== [bench-gate] run baselined benchmarks"
    for baseline in bench/baselines/BENCH_*.json; do
      bench=$(basename "$baseline" .json)
      bench=${bench#BENCH_}
      (cd "$BENCH_DIR" && "./$bench" > /dev/null)
    done
    echo "=== [bench-gate] compare against bench/baselines"
    python3 scripts/check_bench.py --current "$BENCH_DIR" \
      --report build/bench_gate_report.json \
      ${BENCH_TOLERANCE:+--tolerance "$BENCH_TOLERANCE"}
    continue
  fi
  echo "=== [$preset] configure"
  cmake --preset "$preset"
  echo "=== [$preset] build"
  cmake --build --preset "$preset" -j "$JOBS"
  if [ "$preset" = tsan ]; then
    echo "=== [$preset] concurrency race gate (telemetry + sharded runtime + control plane)"
    ctest --preset "$preset" -R "$TSAN_SUITES"
    echo "=== [$preset] chaos lane (fault injection, failover, WAL recovery)"
    ctest --preset "$preset" -L chaos
    continue
  fi
  echo "=== [$preset] test"
  ctest --preset "$preset"
  echo "=== [$preset] data-plane parity gate (fuzz corpus + differential)"
  ctest --preset "$preset" \
    -R 'fuzz_corpus_replay|RouterDifferential|GatewayDifferential|ShardedGatewayTest|CmacMultiTest|BatchedFlightRecorderTest'
  echo "=== [$preset] chaos lane (fault injection, failover, WAL recovery)"
  ctest --preset "$preset" -L chaos
done

for preset in "${PRESETS[@]}"; do
  if [ "$preset" = default ]; then
    echo "=== [default] colibri_obs smoke (scenario, dumps, trace, health)"
    OBS=build/src/colibri_obs
    [ -x "$OBS" ] || OBS=$(find build -name colibri_obs -type f | head -1)
    "$OBS" > /dev/null
    "$OBS" --dump=openmetrics | grep -q '^# EOF$'
    "$OBS" --dump=events | head -1 | grep -q '"name"'
    "$OBS" --query=router.forwarded > /dev/null
    trace_out=$(mktemp /tmp/colibri_trace.XXXXXX.json)
    "$OBS" trace --perfetto "$trace_out" | grep -q 'trace events'
    grep -q '"traceEvents"' "$trace_out"
    rm -f "$trace_out"
    "$OBS" health | grep -q 'stall detector'
    "$OBS" watch --once | grep -q 'alerts:'
    echo "=== [default] colibri_obs failover-scenario smoke"
    "$OBS" watch --once --scenario=failover | grep -q 'failover:'
    echo "=== [default] colibri_obs fleet-federation smoke"
    "$OBS" fleet --once | grep -q 'audit: PASS'
    "$OBS" watch --once --scenario=fleet | grep -q 'fleet:'
    echo "=== [default] colibri_obs forensics smoke (history round-trip + incident)"
    forensics_dir=$(mktemp -d /tmp/colibri_forensics.XXXXXX)
    "$OBS" watch --once --scenario=failover --forensics-dir="$forensics_dir" \
      > /dev/null
    # Write → reopen → query: the offline CLI opens the store the
    # scenario just wrote and must recover every frame cleanly.
    "$OBS" incident list --dir="$forensics_dir" \
      | grep -q 'cserv.failover-active'
    "$OBS" incident show --dir="$forensics_dir" \
      | grep -q '"schema": "colibri.incident.v1"'
    "$OBS" history query --series=gateway.forwarded --dir="$forensics_dir" \
      > /dev/null
    "$OBS" history rate --series=router.forwarded --dir="$forensics_dir" \
      > /dev/null
    "$OBS" history p99 --series=cserv.request_latency_ns \
      --dir="$forensics_dir" > /dev/null
    rm -rf "$forensics_dir"
  fi
done

echo "=== all presets green: ${PRESETS[*]}"
