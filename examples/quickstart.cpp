// Quickstart: bring up a two-ISD Colibri deployment, provision segment
// reservations, open an end-to-end reservation between two hosts in
// different ISDs, and push authenticated packets through every on-path
// border router.
//
//   $ ./quickstart
#include <cstdio>

#include "colibri/app/testbed.hpp"
#include "colibri/telemetry/metrics.hpp"

using namespace colibri;

int main() {
  // 1. A SCION-like topology: 2 ISDs, 4 core ASes, 12 customer ASes.
  //    The Testbed instantiates the full per-AS stack (CServ, gateway,
  //    border router, daemon) and runs beacon-style segment discovery.
  SimClock clock(1'000 * kNsPerSec);
  app::Testbed bed(topology::builders::two_isd_topology(), clock);
  std::printf("deployment: %zu ASes, %zu path segments discovered\n",
              bed.topology().as_count(), bed.pathdb().size());

  // 2. ASes provision intermediate-term segment reservations (SegRs,
  //    ~5 min lifetime) along the discovered segments and publish them.
  const size_t provisioned = bed.provision_all_segments(
      /*min_bw=*/1'000, /*max_bw=*/2'000'000);  // up to 2 Gbps per segment
  std::printf("segment reservations provisioned & published: %zu\n",
              provisioned);

  // 3. A host in AS 1-112 opens a 50 Mbps end-to-end reservation (EER,
  //    16 s lifetime, seamlessly renewable) to a host in AS 2-212. The
  //    daemon finds SegR chains (up + core + down) and issues the EEReq.
  const AsId src_as{1, 112}, dst_as{2, 212};
  auto session = bed.daemon(src_as).open_session(
      dst_as, HostAddr::from_u64(0xA11CE), HostAddr::from_u64(0xB0B),
      /*min_bw=*/1'000, /*max_bw=*/50'000);
  if (!session.ok()) {
    std::printf("reservation failed: %s\n", errc_name(session.error()));
    return 1;
  }
  std::printf("EER established: id=(%s,%u) bw=%u kbps expires=%us\n",
              session.value().key().src_as.to_string().c_str(),
              session.value().key().res_id, session.value().bw_kbps(),
              session.value().exp_time());

  // 4. Send data. The gateway monitors the flow, stamps a high-precision
  //    timestamp, and computes one MAC per on-path AS; each border router
  //    re-derives the key from its own secret and validates statelessly.
  const auto rec = bed.cserv(src_as).db().eer_copy(session.value().key());
  std::printf("path (%zu ASes):", rec->path.size());
  for (const auto& hop : rec->path) std::printf(" %s", hop.as.to_string().c_str());
  std::printf("\n");

  int delivered = 0;
  for (int i = 0; i < 100; ++i) {
    dataplane::FastPacket pkt;
    if (session.value().send(1'000, pkt) != dataplane::Gateway::Verdict::kOk) {
      continue;
    }
    bool dropped = false;
    for (const auto& hop : rec->path) {
      const auto verdict = bed.router(hop.as).process(pkt);
      if (verdict != dataplane::BorderRouter::Verdict::kForward &&
          verdict != dataplane::BorderRouter::Verdict::kDeliver) {
        dropped = true;
        break;
      }
    }
    delivered += !dropped;
    clock.advance(session.value().pace_interval_ns(1'000));
  }
  std::printf("delivered %d/100 packets across %zu border routers\n",
              delivered, rec->path.size());

  // 5. A tampered packet is rejected at the very first router.
  dataplane::FastPacket evil;
  (void)session.value().send(1'000, evil);
  evil.resinfo.bw_kbps *= 100;  // claim a 100x bigger reservation
  const auto verdict = bed.router(rec->path[0].as).process(evil);
  std::printf("tampered packet verdict at first router: %s\n",
              verdict == dataplane::BorderRouter::Verdict::kBadHvf
                  ? "rejected (bad HVF)"
                  : "UNEXPECTED");

  // 6. Every component above reported into the process-wide metrics
  //    registry as a side effect — dump the aggregate as JSON.
  std::printf("\ntelemetry snapshot:\n%s\n",
              telemetry::MetricsRegistry::global().to_json().c_str());
  return 0;
}
