// Video streaming over a Colibri reservation (the paper's motivating
// workload, §3.3: "the known bitrate of a video stream").
//
// A CDN AS streams 8 Mbps of video to an eyeball AS for two minutes of
// simulated time. The EER (16 s lifetime) is renewed ahead of expiry so
// versions overlap and the stream never stalls; the sender paces at the
// reserved rate (what a Colibri-aware QUIC would do with congestion
// control disabled, §3.2). Acknowledgment-sized replies travel as best
// effort — reservations are unidirectional (§3.3).
#include <cstdio>

#include "colibri/app/testbed.hpp"

using namespace colibri;

int main() {
  SimClock clock(1'000 * kNsPerSec);
  app::Testbed bed(topology::builders::two_isd_topology(), clock);
  bed.provision_all_segments(1'000, 2'000'000);

  // CDN in AS 1-110 (ISD 1), viewer in AS 2-212 (ISD 2).
  const AsId cdn{1, 110}, eyeball{2, 212};
  constexpr BwKbps kBitrate = 8'000;  // 8 Mbps video
  constexpr std::uint32_t kSegmentBytes = 1'200;

  auto session = bed.daemon(cdn).open_session(
      eyeball, HostAddr::from_u64(0xCD11), HostAddr::from_u64(0xE7E),
      /*min_bw=*/kBitrate, /*max_bw=*/kBitrate);
  if (!session.ok()) {
    std::printf("could not reserve: %s\n", errc_name(session.error()));
    return 1;
  }
  const auto rec = bed.cserv(cdn).db().eer_copy(session.value().key());
  std::printf("streaming 8 Mbps over %zu-AS path, EER lifetime %us\n",
              rec->path.size(),
              session.value().exp_time() - clock.now_sec());

  // Pace on the wire size (header included): the gateway monitors total
  // packet size, so pacing on payload alone would overrun the bucket by
  // the header share.
  dataplane::FastPacket probe;
  (void)session.value().send(kSegmentBytes, probe);
  const TimeNs pace = session.value().pace_interval_ns(probe.wire_size());
  std::uint64_t sent = 0, delivered = 0, renewals = 0, stalls = 0;
  const UnixSec stream_end = clock.now_sec() + 120;

  ResVer last_version = session.value().version();
  while (clock.now_sec() < stream_end) {
    // Renew ahead of expiry; a version change must not interrupt packets.
    if (!session.value().maybe_renew(/*lead_sec=*/4)) {
      ++stalls;
      break;
    }
    if (session.value().version() != last_version) {
      ++renewals;
      last_version = session.value().version();
    }

    dataplane::FastPacket pkt;
    if (session.value().send(kSegmentBytes, pkt) ==
        dataplane::Gateway::Verdict::kOk) {
      ++sent;
      bool ok = true;
      for (const auto& hop : rec->path) {
        const auto v = bed.router(hop.as).process(pkt);
        ok = v == dataplane::BorderRouter::Verdict::kForward ||
             v == dataplane::BorderRouter::Verdict::kDeliver;
        if (!ok) break;
      }
      delivered += ok;
    }
    clock.advance(pace);
  }

  const double delivered_kbps = static_cast<double>(delivered) *
                                kSegmentBytes * 8.0 / 120.0 / 1000.0;
  std::printf("2 minutes of playback:\n");
  std::printf("  packets sent/delivered : %llu / %llu\n",
              static_cast<unsigned long long>(sent),
              static_cast<unsigned long long>(delivered));
  std::printf("  goodput                : %.0f kbps (target %u)\n",
              delivered_kbps, kBitrate);
  std::printf("  seamless renewals      : %llu (every ~12 s)\n",
              static_cast<unsigned long long>(renewals));
  std::printf("  stalls                 : %llu\n",
              static_cast<unsigned long long>(stalls));
  return stalls == 0 && delivered > 0 ? 0 : 1;
}
