// Management scalability on a generated ~200-AS deployment.
//
// Demonstrates the paper's management-scalability story: bringing up a
// realistic topology requires *no* per-flow or per-destination
// configuration — each AS only knows its local traffic matrix, and
// everything else (segments, SegRs, EERs) is negotiated automatically by
// the control plane. Prints deployment-wide statistics.
#include <chrono>
#include <cstdio>

#include "colibri/app/testbed.hpp"
#include "colibri/topology/generator.hpp"

using namespace colibri;

int main() {
  topology::GeneratorConfig cfg;
  cfg.isds = 3;
  cfg.cores_per_isd = 2;
  cfg.fanout = 5;
  cfg.depth = 2;
  cfg.multihome_prob = 0.3;
  cfg.seed = 2026;

  const auto t0 = std::chrono::steady_clock::now();
  SimClock clock(1000 * kNsPerSec);
  app::Testbed bed(topology::generate_topology(cfg), clock);
  const auto t1 = std::chrono::steady_clock::now();

  std::printf("generated deployment: %zu ASes (%d ISDs), %zu segments "
              "discovered in %lld ms\n",
              bed.topology().as_count(), cfg.isds, bed.pathdb().size(),
              static_cast<long long>(
                  std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0)
                      .count()));

  const std::uint64_t msgs_before = bed.bus().message_count();
  const size_t provisioned = bed.provision_all_segments(100, 1'000'000);
  const auto t2 = std::chrono::steady_clock::now();
  std::printf("provisioned %zu SegRs in %lld ms (%llu control messages, "
              "%.1f per SegR)\n",
              provisioned,
              static_cast<long long>(
                  std::chrono::duration_cast<std::chrono::milliseconds>(t2 - t1)
                      .count()),
              static_cast<unsigned long long>(bed.bus().message_count() -
                                              msgs_before),
              static_cast<double>(bed.bus().message_count() - msgs_before) /
                  static_cast<double>(provisioned ? provisioned : 1));

  // Random host pairs across ISDs open reservations.
  std::vector<AsId> leaves;
  for (AsId id : bed.topology().as_ids()) {
    if (!bed.topology().node(id).core) leaves.push_back(id);
  }
  Rng rng(7);
  int attempted = 0, established = 0;
  std::uint64_t host = 1;
  for (int i = 0; i < 200; ++i) {
    const AsId src = leaves[rng.below(leaves.size())];
    const AsId dst = leaves[rng.below(leaves.size())];
    if (src == dst || src.isd() == dst.isd()) continue;
    ++attempted;
    auto session = bed.daemon(src).open_session(
        dst, HostAddr::from_u64(host++), HostAddr::from_u64(host++), 10, 500);
    established += session.ok();
  }
  const auto t3 = std::chrono::steady_clock::now();
  std::printf("cross-ISD reservations: %d/%d established in %lld ms\n",
              established, attempted,
              static_cast<long long>(
                  std::chrono::duration_cast<std::chrono::milliseconds>(t3 - t2)
                      .count()));

  // Per-AS state footprint: the management-scalability metric.
  size_t max_segrs = 0, max_eers = 0, total_segrs = 0;
  for (AsId id : bed.topology().as_ids()) {
    const auto& db = bed.cserv(id).db();
    max_segrs = std::max(max_segrs, db.segr_count());
    max_eers = std::max(max_eers, db.eer_count());
    total_segrs += db.segr_count();
  }
  std::printf("state footprint: max %zu SegRs / %zu EERs at any single AS "
              "(avg %.1f SegRs per AS)\n",
              max_segrs, max_eers,
              static_cast<double>(total_segrs) /
                  static_cast<double>(bed.topology().as_count()));
  std::printf("no per-flow state on any router; no manual configuration "
              "beyond the local traffic matrix.\n");
  return established > 0 ? 0 : 1;
}
