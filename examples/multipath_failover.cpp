// Path choice and reservation failover (paper §2.1).
//
// Path-aware networking gives the daemon several SegR chains to the same
// destination. When the preferred chain's reservations run out of EER
// capacity, setup fails with a precise bottleneck indication and the
// daemon transparently retries over the alternatives — "which increases
// the probability of a successful reservation". Multiple reservations
// across disjoint paths can then back a multipath transport.
#include <cstdio>
#include <set>

#include "colibri/app/testbed.hpp"

using namespace colibri;

int main() {
  SimClock clock(1'000 * kNsPerSec);
  app::Testbed bed(topology::builders::two_isd_topology(), clock);
  bed.provision_all_segments(1'000, 2'000'000);

  const AsId src{1, 110}, dst{1, 120};
  auto& daemon = bed.daemon(src);

  const auto chains = daemon.candidate_chains(dst);
  std::printf("daemon found %zu SegR chains from %s to %s:\n", chains.size(),
              src.to_string().c_str(), dst.to_string().c_str());
  for (size_t i = 0; i < chains.size(); ++i) {
    std::printf("  chain %zu:", i);
    for (const auto& advert : chains[i]) {
      std::printf(" [%s->%s %u kbps]", advert.first_as().to_string().c_str(),
                  advert.last_as().to_string().c_str(), advert.bw_kbps);
    }
    std::printf("\n");
  }
  if (chains.size() < 2) {
    std::printf("need at least two chains for this demo\n");
    return 1;
  }

  // Saturate the SegRs unique to the preferred chain.
  std::set<ResKey> shared;
  for (size_t c = 1; c < chains.size(); ++c) {
    for (const auto& advert : chains[c]) shared.insert(advert.key);
  }
  int saturated = 0;
  for (const auto& advert : chains.front()) {
    if (shared.contains(advert.key)) continue;
    for (const auto& hop : advert.hops) {
      const bool hit = bed.cserv(hop.as).db().with_segr(
          advert.key, [](reservation::SegrRecord* rec) {
            if (rec == nullptr) return false;
            rec->eer_allocated_kbps = rec->active.bw_kbps;
            return true;
          });
      if (hit) ++saturated;
    }
  }
  std::printf("\nsaturating %d SegR records unique to chain 0 "
              "(simulating peak demand)\n", saturated);

  auto session = daemon.open_session(dst, HostAddr::from_u64(1),
                                     HostAddr::from_u64(2), 1'000, 10'000);
  if (!session.ok()) {
    std::printf("failover FAILED: %s\n", errc_name(session.error()));
    return 1;
  }
  const auto rec = bed.cserv(src).db().eer_copy(session.value().key());
  std::printf("failover succeeded: EER of %u kbps established over SegRs:",
              session.value().bw_kbps());
  for (const auto& key : rec->segrs) {
    std::printf(" (%s,%u)", key.src_as.to_string().c_str(), key.res_id);
  }
  std::printf("\npath:");
  for (const auto& hop : rec->path) {
    std::printf(" %s", hop.as.to_string().c_str());
  }
  std::printf("\n");

  // Multipath: a second session on yet another chain, concurrently.
  auto second = daemon.open_session(dst, HostAddr::from_u64(3),
                                    HostAddr::from_u64(4), 1'000, 10'000);
  if (second.ok()) {
    std::printf("second concurrent reservation: %u kbps (multipath-ready)\n",
                second.value().bw_kbps());
  }
  return 0;
}
