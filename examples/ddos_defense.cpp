// DDoS defence walk-through (paper §5, §7.2).
//
// A victim holds a 1 Gbps reservation into its AS. Three escalating
// attacks hit the shared 40 Gbps bottleneck:
//   1. an 80 Gbps best-effort flood from two directions,
//   2. a 20 Gbps flood of *bogus* Colibri packets with forged HVFs,
//   3. a compromised AS overusing a second, legitimate reservation 50x.
// The reservation's throughput is printed for each stage: Colibri's
// worst-case bandwidth guarantee means it never degrades.
#include <cstdio>

#include "colibri/sim/scenario.hpp"

using namespace colibri;
using sim::FlowSpec;

int main() {
  sim::ScenarioConfig cfg;
  cfg.reservation_gbps = {1.0, 0.5};  // victim: 1 Gbps; bystander: 0.5
  cfg.duration_ns = 150'000'000;
  cfg.warmup_ns = 30'000'000;
  sim::ProtectionScenario scenario(cfg);

  using K = FlowSpec::Kind;
  const FlowSpec victim{"victim reservation", K::kAuthentic, 0, 1.0, 1000, 0};
  const FlowSpec bystander{"bystander reservation", K::kAuthentic, 1, 0.5,
                           1000, 1};

  struct Stage {
    const char* name;
    std::vector<FlowSpec> flows;
  };
  const std::vector<Stage> stages = {
      {"baseline (no attack)", {victim, bystander}},
      {"volumetric best-effort DDoS (80 Gbps offered)",
       {victim, bystander,
        FlowSpec{"BE flood A", K::kBestEffort, 1, 40.0, 1000, 0},
        FlowSpec{"BE flood B", K::kBestEffort, 2, 40.0, 1000, 0}}},
      {"bogus-Colibri flood (forged HVFs, 20 Gbps)",
       {victim, bystander,
        FlowSpec{"BE flood A", K::kBestEffort, 1, 40.0, 1000, 0},
        FlowSpec{"forged Colibri", K::kUnauthentic, 2, 20.0, 1000, 0},
        FlowSpec{"BE flood B", K::kBestEffort, 2, 20.0, 1000, 0}}},
      {"reservation overuse by a malicious AS (25 Gbps over 0.5 G)",
       {victim,
        FlowSpec{"overused reservation", K::kOveruse, 1, 25.0, 1000, 1},
        FlowSpec{"BE flood A", K::kBestEffort, 1, 15.0, 1000, 0},
        FlowSpec{"forged Colibri", K::kUnauthentic, 2, 20.0, 1000, 0},
        FlowSpec{"BE flood B", K::kBestEffort, 2, 20.0, 1000, 0}}},
  };

  std::printf("Victim SLO: 1 Gbps guaranteed through a 40 Gbps bottleneck\n\n");
  bool slo_held = true;
  for (const auto& stage : stages) {
    const auto result = scenario.run_phase(stage.flows);
    std::printf("== %s\n", stage.name);
    for (const auto& f : result.flows) {
      std::printf("   %-24s offered %6.2f Gbps -> delivered %6.3f Gbps\n",
                  f.label.c_str(), f.offered_gbps, f.delivered_gbps);
    }
    if (result.router_bad_hvf > 0) {
      std::printf("   router dropped %llu forged packets (bad HVF)\n",
                  static_cast<unsigned long long>(result.router_bad_hvf));
    }
    if (result.router_overuse_dropped > 0) {
      std::printf("   router dropped %llu overuse packets (OFD + policing)\n",
                  static_cast<unsigned long long>(result.router_overuse_dropped));
    }
    const double victim_gbps = result.flows[0].delivered_gbps;
    const bool ok = victim_gbps > 0.9;
    slo_held &= ok;
    std::printf("   -> victim SLO %s (%.3f Gbps)\n\n",
                ok ? "HELD" : "VIOLATED", victim_gbps);
  }
  std::printf("%s\n", slo_held
                          ? "All attacks absorbed: the reservation kept its "
                            "worst-case bandwidth guarantee."
                          : "SLO violated — investigate!");
  return slo_held ? 0 : 1;
}
