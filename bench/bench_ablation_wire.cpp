// Ablation: struct-based vs. bytes-level border-router fast path.
//
// The Fig. 5/6 benchmarks drive the router on pre-parsed FastPackets; a
// production pipeline validates raw frames. This bench quantifies the
// parse-in-place overhead of the WireRouter (header field extraction from
// unaligned wire bytes) relative to the struct path, single packets and
// 32-packet bursts.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "colibri/common/rand.hpp"
#include "colibri/dataplane/gateway.hpp"
#include "colibri/dataplane/router.hpp"
#include "colibri/dataplane/wire_router.hpp"
#include "colibri/proto/codec.hpp"

namespace {

using namespace colibri;
using namespace colibri::dataplane;

SystemClock g_clock;

drkey::Key128 key_of(std::uint8_t seed) {
  drkey::Key128 k;
  k.bytes.fill(seed);
  return k;
}

struct Setup {
  std::vector<Bytes> wires;
  std::vector<FastPacket> fasts;

  explicit Setup(int n) {
    Gateway gw(AsId{1, 10}, g_clock);
    proto::ResInfo ri{AsId{1, 10}, 5, 1'000'000,
                      g_clock.now_sec() + 100'000, 0};
    proto::EerInfo ei{HostAddr::from_u64(1), HostAddr::from_u64(2)};
    std::vector<topology::Hop> path = {
        topology::Hop{AsId{1, 10}, kNoInterface, 1},
        topology::Hop{AsId{1, 20}, 2, 3},
        topology::Hop{AsId{1, 30}, 4, 5},
        topology::Hop{AsId{1, 40}, 6, kNoInterface}};
    std::vector<HopAuth> sigmas;
    const drkey::Key128 keys[] = {key_of(1), key_of(2), key_of(3), key_of(4)};
    for (size_t i = 0; i < path.size(); ++i) {
      crypto::Aes128 cipher(keys[i].bytes.data());
      sigmas.push_back(compute_hopauth(cipher, ri, ei, path[i].ingress,
                                       path[i].egress));
    }
    gw.install(ri, ei, path, sigmas);
    for (int i = 0; i < n; ++i) {
      FastPacket fp;
      gw.process(5, 0, fp);
      fp.current_hop = 1;
      fasts.push_back(fp);
      wires.push_back(proto::encode_packet(to_packet(fp)));
    }
  }
};

void BM_StructRouter(benchmark::State& state) {
  Setup setup(1024);
  BorderRouter router(AsId{1, 20}, key_of(2), g_clock);
  size_t i = 0;
  for (auto _ : state) {
    FastPacket& pkt = setup.fasts[i & 1023];
    pkt.current_hop = 1;
    benchmark::DoNotOptimize(router.process(pkt));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
}

BENCHMARK(BM_StructRouter);

void BM_WireRouterSingle(benchmark::State& state) {
  Setup setup(1024);
  WireRouter router(AsId{1, 20}, key_of(2), g_clock);
  size_t i = 0;
  for (auto _ : state) {
    Bytes& wire = setup.wires[i & 1023];
    wire[3] = 1;  // reset the in-place cursor
    benchmark::DoNotOptimize(router.process(wire.data(), wire.size()));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
}

BENCHMARK(BM_WireRouterSingle);

void BM_WireRouterBurst(benchmark::State& state) {
  Setup setup(1024);
  WireRouter router(AsId{1, 20}, key_of(2), g_clock);
  constexpr size_t kBurst = 32;
  WireRouter::Verdict verdicts[kBurst];
  size_t base = 0;
  std::uint64_t processed = 0;
  for (auto _ : state) {
    WireRouter::PacketView views[kBurst];
    for (size_t i = 0; i < kBurst; ++i) {
      Bytes& wire = setup.wires[(base + i) & 1023];
      wire[3] = 1;
      views[i] = {wire.data(), wire.size()};
    }
    router.process_burst(views, kBurst, verdicts);
    benchmark::DoNotOptimize(verdicts[0]);
    base += kBurst;
    processed += kBurst;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(processed) / 1e6, benchmark::Counter::kIsRate);
}

BENCHMARK(BM_WireRouterBurst);

}  // namespace

COLIBRI_BENCH_MAIN(bench_ablation_wire);
