// Control-plane scalability on generated topologies (§6.2's claim that
// the control plane "will be able to scale to large, highly-
// interconnected networks like today's Internet").
//
// Sweeps the topology size and reports: beacon-discovered segments, full
// SegR provisioning time and per-request latency, bus message counts
// (communication overhead), and the time to establish an EER across the
// network. The scaling claim holds if per-request latency stays flat as
// the network grows.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <chrono>
#include <memory>

#include "colibri/app/renewal_storm.hpp"
#include "colibri/app/testbed.hpp"
#include "colibri/topology/generator.hpp"

namespace {

using namespace colibri;

topology::GeneratorConfig config_for(int scale) {
  topology::GeneratorConfig cfg;
  cfg.isds = 2;
  cfg.cores_per_isd = 2;
  cfg.fanout = scale;
  cfg.depth = 2;
  cfg.multihome_prob = 0.2;
  cfg.seed = 12;
  return cfg;
}

void BM_ProvisionGeneratedTopology(benchmark::State& state) {
  const auto cfg = config_for(static_cast<int>(state.range(0)));
  std::uint64_t total_segments = 0;
  std::uint64_t total_messages = 0;
  size_t ases = 0;
  for (auto _ : state) {
    SimClock clock(1000 * kNsPerSec);
    app::Testbed bed(topology::generate_topology(cfg), clock);
    ases = bed.topology().as_count();
    const std::uint64_t before = bed.bus().message_count();
    const size_t provisioned = bed.provision_all_segments(100, 500'000);
    total_segments += provisioned;
    total_messages += bed.bus().message_count() - before;
  }
  state.counters["ASes"] = static_cast<double>(ases);
  state.counters["segments_provisioned"] =
      static_cast<double>(total_segments) /
      static_cast<double>(state.iterations());
  state.counters["bus_msgs_per_segment"] =
      static_cast<double>(total_messages) /
      std::max<double>(1.0, static_cast<double>(total_segments));
}

BENCHMARK(BM_ProvisionGeneratedTopology)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void BM_EerAcrossGeneratedTopology(benchmark::State& state) {
  const auto cfg = config_for(static_cast<int>(state.range(0)));
  SimClock clock(1000 * kNsPerSec);
  app::Testbed bed(topology::generate_topology(cfg), clock);
  bed.provision_all_segments(100, 500'000);

  AsId src, dst;
  for (AsId id : bed.topology().as_ids()) {
    if (bed.topology().node(id).core) continue;
    if (id.isd() == 1) src = id;
    if (id.isd() == 2) dst = id;
  }

  std::uint64_t ok = 0;
  std::uint64_t host = 1;
  for (auto _ : state) {
    auto r = bed.daemon(src).open_session(dst, HostAddr::from_u64(host++),
                                          HostAddr::from_u64(2), 1, 10);
    benchmark::DoNotOptimize(r);
    ok += r.ok();
    clock.advance(20'000'000);
    if ((host & 0x3F) == 0) bed.tick_all();
  }
  state.counters["ASes"] = static_cast<double>(bed.topology().as_count());
  state.SetItemsProcessed(static_cast<std::int64_t>(ok));
  if (ok == 0) state.SkipWithError("no EER succeeded");
}

BENCHMARK(BM_EerAcrossGeneratedTopology)
    ->Arg(2)
    ->Arg(4)
    ->Arg(5)
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(2000);

// --- renewal-storm drain: sharded/batched vs single-shard/legacy --------
//
// §3.2 + §9: SegRs set up together expire together, so hundreds of
// thousands of EER renewals come due in one 16 s window. The legacy
// discipline pays one bus round-trip per item over the EER's full path
// (per-hop packet codecs, payload CMAC verify + append, hop-
// authenticator CBC-MAC, AEAD seal, initiator unseals) on a
// single-shard db; the batched discipline drains per-shard,
// ResId-ordered batches straight into the admission ledger. The ratio
// row below is the management-scalability headline this bench gates.
// (The legacy envelope still understates the seed's measured cost —
// BM_EerRenewal through the real bus is ~61 us/item.)

app::RenewalStormConfig storm_config(size_t shards, size_t eers) {
  app::RenewalStormConfig cfg;
  cfg.shards = shards;
  cfg.num_eers = eers;
  cfg.num_segrs = 64;
  return cfg;
}

void BM_RenewalStormLegacy(benchmark::State& state) {
  const auto cfg = storm_config(1, static_cast<size_t>(state.range(0)));
  std::uint64_t renewed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    app::RenewalStorm storm(cfg);
    storm.populate();
    state.ResumeTiming();
    const auto st = storm.drain_legacy(storm.storm_expiry());
    renewed += st.renewed;
    if (st.failed != 0) state.SkipWithError("legacy drain failed renewals");
  }
  state.counters["shards"] = 1;
  state.SetItemsProcessed(static_cast<std::int64_t>(renewed));
  state.SetLabel("single-shard db, one full-path bus round-trip per item");
}

BENCHMARK(BM_RenewalStormLegacy)
    ->Arg(50'000)
    ->Arg(200'000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_RenewalStormBatched(benchmark::State& state) {
  const auto cfg = storm_config(static_cast<size_t>(state.range(0)),
                                static_cast<size_t>(state.range(1)));
  std::uint64_t renewed = 0;
  std::uint64_t batches = 0;
  for (auto _ : state) {
    state.PauseTiming();
    app::RenewalStorm storm(cfg);
    storm.populate();
    state.ResumeTiming();
    const auto st = storm.drain_batched(storm.storm_expiry());
    renewed += st.renewed;
    batches += st.batches;
    if (st.failed != 0) state.SkipWithError("batched drain failed renewals");
  }
  state.counters["shards"] = static_cast<double>(cfg.shards);
  state.counters["batches"] = static_cast<double>(batches) /
                              std::max<double>(1.0, state.iterations());
  state.SetItemsProcessed(static_cast<std::int64_t>(renewed));
  state.SetLabel("per-shard ResId-ordered batches into the admission ledger");
}

BENCHMARK(BM_RenewalStormBatched)
    ->ArgsProduct({{1, 2, 4, 8}, {50'000, 200'000}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Ratio rows (one per EER count): batched drain on the 8-shard db over
// the legacy single-shard drain. The acceptance floor is 3x.
const bool kRatioRegistered = colibri::benchjson::request_ratio(
    "controlplane_sharded_over_single", "BM_RenewalStormBatched/8",
    "BM_RenewalStormLegacy");

}  // namespace

COLIBRI_BENCH_MAIN(bench_scale_controlplane);
