// Control-plane scalability on generated topologies (§6.2's claim that
// the control plane "will be able to scale to large, highly-
// interconnected networks like today's Internet").
//
// Sweeps the topology size and reports: beacon-discovered segments, full
// SegR provisioning time and per-request latency, bus message counts
// (communication overhead), and the time to establish an EER across the
// network. The scaling claim holds if per-request latency stays flat as
// the network grows.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <chrono>
#include <memory>

#include "colibri/app/testbed.hpp"
#include "colibri/topology/generator.hpp"

namespace {

using namespace colibri;

topology::GeneratorConfig config_for(int scale) {
  topology::GeneratorConfig cfg;
  cfg.isds = 2;
  cfg.cores_per_isd = 2;
  cfg.fanout = scale;
  cfg.depth = 2;
  cfg.multihome_prob = 0.2;
  cfg.seed = 12;
  return cfg;
}

void BM_ProvisionGeneratedTopology(benchmark::State& state) {
  const auto cfg = config_for(static_cast<int>(state.range(0)));
  std::uint64_t total_segments = 0;
  std::uint64_t total_messages = 0;
  size_t ases = 0;
  for (auto _ : state) {
    SimClock clock(1000 * kNsPerSec);
    app::Testbed bed(topology::generate_topology(cfg), clock);
    ases = bed.topology().as_count();
    const std::uint64_t before = bed.bus().message_count();
    const size_t provisioned = bed.provision_all_segments(100, 500'000);
    total_segments += provisioned;
    total_messages += bed.bus().message_count() - before;
  }
  state.counters["ASes"] = static_cast<double>(ases);
  state.counters["segments_provisioned"] =
      static_cast<double>(total_segments) /
      static_cast<double>(state.iterations());
  state.counters["bus_msgs_per_segment"] =
      static_cast<double>(total_messages) /
      std::max<double>(1.0, static_cast<double>(total_segments));
}

BENCHMARK(BM_ProvisionGeneratedTopology)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void BM_EerAcrossGeneratedTopology(benchmark::State& state) {
  const auto cfg = config_for(static_cast<int>(state.range(0)));
  SimClock clock(1000 * kNsPerSec);
  app::Testbed bed(topology::generate_topology(cfg), clock);
  bed.provision_all_segments(100, 500'000);

  AsId src, dst;
  for (AsId id : bed.topology().as_ids()) {
    if (bed.topology().node(id).core) continue;
    if (id.isd() == 1) src = id;
    if (id.isd() == 2) dst = id;
  }

  std::uint64_t ok = 0;
  std::uint64_t host = 1;
  for (auto _ : state) {
    auto r = bed.daemon(src).open_session(dst, HostAddr::from_u64(host++),
                                          HostAddr::from_u64(2), 1, 10);
    benchmark::DoNotOptimize(r);
    ok += r.ok();
    clock.advance(20'000'000);
    if ((host & 0x3F) == 0) bed.tick_all();
  }
  state.counters["ASes"] = static_cast<double>(bed.topology().as_count());
  state.SetItemsProcessed(static_cast<std::int64_t>(ok));
  if (ok == 0) state.SkipWithError("no EER succeeded");
}

BENCHMARK(BM_EerAcrossGeneratedTopology)
    ->Arg(2)
    ->Arg(4)
    ->Arg(5)
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(2000);

}  // namespace

COLIBRI_BENCH_MAIN(bench_scale_controlplane);
