// Figure 5: gateway forwarding performance (one core) as a function of
// the number of on-path ASes {2,4,8,16} and the number of installed
// reservations r in {2^0, 2^10, 2^15, 2^17, 2^20}.
//
// Worst-case access pattern exactly as in the paper: packets arrive with
// *random* reservation IDs out of the set of valid ones, defeating the
// cache. Zero-payload packets (processing is payload-independent, App. E).
// Paper result: ~2.5 Mpps (2 ASes, 1 res) down to ~0.4 Mpps
// (16 ASes, 2^20 res); decreasing in both dimensions.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <map>
#include <memory>

#include "colibri/common/rand.hpp"
#include "colibri/dataplane/gateway.hpp"
#include "colibri/telemetry/alerts.hpp"
#include "colibri/telemetry/history.hpp"
#include "colibri/telemetry/timeseries.hpp"

namespace {

using namespace colibri;
using dataplane::FastPacket;
using dataplane::Gateway;

SystemClock g_clock;

std::vector<topology::Hop> make_path(int num_ases) {
  std::vector<topology::Hop> path;
  for (int i = 0; i < num_ases; ++i) {
    path.push_back(topology::Hop{AsId{1, static_cast<std::uint64_t>(100 + i)},
                                 static_cast<IfId>(i == 0 ? 0 : 1),
                                 static_cast<IfId>(i + 1 == num_ases ? 0 : 2)});
  }
  return path;
}

// Gateways are expensive to populate (2^20 installs); build each (hops, r)
// configuration once and reuse across benchmark repetitions.
Gateway& gateway_for(int num_ases, std::int64_t reservations) {
  static std::map<std::pair<int, std::int64_t>, std::unique_ptr<Gateway>> cache;
  auto key = std::make_pair(num_ases, reservations);
  auto it = cache.find(key);
  if (it != cache.end()) return *it->second;

  dataplane::GatewayConfig cfg;
  cfg.expected_reservations = static_cast<size_t>(reservations);
  auto gw = std::make_unique<Gateway>(AsId{1, 100}, g_clock, cfg);

  const auto path = make_path(num_ases);
  Rng rng(static_cast<std::uint64_t>(num_ases) * 1000003 + reservations);
  proto::EerInfo eerinfo;
  eerinfo.src_host = HostAddr::from_u64(1);
  eerinfo.dst_host = HostAddr::from_u64(2);
  std::vector<dataplane::HopAuth> sigmas(static_cast<size_t>(num_ases));

  for (std::int64_t i = 0; i < reservations; ++i) {
    proto::ResInfo ri;
    ri.src_as = AsId{1, 100};
    ri.res_id = static_cast<ResId>(i + 1);
    // High rate so the token bucket never throttles the benchmark.
    ri.bw_kbps = 0xFFFF'FFFF;
    ri.exp_time = g_clock.now_sec() + 100'000;
    ri.version = 0;
    for (auto& s : sigmas) rng.fill(s.data(), s.size());
    gw->install(ri, eerinfo, path, sigmas);
  }
  auto [ins, _] = cache.emplace(key, std::move(gw));
  return *ins->second;
}

void BM_GatewayForward(benchmark::State& state) {
  const int num_ases = static_cast<int>(state.range(0));
  const std::int64_t r = state.range(1);
  Gateway& gw = gateway_for(num_ases, r);

  // Pre-generated random ResId stream (worst case for the cache).
  Rng rng(42);
  std::vector<ResId> ids(1 << 16);
  for (auto& id : ids) {
    id = static_cast<ResId>(1 + rng.below(static_cast<std::uint64_t>(r)));
  }

  FastPacket pkt;
  size_t i = 0;
  std::uint64_t processed = 0;
  for (auto _ : state) {
    const auto verdict = gw.process(ids[i & 0xFFFF], 0, pkt);
    benchmark::DoNotOptimize(verdict);
    benchmark::DoNotOptimize(pkt.hvfs[0]);
    ++i;
    ++processed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  state.counters["on_path_ases"] = num_ases;
  state.counters["reservations(r)"] = static_cast<double>(r);
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(processed) / 1e6, benchmark::Counter::kIsRate);
}

BENCHMARK(BM_GatewayForward)
    ->ArgsProduct({{2, 4, 8, 16}, {1, 1 << 10, 1 << 15, 1 << 17, 1 << 20}})
    ->Unit(benchmark::kNanosecond);

// Same worst-case random-id stream through the staged batch pipeline
// (sequential lookup/expiry prepare, then multi-lane AES HVF
// computation): 64-packet batches via Gateway::process_batch. The
// derived gateway_batched_over_scalar/<ases>/<r> rows in the JSON
// record the speedup over BM_GatewayForward at identical arguments.
void BM_GatewayForwardBatched(benchmark::State& state) {
  const int num_ases = static_cast<int>(state.range(0));
  const std::int64_t r = state.range(1);
  Gateway& gw = gateway_for(num_ases, r);

  Rng rng(42);
  std::vector<ResId> ids(1 << 16);
  for (auto& id : ids) {
    id = static_cast<ResId>(1 + rng.below(static_cast<std::uint64_t>(r)));
  }

  constexpr size_t kBatch = 64;
  std::uint32_t sizes[kBatch] = {};
  std::vector<FastPacket> pkts(kBatch);
  std::vector<Gateway::Verdict> verdicts(kBatch);

  size_t i = 0;
  std::uint64_t processed = 0;
  for (auto _ : state) {
    gw.process_batch(ids.data() + i, sizes, kBatch, pkts.data(),
                     verdicts.data());
    benchmark::DoNotOptimize(pkts[0].hvfs[0]);
    i += kBatch;
    if (i + kBatch > ids.size()) i = 0;
    processed += kBatch;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  state.counters["on_path_ases"] = num_ases;
  state.counters["reservations(r)"] = static_cast<double>(r);
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(processed) / 1e6, benchmark::Counter::kIsRate);
}

BENCHMARK(BM_GatewayForwardBatched)
    ->ArgsProduct({{2, 4, 8, 16}, {1, 1 << 10, 1 << 15, 1 << 17, 1 << 20}})
    ->Unit(benchmark::kNanosecond);

[[maybe_unused]] const bool kRatioRows = benchjson::request_ratio(
    "gateway_batched_over_scalar", "BM_GatewayForwardBatched",
    "BM_GatewayForward");

// The batched pipeline again, with the stage profiler recording every
// batch. Two derived artifacts land in the JSON:
//  * gateway_profiler_overhead/<args>: throughput ratio of the
//    unprofiled run over this one (how much attribution costs);
//  * gateway_stage/<stage> rows: per-batch wall-time p50/p99 of each
//    pipeline stage, pulled from the profiler histograms after the
//    timed loop (ops_per_sec carries the sample count), plus a
//    gateway_batch_occupancy row whose percentiles are packets/batch.
void BM_GatewayForwardBatchedProfiled(benchmark::State& state) {
  const int num_ases = static_cast<int>(state.range(0));
  const std::int64_t r = state.range(1);
  Gateway& gw = gateway_for(num_ases, r);

  Rng rng(42);
  std::vector<ResId> ids(1 << 16);
  for (auto& id : ids) {
    id = static_cast<ResId>(1 + rng.below(static_cast<std::uint64_t>(r)));
  }

  constexpr size_t kBatch = 64;
  std::uint32_t sizes[kBatch] = {};
  std::vector<FastPacket> pkts(kBatch);
  std::vector<Gateway::Verdict> verdicts(kBatch);

  telemetry::StageProfiler& prof = gw.profiler();
  prof.reset();
  prof.set_enabled(true);

  size_t i = 0;
  std::uint64_t processed = 0;
  for (auto _ : state) {
    gw.process_batch(ids.data() + i, sizes, kBatch, pkts.data(),
                     verdicts.data());
    benchmark::DoNotOptimize(pkts[0].hvfs[0]);
    i += kBatch;
    if (i + kBatch > ids.size()) i = 0;
    processed += kBatch;
  }
  prof.set_enabled(false);  // the shared gateway cache stays unprofiled

  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(processed) / 1e6, benchmark::Counter::kIsRate);

  for (size_t s = 0; s < prof.stage_count(); ++s) {
    const telemetry::HistogramSnapshot h = prof.stage_snapshot(s);
    if (h.count == 0) continue;
    benchjson::add_extra_result(
        "gateway_stage/" + prof.stage_name(s),
        static_cast<double>(h.count),
        static_cast<double>(h.percentile(0.50)),
        static_cast<double>(h.percentile(0.99)));
  }
  const telemetry::HistogramSnapshot occ = prof.occupancy_snapshot();
  if (occ.count != 0) {
    benchjson::add_extra_result("gateway_batch_occupancy",
                                static_cast<double>(occ.count),
                                static_cast<double>(occ.percentile(0.50)),
                                static_cast<double>(occ.percentile(0.99)));
  }
  prof.reset();
}

// One representative grid point: the profiled run exists to price the
// profiler and attribute stage time, not to re-sweep the whole figure.
BENCHMARK(BM_GatewayForwardBatchedProfiled)
    ->Args({4, 1 << 15})
    ->Unit(benchmark::kNanosecond);

[[maybe_unused]] const bool kOverheadRow = benchjson::request_ratio(
    "gateway_profiler_overhead", "BM_GatewayForwardBatched",
    "BM_GatewayForwardBatchedProfiled");

// The batched pipeline with the live monitoring plane attached: a
// WindowedSampler over the global registry (which the cached gateways
// export into) polled once per batch — 10 ms windows, so ~100
// snapshots/s — and an alert rule evaluated at every cut window.
// Between windows poll() is one clock read plus one relaxed atomic
// load, so the derived gateway_sampler_overhead ratio over the
// unmonitored run should sit at ~1.0x; the bench gate pins that — live
// monitoring must stay off the fast path.
void BM_GatewayForwardBatchedSampled(benchmark::State& state) {
  const int num_ases = static_cast<int>(state.range(0));
  const std::int64_t r = state.range(1);
  Gateway& gw = gateway_for(num_ases, r);

  Rng rng(42);
  std::vector<ResId> ids(1 << 16);
  for (auto& id : ids) {
    id = static_cast<ResId>(1 + rng.below(static_cast<std::uint64_t>(r)));
  }

  constexpr size_t kBatch = 64;
  std::uint32_t sizes[kBatch] = {};
  std::vector<FastPacket> pkts(kBatch);
  std::vector<Gateway::Verdict> verdicts(kBatch);

  telemetry::WindowedSamplerConfig scfg;
  scfg.period_ns = 10'000'000;
  scfg.ring_capacity = 128;
  telemetry::WindowedSampler sampler(telemetry::MetricsRegistry::global(),
                                     g_clock, scfg);
  sampler.track_rate("gateway.forwarded");
  telemetry::AlertEngine engine(sampler, g_clock);
  telemetry::AlertRule rule;
  rule.name = "gateway.drop-spike";
  rule.series = "gateway.drop.";
  rule.signal = telemetry::AlertSignal::kRate;
  rule.span_ns = kNsPerSec;
  rule.cmp = telemetry::AlertCmp::kAbove;
  rule.threshold = 1e6;
  rule.for_ns = kNsPerSec;
  engine.add_rule(rule);

  size_t i = 0;
  std::uint64_t processed = 0;
  for (auto _ : state) {
    gw.process_batch(ids.data() + i, sizes, kBatch, pkts.data(),
                     verdicts.data());
    benchmark::DoNotOptimize(pkts[0].hvfs[0]);
    if (sampler.poll()) (void)engine.evaluate();
    i += kBatch;
    if (i + kBatch > ids.size()) i = 0;
    processed += kBatch;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(processed) / 1e6, benchmark::Counter::kIsRate);
  state.counters["windows"] =
      static_cast<double>(sampler.windows_sampled());
  state.counters["alert_evals"] = static_cast<double>(engine.evaluations());
}

// Same representative grid point as the profiled run; the row exists
// to price the monitoring loop, not to re-sweep the figure.
BENCHMARK(BM_GatewayForwardBatchedSampled)
    ->Args({4, 1 << 15})
    ->Unit(benchmark::kNanosecond);

[[maybe_unused]] const bool kSamplerRow = benchjson::request_ratio(
    "gateway_sampler_overhead", "BM_GatewayForwardBatched",
    "BM_GatewayForwardBatchedSampled");

// The monitored pipeline with the post-mortem trail attached: every
// window the sampler cuts is also encoded and appended into a
// HistoryStore (in-memory backend — the disk write is the OS's
// problem, the encode is ours). append_latest() is one frame encode
// per 10 ms window and a no-op between windows, so the derived
// history_append_overhead ratio over the sampler-only run should sit
// at ~1.0x; the bench gate pins that — the black box must not slow
// the plane it records.
void BM_GatewayForwardBatchedHistory(benchmark::State& state) {
  const int num_ases = static_cast<int>(state.range(0));
  const std::int64_t r = state.range(1);
  Gateway& gw = gateway_for(num_ases, r);

  Rng rng(42);
  std::vector<ResId> ids(1 << 16);
  for (auto& id : ids) {
    id = static_cast<ResId>(1 + rng.below(static_cast<std::uint64_t>(r)));
  }

  constexpr size_t kBatch = 64;
  std::uint32_t sizes[kBatch] = {};
  std::vector<FastPacket> pkts(kBatch);
  std::vector<Gateway::Verdict> verdicts(kBatch);

  telemetry::WindowedSamplerConfig scfg;
  scfg.period_ns = 10'000'000;
  scfg.ring_capacity = 128;
  telemetry::WindowedSampler sampler(telemetry::MetricsRegistry::global(),
                                     g_clock, scfg);
  sampler.track_rate("gateway.forwarded");
  telemetry::MemoryHistoryBackend backend;
  telemetry::HistoryStore history(backend);

  size_t i = 0;
  std::uint64_t processed = 0;
  for (auto _ : state) {
    gw.process_batch(ids.data() + i, sizes, kBatch, pkts.data(),
                     verdicts.data());
    benchmark::DoNotOptimize(pkts[0].hvfs[0]);
    if (sampler.poll()) (void)history.append_latest(sampler);
    i += kBatch;
    if (i + kBatch > ids.size()) i = 0;
    processed += kBatch;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(processed) / 1e6, benchmark::Counter::kIsRate);
  state.counters["frames"] =
      static_cast<double>(history.stats().frames_appended);
}

// Same representative grid point again; the row prices the history
// sink relative to the sampler-only monitoring loop above.
BENCHMARK(BM_GatewayForwardBatchedHistory)
    ->Args({4, 1 << 15})
    ->Unit(benchmark::kNanosecond);

[[maybe_unused]] const bool kHistoryRow = benchjson::request_ratio(
    "history_append_overhead", "BM_GatewayForwardBatchedSampled",
    "BM_GatewayForwardBatchedHistory");

// Burst API variant (DPDK-style 32-packet bursts), path length 4.
void BM_GatewayBurst(benchmark::State& state) {
  const std::int64_t r = state.range(0);
  Gateway& gw = gateway_for(4, r);
  Rng rng(43);
  constexpr size_t kBurst = 32;
  ResId ids[kBurst];
  std::uint32_t sizes[kBurst] = {};
  FastPacket pkts[kBurst];
  Gateway::Verdict verdicts[kBurst];

  std::uint64_t processed = 0;
  for (auto _ : state) {
    for (auto& id : ids) {
      id = static_cast<ResId>(1 + rng.below(static_cast<std::uint64_t>(r)));
    }
    processed += gw.process_burst(ids, sizes, kBurst, pkts, verdicts);
    benchmark::DoNotOptimize(pkts[0].hvfs[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(processed) / 1e6, benchmark::Counter::kIsRate);
}

BENCHMARK(BM_GatewayBurst)->Arg(1 << 10)->Arg(1 << 15)->Arg(1 << 20);

}  // namespace

COLIBRI_BENCH_MAIN(bench_fig5_gateway);
