// Figure 3: processing time for one SegR admission as a function of the
// number of existing SegRs over the same interface pair, and the ratio of
// those SegRs that share the new request's source AS.
//
// Paper result: flat in both dimensions (≈ µs-scale with memoization; the
// paper's Go implementation reports ~1250 µs per admission end-to-end).
// This bench isolates the admission computation the figure is about; the
// service-level number including message handling is in
// bench_cserv_throughput.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "colibri/admission/segr_admission.hpp"
#include "colibri/common/rand.hpp"

namespace {

using namespace colibri;
using admission::SegrAdmission;
using admission::SegrAdmissionRequest;

constexpr BwKbps kCapacity = 100'000'000;  // 100 Gbps Colibri share
const AsId kNewSource{1, 7777};

// Builds an admission ledger preloaded with `existing` SegRs on interface
// pair (1, 2); `ratio` percent of them share kNewSource.
void preload(SegrAdmission& adm, std::int64_t existing, std::int64_t ratio_pct) {
  adm.set_interface_capacity(1, kCapacity);
  adm.set_interface_capacity(2, kCapacity);
  Rng rng(static_cast<std::uint64_t>(existing * 131 + ratio_pct));
  for (std::int64_t i = 0; i < existing; ++i) {
    SegrAdmissionRequest req;
    const bool same_source =
        static_cast<std::int64_t>(rng.below(100)) < ratio_pct;
    req.src_as = same_source ? kNewSource : AsId{1, 1 + rng.below(5000)};
    req.key = ResKey{req.src_as, static_cast<ResId>(i + 1)};
    req.ingress = 1;
    req.egress = 2;
    req.min_bw_kbps = 0;
    req.demand_kbps = static_cast<BwKbps>(100 + rng.below(10'000));
    (void)adm.admit(req);
  }
}

void BM_SegrAdmission(benchmark::State& state) {
  const std::int64_t existing = state.range(0);
  const std::int64_t ratio_pct = state.range(1);
  SegrAdmission adm;
  preload(adm, existing, ratio_pct);

  SegrAdmissionRequest req;
  req.src_as = kNewSource;
  req.key = ResKey{kNewSource, 0x7FFF'0000};
  req.ingress = 1;
  req.egress = 2;
  req.min_bw_kbps = 0;
  req.demand_kbps = 5000;

  for (auto _ : state) {
    auto r = adm.admit(req);
    benchmark::DoNotOptimize(r);
    state.PauseTiming();
    adm.release(req.key);
    state.ResumeTiming();
  }
  state.counters["existing_segrs"] = static_cast<double>(existing);
  state.counters["same_src_ratio_pct"] = static_cast<double>(ratio_pct);
  state.SetLabel("Fig.3: admission must be flat in existing SegRs");
}

BENCHMARK(BM_SegrAdmission)
    ->ArgsProduct({{0, 1000, 2000, 5000, 10000}, {0, 10, 50, 90}})
    ->Unit(benchmark::kMicrosecond);

// Admit + release together (steady-state churn), timed without pauses.
void BM_SegrAdmissionChurn(benchmark::State& state) {
  SegrAdmission adm;
  preload(adm, state.range(0), 50);
  Rng rng(7);
  ResId next = 0x7000'0000;
  for (auto _ : state) {
    SegrAdmissionRequest req;
    req.src_as = AsId{1, 1 + rng.below(5000)};
    req.key = ResKey{req.src_as, next++};
    req.ingress = 1;
    req.egress = 2;
    req.demand_kbps = 5000;
    auto r = adm.admit(req);
    benchmark::DoNotOptimize(r);
    adm.release(req.key);
  }
  state.counters["existing_segrs"] = static_cast<double>(state.range(0));
}

BENCHMARK(BM_SegrAdmissionChurn)
    ->Arg(0)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

COLIBRI_BENCH_MAIN(bench_fig3_segr_admission);
