// Appendix E: forwarding performance vs. payload size.
//
// Paper result: both the gateway (2^15 pre-existing reservations) and the
// border router forward at a rate *independent of payload size* — the
// per-packet work is header-only (the payload is never touched, and
// PktSize enters the MAC as a number).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <memory>

#include "colibri/common/rand.hpp"
#include "colibri/dataplane/gateway.hpp"
#include "colibri/dataplane/router.hpp"

namespace {

using namespace colibri;
using dataplane::BorderRouter;
using dataplane::FastPacket;
using dataplane::Gateway;

SystemClock g_clock;
constexpr int kPathLen = 4;
constexpr std::int64_t kReservations = 1 << 15;

std::vector<topology::Hop> make_path() {
  std::vector<topology::Hop> path;
  for (int i = 0; i < kPathLen; ++i) {
    path.push_back(topology::Hop{AsId{1, static_cast<std::uint64_t>(100 + i)},
                                 static_cast<IfId>(i == 0 ? 0 : 1),
                                 static_cast<IfId>(i + 1 == kPathLen ? 0 : 2)});
  }
  return path;
}

drkey::Key128 router_key() {
  drkey::Key128 k;
  k.bytes.fill(0x77);
  return k;
}

Gateway& shared_gateway() {
  static std::unique_ptr<Gateway> gw = [] {
    dataplane::GatewayConfig cfg;
    cfg.expected_reservations = kReservations;
    auto g = std::make_unique<Gateway>(AsId{1, 100}, g_clock, cfg);
    const auto path = make_path();
    Rng rng(5);
    proto::EerInfo eerinfo;
    std::vector<dataplane::HopAuth> sigmas(kPathLen);
    for (std::int64_t i = 0; i < kReservations; ++i) {
      proto::ResInfo ri;
      ri.src_as = AsId{1, 100};
      ri.res_id = static_cast<ResId>(i + 1);
      ri.bw_kbps = 0xFFFF'FFFF;
      ri.exp_time = g_clock.now_sec() + 100'000;
      for (auto& s : sigmas) rng.fill(s.data(), s.size());
      g->install(ri, eerinfo, path, sigmas);
    }
    return g;
  }();
  return *gw;
}

void BM_GatewayPayloadSize(benchmark::State& state) {
  Gateway& gw = shared_gateway();
  const auto payload = static_cast<std::uint32_t>(state.range(0));
  Rng rng(6);
  FastPacket pkt;
  std::uint64_t processed = 0;
  for (auto _ : state) {
    const ResId id = static_cast<ResId>(1 + rng.below(kReservations));
    benchmark::DoNotOptimize(gw.process(id, payload, pkt));
    ++processed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  state.counters["payload_B"] = static_cast<double>(payload);
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(processed) / 1e6, benchmark::Counter::kIsRate);
  state.SetLabel("App.E: rate must be flat in payload size");
}

BENCHMARK(BM_GatewayPayloadSize)
    ->Arg(0)
    ->Arg(64)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1000)
    ->Arg(1500);

void BM_RouterPayloadSize(benchmark::State& state) {
  BorderRouter router(AsId{1, 101}, router_key(), g_clock);
  const auto payload = static_cast<std::uint32_t>(state.range(0));
  const auto path = make_path();
  crypto::Aes128 cipher(router_key().bytes.data());

  FastPacket pkt;
  pkt.is_eer = true;
  pkt.num_hops = kPathLen;
  pkt.resinfo.src_as = AsId{1, 100};
  pkt.resinfo.res_id = 7;
  pkt.resinfo.bw_kbps = 1'000'000;
  pkt.resinfo.exp_time = g_clock.now_sec() + 100'000;
  pkt.payload_bytes = payload;
  for (int i = 0; i < kPathLen; ++i) {
    pkt.ifaces[i] = dataplane::IfPair{path[i].ingress, path[i].egress};
  }
  pkt.timestamp = 12345;
  const auto sigma = dataplane::compute_hopauth(
      cipher, pkt.resinfo, pkt.eerinfo, pkt.ifaces[1].in, pkt.ifaces[1].eg);
  pkt.hvfs[1] = dataplane::compute_data_hvf(sigma, pkt.timestamp,
                                            pkt.wire_size());

  std::uint64_t processed = 0;
  for (auto _ : state) {
    pkt.current_hop = 1;
    benchmark::DoNotOptimize(router.process(pkt));
    ++processed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  state.counters["payload_B"] = static_cast<double>(payload);
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(processed) / 1e6, benchmark::Counter::kIsRate);
  state.SetLabel("App.E: rate must be flat in payload size");
}

BENCHMARK(BM_RouterPayloadSize)
    ->Arg(0)
    ->Arg(64)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1000)
    ->Arg(1500);

}  // namespace

COLIBRI_BENCH_MAIN(bench_appE_payload);
