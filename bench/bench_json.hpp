// Machine-readable benchmark results.
//
// Every bench_* binary writes BENCH_<name>.json next to its console
// output: one JSON object with a `results` array of
//   {"name": ..., "ops_per_sec": ..., "p50_ns": ..., "p99_ns": ...}
// so CI and the perf-tracking scripts can diff runs without scraping
// the human-readable table.
//
// Percentiles are computed over the per-repetition iteration times of
// each benchmark family: a single run (the default) yields
// p50 == p99 == the measured time; pass --benchmark_repetitions=N to
// get real spread. ops_per_sec prefers the items_per_second counter
// (set via SetItemsProcessed) and falls back to iterations per second.
//
// google-benchmark binaries: replace BENCHMARK_MAIN() with
// COLIBRI_BENCH_MAIN(<name>). Plain-main binaries: fill a ManualBench
// and let its destructor write the file.
#pragma once

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#if __has_include(<benchmark/benchmark.h>)
#include <benchmark/benchmark.h>
#define COLIBRI_BENCH_HAVE_GBENCH 1
#endif

namespace colibri::benchjson {

struct Sample {
  double time_ns = 0;
  double items_per_sec = 0;  // 0 = not reported
};

inline double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const double rank = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

// Derived ratio rows. A bench file registers
//   request_ratio("gateway_batched_over_scalar",
//                 "BM_GatewayForwardBatched", "BM_GatewayForward");
// and write() then emits, for every numerator family
// "<numer>/<args>" with a measured "<denom>/<args>" counterpart, an
// extra result "<name>/<args>" whose ops_per_sec is the throughput
// ratio ops(numer)/ops(denom). For ratio rows p50_ns carries the
// numerator's p50 and p99_ns the denominator's p50, so the absolute
// times behind the ratio stay recoverable from the JSON alone.
struct RatioRequest {
  std::string name;
  std::string numer;
  std::string denom;
};

inline std::vector<RatioRequest>& ratio_requests() {
  static std::vector<RatioRequest> reqs;
  return reqs;
}

inline bool request_ratio(std::string name, std::string numer,
                          std::string denom) {
  ratio_requests().push_back(
      {std::move(name), std::move(numer), std::move(denom)});
  return true;
}

// Extra rows computed by benchmark code itself (e.g. per-stage latency
// percentiles pulled out of a StageProfiler after the timed loop).
// Name-keyed with overwrite semantics: google-benchmark re-enters the
// benchmark function several times while calibrating the iteration
// count, and only the final (longest) run should survive into the JSON.
struct ExtraResult {
  std::string name;
  double ops_per_sec = 0;
  double p50_ns = 0;
  double p99_ns = 0;
};

inline std::vector<ExtraResult>& extra_results() {
  static std::vector<ExtraResult> rows;
  return rows;
}

inline void add_extra_result(const std::string& name, double ops_per_sec,
                             double p50_ns, double p99_ns) {
  for (ExtraResult& row : extra_results()) {
    if (row.name == name) {
      row = {name, ops_per_sec, p50_ns, p99_ns};
      return;
    }
  }
  extra_results().push_back({name, ops_per_sec, p50_ns, p99_ns});
}

// Accumulates per-family samples and writes BENCH_<name>.json.
class JsonWriter {
 public:
  explicit JsonWriter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void add_sample(const std::string& family, const Sample& s) {
    samples_[family].push_back(s);
  }

  // Direct entry for benchmarks that compute their own aggregate.
  void add_result(const std::string& name, double ops_per_sec, double p50_ns,
                  double p99_ns) {
    results_.push_back({name, ops_per_sec, p50_ns, p99_ns});
  }

  bool write() {
    for (const auto& [family, samples] : samples_) {
      std::vector<double> times;
      double items = 0;
      for (const Sample& s : samples) {
        times.push_back(s.time_ns);
        items = std::max(items, s.items_per_sec);
      }
      const double p50 = percentile(times, 0.50);
      const double ops = items > 0 ? items : (p50 > 0 ? 1e9 / p50 : 0);
      results_.push_back({family, ops, p50, percentile(times, 0.99)});
    }
    samples_.clear();

    const std::size_t measured = results_.size();
    for (const auto& req : ratio_requests()) {
      for (std::size_t i = 0; i < measured; ++i) {
        const std::string& n = results_[i].name;
        if (n.compare(0, req.numer.size(), req.numer) != 0) continue;
        if (n.size() > req.numer.size() && n[req.numer.size()] != '/') {
          continue;  // e.g. "BM_Foo" must not match "BM_FooBatched"
        }
        const std::string suffix = n.substr(req.numer.size());
        const std::string want = req.denom + suffix;
        for (std::size_t j = 0; j < measured; ++j) {
          if (results_[j].name != want || results_[j].ops_per_sec <= 0) {
            continue;
          }
          results_.push_back({req.name + suffix,
                              results_[i].ops_per_sec / results_[j].ops_per_sec,
                              results_[i].p50_ns, results_[j].p50_ns});
          break;
        }
      }
    }

    for (const ExtraResult& row : extra_results()) {
      results_.push_back({row.name, row.ops_per_sec, row.p50_ns, row.p99_ns});
    }
    extra_results().clear();

    const std::string path = "BENCH_" + bench_name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\"benchmark\":\"%s\",\"results\":[",
                 bench_name_.c_str());
    for (std::size_t i = 0; i < results_.size(); ++i) {
      const Entry& e = results_[i];
      std::fprintf(f,
                   "%s\n {\"name\":\"%s\",\"ops_per_sec\":%.6g,"
                   "\"p50_ns\":%.6g,\"p99_ns\":%.6g}",
                   i == 0 ? "" : ",", json_escape(e.name).c_str(),
                   e.ops_per_sec, e.p50_ns, e.p99_ns);
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    std::fprintf(stderr, "wrote %s (%zu results)\n", path.c_str(),
                 results_.size());
    return true;
  }

 private:
  struct Entry {
    std::string name;
    double ops_per_sec;
    double p50_ns;
    double p99_ns;
  };

  static std::string json_escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string bench_name_;
  std::map<std::string, std::vector<Sample>> samples_;
  std::vector<Entry> results_;
};

// RAII wrapper for plain-main benchmarks: add results, destructor writes.
class ManualBench {
 public:
  explicit ManualBench(std::string bench_name)
      : writer_(std::move(bench_name)) {}
  ~ManualBench() { writer_.write(); }

  void add(const std::string& name, double ops_per_sec, double p50_ns,
           double p99_ns) {
    writer_.add_result(name, ops_per_sec, p50_ns, p99_ns);
  }

 private:
  JsonWriter writer_;
};

#ifdef COLIBRI_BENCH_HAVE_GBENCH

// Console output as usual, plus sample capture for the JSON file.
class JsonEmittingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonEmittingReporter(std::string bench_name)
      : writer_(std::move(bench_name)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type == Run::RT_Aggregate) continue;
      Sample s;
      if (run.iterations > 0) {
        s.time_ns = run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e9;
      }
      if (auto it = run.counters.find("items_per_second");
          it != run.counters.end()) {
        s.items_per_sec = it->second.value;
      }
      writer_.add_sample(run.benchmark_name(), s);
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    writer_.write();
  }

 private:
  JsonWriter writer_;
};

#define COLIBRI_BENCH_MAIN(bench_name)                                       \
  int main(int argc, char** argv) {                                          \
    benchmark::Initialize(&argc, argv);                                      \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;        \
    colibri::benchjson::JsonEmittingReporter reporter(#bench_name);          \
    benchmark::RunSpecifiedBenchmarks(&reporter);                            \
    benchmark::Shutdown();                                                   \
    return 0;                                                                \
  }

#endif  // COLIBRI_BENCH_HAVE_GBENCH

}  // namespace colibri::benchjson
