// Figure 4: processing time for one EER admission at a transit AS, as a
// function of the number of existing EERs sharing the same SegR and of
// the number s of active SegRs sharing the same source AS.
//
// Paper result: flat in both dimensions (a constant-time counter check).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <memory>
#include <vector>

#include "colibri/admission/eer_admission.hpp"
#include "colibri/common/rand.hpp"
#include "colibri/reservation/db.hpp"

namespace {

using namespace colibri;

const AsId kSrc{1, 42};

reservation::SegrRecord make_segr(ResId id, BwKbps bw) {
  reservation::SegrRecord r;
  r.key = ResKey{kSrc, id};
  r.seg_type = topology::SegType::kUp;
  r.hops = {topology::Hop{kSrc, kNoInterface, 1},
            topology::Hop{AsId{1, 99}, 1, kNoInterface}};
  r.local_hop = 1;
  r.active = reservation::SegrVersion{0, bw, 1 << 30};
  return r;
}

struct Fixture {
  reservation::ReservationDb db{AsId{1, 99}};
  ResKey target;
  admission::EerAdmission adm;

  Fixture(std::int64_t existing_eers, std::int64_t s) {
    // s SegRs from the same source AS (the Fig. 4 parameter).
    for (std::int64_t i = 0; i < s; ++i) {
      db.upsert_segr(make_segr(static_cast<ResId>(i + 2), 1'000'000));
    }
    // The SegR carrying the new EER: capacity far above the load so the
    // preloaded EERs never exhaust it.
    auto tgt = make_segr(1, static_cast<BwKbps>(existing_eers * 100 + 1'000'000));
    target = tgt.key;
    db.upsert_segr(std::move(tgt));
    for (std::int64_t i = 0; i < existing_eers; ++i) {
      admission::EerAdmission::Request req;
      req.eer_key = ResKey{kSrc, static_cast<ResId>(1000 + i)};
      req.demand_kbps = 100;
      req.segr_in = target;
      (void)adm.admit(db, req, 0);
    }
  }
};

void BM_EerAdmission(benchmark::State& state) {
  Fixture fx(state.range(0), state.range(1));
  admission::EerAdmission::Request req;
  req.eer_key = ResKey{kSrc, 0x7FFF'0000};
  req.demand_kbps = 500;
  req.segr_in = fx.target;

  for (auto _ : state) {
    auto r = fx.adm.admit(fx.db, req, 0);
    benchmark::DoNotOptimize(r);
    state.PauseTiming();
    fx.adm.release(fx.db, req.eer_key);
    state.ResumeTiming();
  }
  state.counters["existing_eers"] = static_cast<double>(state.range(0));
  state.counters["segrs_same_src(s)"] = static_cast<double>(state.range(1));
  state.SetLabel("Fig.4: EER admission must be flat in existing EERs");
}

BENCHMARK(BM_EerAdmission)
    ->ArgsProduct({{10, 100, 1000, 10'000, 100'000}, {1, 5000, 10'000}})
    ->Unit(benchmark::kMicrosecond);

// Transfer-AS variant: the proportional split between up- and core-SegRs
// (the most expensive EER admission case) is also O(1).
void BM_EerAdmissionTransfer(benchmark::State& state) {
  Fixture fx(state.range(0), 1);
  auto core = make_segr(900, 50'000'000);
  core.seg_type = topology::SegType::kCore;
  const ResKey core_key = core.key;
  fx.db.upsert_segr(std::move(core));

  admission::EerAdmission::Request req;
  req.eer_key = ResKey{kSrc, 0x7FFF'0001};
  req.demand_kbps = 500;
  req.segr_in = fx.target;
  req.segr_out = core_key;

  for (auto _ : state) {
    auto r = fx.adm.admit(fx.db, req, 0);
    benchmark::DoNotOptimize(r);
    state.PauseTiming();
    fx.adm.release(fx.db, req.eer_key);
    state.ResumeTiming();
  }
  state.counters["existing_eers"] = static_cast<double>(state.range(0));
}

BENCHMARK(BM_EerAdmissionTransfer)
    ->Arg(10)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

COLIBRI_BENCH_MAIN(bench_fig4_eer_admission);
