// §6.2 service-level throughput: full CServ request processing, including
// DRKey verification, serialization, bus hops, admission, and token /
// HopAuth issuance.
//
// Paper reference: ">800 SegReqs per second" and "a single core can
// process more than 2000 [EER] requests per second" (the paper's CServ is
// Go + gRPC + a transactional DB; ours is in-process C++, so absolute
// numbers land higher — the claims being reproduced are that EER handling
// is several times cheaper than SegR handling and that both rates are
// flat in the number of existing reservations).
//
// The benchmark bed raises the control-plane rate limits (they are
// per-deployment config) so the limiter does not cap the measurement.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <memory>

#include "colibri/app/testbed.hpp"

namespace {

using namespace colibri;

struct Bed {
  SimClock clock{1000 * kNsPerSec};
  std::unique_ptr<app::Testbed> bed;
  topology::PathSegment seg;
  std::vector<ResKey> chain_keys;

  Bed() {
    cserv::CservConfig cfg;
    cfg.rate_limits.per_as_requests_per_sec = 1e12;
    cfg.rate_limits.per_as_burst = 1e12;
    cfg.rate_limits.renewals_per_reservation_per_sec = 1e12;
    cfg.rate_limits.renewal_burst = 1e12;
    bed = std::make_unique<app::Testbed>(topology::builders::two_isd_topology(),
                                         clock, cfg);
    bed->provision_all_segments(100, 2'000'000);
    seg = *bed->pathdb().up_segments_from(AsId{1, 112}).front();
    const auto chains = bed->cserv(AsId{1, 112}).lookup_chains(AsId{2, 212});
    for (const auto& a : chains.front()) chain_keys.push_back(a.key);
  }

  static Bed& instance() {
    static Bed b;
    return b;
  }
};

// Full SegR setup over a 3-hop segment: forward pass + admission at every
// AS + token issuance on the unwind, all serialized across the bus.
void BM_SegReqEndToEnd(benchmark::State& state) {
  Bed& b = Bed::instance();
  auto& cserv = b.bed->cserv(AsId{1, 112});
  std::uint64_t ok = 0;
  for (auto _ : state) {
    auto r = cserv.setup_segr(b.seg, 1, 100);
    benchmark::DoNotOptimize(r);
    ok += r.ok();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ok));
  state.counters["SegReq_per_sec"] = benchmark::Counter(
      static_cast<double>(ok), benchmark::Counter::kIsRate);
  if (ok == 0) state.SkipWithError("no SegReq succeeded");
}

// Iteration caps keep the reservation stores (which only shrink by
// expiry) within the provisioned capacity during the measurement.
BENCHMARK(BM_SegReqEndToEnd)->Unit(benchmark::kMicrosecond)->Iterations(20000);

// The same SegR setup with distributed tracing on: every bus hop opens a
// span, stamps the wire trace context, and the capture is drained each
// iteration (the steady-state usage pattern — a bounded capture per
// request). The segr_traced_over_plain ratio row quantifies the tracing
// tax; with the tracer off the bus pays a single branch, which is the
// default measured by BM_SegReqEndToEnd above.
void BM_SegReqTracedEndToEnd(benchmark::State& state) {
  Bed& b = Bed::instance();
  auto& cserv = b.bed->cserv(AsId{1, 112});
  auto& tracer = b.bed->bus().tracer();
  tracer.enable();
  std::uint64_t ok = 0;
  std::uint64_t spans = 0;
  for (auto _ : state) {
    auto r = cserv.setup_segr(b.seg, 1, 100);
    benchmark::DoNotOptimize(r);
    ok += r.ok();
    spans += tracer.take().spans.size();
  }
  tracer.disable();
  state.SetItemsProcessed(static_cast<std::int64_t>(ok));
  state.counters["SegReq_per_sec"] = benchmark::Counter(
      static_cast<double>(ok), benchmark::Counter::kIsRate);
  state.counters["spans_per_req"] =
      ok > 0 ? static_cast<double>(spans) / static_cast<double>(ok) : 0;
  if (ok == 0) state.SkipWithError("no SegReq succeeded");
}

BENCHMARK(BM_SegReqTracedEndToEnd)
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(20000);

const bool kTracedRatio = colibri::benchjson::request_ratio(
    "segr_traced_over_plain", "BM_SegReqTracedEndToEnd", "BM_SegReqEndToEnd");

// Full EER setup over up+core+down (5-6 ASes): admission at every AS plus
// per-hop HopAuth computation (Eq. 4) and AEAD sealing/unsealing (Eq. 5).
void BM_EeReqEndToEnd(benchmark::State& state) {
  Bed& b = Bed::instance();
  auto& cserv = b.bed->cserv(AsId{1, 112});
  std::uint64_t ok = 0;
  std::uint64_t host = 1;
  for (auto _ : state) {
    auto r = cserv.setup_eer(b.chain_keys, HostAddr::from_u64(host++),
                             HostAddr::from_u64(2), 1, 1);
    benchmark::DoNotOptimize(r);
    ok += r.ok();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ok));
  state.counters["EEReq_per_sec"] = benchmark::Counter(
      static_cast<double>(ok), benchmark::Counter::kIsRate);
  if (ok == 0) state.SkipWithError("no EEReq succeeded");
}

BENCHMARK(BM_EeReqEndToEnd)->Unit(benchmark::kMicrosecond)->Iterations(50000);

// EER renewal over the existing reservation — the steady-state operation
// protected from DoC attacks (§5.3).
void BM_EerRenewal(benchmark::State& state) {
  Bed& b = Bed::instance();
  auto& cserv = b.bed->cserv(AsId{1, 112});
  auto setup = cserv.setup_eer(b.chain_keys, HostAddr::from_u64(0xBEEF),
                               HostAddr::from_u64(2), 1, 1);
  if (!setup.ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  std::uint64_t ok = 0;
  for (auto _ : state) {
    auto r = cserv.renew_eer(setup.value().key, 1, 1);
    benchmark::DoNotOptimize(r);
    ok += r.ok();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ok));
  state.counters["renewals_per_sec"] = benchmark::Counter(
      static_cast<double>(ok), benchmark::Counter::kIsRate);
  if (ok == 0) state.SkipWithError("no renewal succeeded");
}

BENCHMARK(BM_EerRenewal)->Unit(benchmark::kMicrosecond)->Iterations(2000);

}  // namespace

COLIBRI_BENCH_MAIN(bench_cserv_throughput);
