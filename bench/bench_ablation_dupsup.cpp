// Ablation: duplicate-suppression Bloom-filter sizing (§2.3, §5.1).
//
// Sweeps bits-per-filter and hash count, reporting per-packet check cost
// and the measured false-positive rate (an FP drops a *legitimate* fresh
// packet, so the deployment question is how much memory buys how many
// nines), against the analytic prediction.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "colibri/common/rand.hpp"
#include "colibri/dataplane/dupsup.hpp"

namespace {

using namespace colibri;
using dataplane::BloomFilter;
using dataplane::DupSupConfig;
using dataplane::DuplicateSuppression;

void BM_DupSupCheck(benchmark::State& state) {
  DupSupConfig cfg;
  cfg.bits_per_filter = static_cast<size_t>(state.range(0));
  cfg.hashes = static_cast<int>(state.range(1));
  DuplicateSuppression ds(cfg);
  const AsId src{1, 7};
  TimeNs t = kNsPerSec;
  std::uint32_t ts = 1;
  for (auto _ : state) {
    t += 100;
    benchmark::DoNotOptimize(ds.check(src, ts & 0xFFF, ts, t, t));
    ++ts;
  }
  state.counters["Mbits"] =
      static_cast<double>(cfg.bits_per_filter) / (1 << 20);
  state.counters["hashes"] = cfg.hashes;
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_DupSupCheck)
    ->ArgsProduct({{1 << 18, 1 << 20, 1 << 22, 1 << 24}, {2, 4, 8}});

void BM_BloomFalsePositiveRate(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const size_t inserts = static_cast<size_t>(state.range(2));

  std::uint64_t fp = 0;
  std::uint64_t probes = 0;
  for (auto _ : state) {
    BloomFilter f(bits, k);
    Rng rng(17);
    for (size_t i = 0; i < inserts; ++i) {
      f.test_and_set(rng.next(), rng.next() | 1);
    }
    for (int i = 0; i < 100'000; ++i) {
      fp += f.test(rng.next(), rng.next() | 1);
      ++probes;
    }
  }
  state.counters["measured_fpr"] =
      static_cast<double>(fp) / static_cast<double>(probes);
  state.counters["predicted_fpr"] = BloomFilter::predicted_fpr(bits, k, inserts);
  state.counters["KiB"] = static_cast<double>(bits) / 8 / 1024;
}

BENCHMARK(BM_BloomFalsePositiveRate)
    ->ArgsProduct({{1 << 18, 1 << 20, 1 << 22}, {4}, {1 << 14, 1 << 16, 1 << 18}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace

COLIBRI_BENCH_MAIN(bench_ablation_dupsup);
