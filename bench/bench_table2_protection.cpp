// Table 2: data-plane protection. Runs the three phases of §7.2 through
// the discrete-event simulator (3x40 Gbps inputs -> 1x40 Gbps output) and
// prints the same rows the paper reports:
//
//   phase 1: reservations vs. best-effort congestion,
//   phase 2: + a 20 Gbps unauthentic-Colibri flood (filtered at the BR),
//   phase 3: + reservation 1 overusing at 40 Gbps (limited to 0.4 Gbps).
//
// Expected shape: Reservation 1 -> 0.400, Reservation 2 -> 0.800 in every
// phase; best effort gets the residual ~38.6 Gbps; the unauthentic flood
// delivers ~0.
#include <cstdio>

#include "bench_json.hpp"
#include "colibri/sim/scenario.hpp"

int main() {
  using namespace colibri::sim;

  ScenarioConfig cfg;
  cfg.duration_ns = 200'000'000;  // 200 ms per phase
  cfg.warmup_ns = 40'000'000;
  ProtectionScenario scenario(cfg);

  std::printf("Table 2 reproduction: per-flow throughput in Gbps\n");
  std::printf("(3 x 40 Gbps inputs -> 1 x 40 Gbps output, %.0f ms per phase)\n\n",
              cfg.duration_ns / 1e6);
  std::printf("%-26s %-6s %10s %10s\n", "Traffic class", "input", "offered",
              "output");

  // ops/s = delivered bits per second per flow; latency is not measured
  // by this scenario, so the percentile fields stay zero.
  colibri::benchjson::ManualBench json("bench_table2_protection");

  const auto phases = table2_phases();
  for (size_t p = 0; p < phases.size(); ++p) {
    const PhaseResult r = scenario.run_phase(phases[p]);
    std::printf("--- phase %zu %s\n", p + 1,
                p == 0   ? "(best-effort congestion)"
                : p == 1 ? "(+ unauthentic Colibri flood)"
                         : "(+ reservation-1 overuse at 40 Gbps)");
    for (const auto& f : r.flows) {
      std::printf("%-26s %-6d %10.3f %10.3f\n", f.label.c_str(),
                  f.input_port + 1, f.offered_gbps, f.delivered_gbps);
      json.add("phase" + std::to_string(p + 1) + "/" + f.label,
               f.delivered_gbps * 1e9, 0, 0);
    }
    std::printf("    [router: %llu bad-HVF drops, %llu overuse drops]\n",
                static_cast<unsigned long long>(r.router_bad_hvf),
                static_cast<unsigned long long>(r.router_overuse_dropped));
  }
  std::printf(
      "\nPaper reference (Table 2): res1 0.400 / res2 0.800 in all phases;\n"
      "best effort ~38.6; unauthentic Colibri fully filtered; overused\n"
      "reservation limited to its guarantee without harming reservation 2.\n");
  return 0;
}
