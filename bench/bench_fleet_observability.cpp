// Fleet-observability cost model: what federation and auditing add.
//
// Three questions, one per family:
//  - BM_FleetCollectorPoll: how long one fleet window costs as the
//    fleet grows (members x per-member reservation counters), including
//    the bounded-memory regime where the series budget forces drops.
//  - BM_ConservationAuditorPass: one full cross-AS conservation audit
//    over the 16-AS two-ISD bed with live reservations.
//  - BM_DataPlaneBare vs BM_DataPlaneWithCollector: the headline gate.
//    The collector rides the per-packet path only as a period check
//    (poll() early-returns inside the window; collection itself is
//    amortized once per period), so the with-collector throughput must
//    be ~1.0x of the bare data plane. The ratio row below is what
//    bench/baselines gates.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <memory>
#include <string>
#include <vector>

#include "colibri/app/session.hpp"
#include "colibri/app/testbed.hpp"
#include "colibri/telemetry/audit.hpp"
#include "colibri/telemetry/federation.hpp"

namespace {

using namespace colibri;

// --- fleet-window cost vs fleet size ------------------------------------

void BM_FleetCollectorPoll(benchmark::State& state) {
  const auto members = static_cast<std::size_t>(state.range(0));
  const auto res_per_member = static_cast<std::size_t>(state.range(1));

  SimClock clock(1'000 * kNsPerSec);
  std::vector<std::unique_ptr<telemetry::MetricsRegistry>> registries;
  registries.reserve(members);
  telemetry::FleetCollector collector(clock);
  for (std::size_t m = 0; m < members; ++m) {
    registries.push_back(std::make_unique<telemetry::MetricsRegistry>());
    collector.add_member("as-" + std::to_string(m), *registries.back());
  }
  collector.add_rollup("cserv.eer_granted");
  collector.add_rollup("res.");
  // Pre-populate the per-reservation counters so every poll scans the
  // full fleet; the default 65536-series budget makes the largest
  // config exercise the drop-and-count path.
  for (std::size_t m = 0; m < members; ++m) {
    for (std::size_t r = 0; r < res_per_member; ++r) {
      registries[m]->counter("res." + std::to_string(r) + ".bytes").inc(1);
    }
  }
  clock.advance(kNsPerSec);
  (void)collector.poll();  // baseline snapshot

  std::uint64_t rotor = 0;
  for (auto _ : state) {
    for (std::size_t m = 0; m < members; ++m) {
      registries[m]->counter("cserv.eer_granted").inc(1);
      registries[m]
          ->counter("res." + std::to_string(rotor % res_per_member) + ".bytes")
          .inc(1'000);
    }
    ++rotor;
    clock.advance(kNsPerSec);
    benchmark::DoNotOptimize(collector.poll());
  }
  state.counters["series_tracked"] =
      static_cast<double>(collector.tracked_series());
  state.counters["series_dropped"] =
      static_cast<double>(collector.dropped_series());
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * static_cast<std::int64_t>(members)));
}

BENCHMARK(BM_FleetCollectorPoll)
    ->ArgsProduct({{16, 128, 1024}, {16, 128}})
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(30);

// --- one conservation-audit pass over the two-ISD bed -------------------

void BM_ConservationAuditorPass(benchmark::State& state) {
  SimClock clock(1'000 * kNsPerSec);
  app::Testbed bed(topology::builders::two_isd_topology(), clock);
  bed.provision_all_segments(1'000, 2'000'000);
  std::vector<app::ReservationSession> sessions;
  const std::vector<AsId> srcs = {{1, 110}, {1, 111}, {1, 120}, {1, 121}};
  const std::vector<AsId> dsts = {{2, 210}, {2, 211}, {2, 220}, {2, 221}};
  for (std::size_t i = 0; i < srcs.size(); ++i) {
    auto r = bed.daemon(srcs[i]).open_session(
        dsts[i], HostAddr::from_u64(0xA0 + i), HostAddr::from_u64(0xB0 + i),
        1'000, 10'000);
    if (r) sessions.push_back(std::move(r.value()));
  }

  telemetry::ConservationAuditor auditor(clock);
  for (const AsId as : bed.topology().as_ids()) {
    auditor.add_target({as.to_string(), as, &bed.cserv(as).db(),
                        bed.cserv(as).eer_admission(),
                        &bed.topology().node(as)});
  }

  std::uint64_t checks = 0;
  for (auto _ : state) {
    const telemetry::AuditReport rep = auditor.run(clock.now_sec());
    checks += rep.checks;
    if (!rep.clean()) state.SkipWithError("clean bed reported violations");
  }
  state.counters["targets"] = static_cast<double>(auditor.target_count());
  state.SetItemsProcessed(static_cast<std::int64_t>(checks));
}

BENCHMARK(BM_ConservationAuditorPass)
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(500);

// --- data-plane overhead of carrying the collector ----------------------
//
// Both variants forward one packet per iteration over the session's
// real path with per-hop reservation accounting, advancing the sim
// clock 8 us per packet. The with-collector variant additionally calls
// poll() every packet against a 10 ms period: 1249 of every 1250 calls
// are the hot-path early return, the 1250th cuts and rolls up a real
// fleet window, so the measured gap is the honest amortized cost (a
// production 1 s period amortizes thousands of times wider still).

struct DataPlaneBed {
  SimClock clock{1'000 * kNsPerSec};
  app::Testbed bed;
  std::vector<app::ReservationSession> sessions;
  std::vector<std::vector<topology::Hop>> paths;
  std::vector<std::string> series;

  DataPlaneBed()
      : bed(topology::builders::two_isd_topology(), clock,
            cserv::CservConfig{}, [] {
              app::TestbedOptions o;
              o.per_as_metrics = true;
              return o;
            }()) {
    bed.provision_all_segments(1'000, 2'000'000);
    const std::vector<AsId> srcs = {{1, 110}, {1, 120}};
    const std::vector<AsId> dsts = {{2, 210}, {2, 220}};
    for (std::size_t i = 0; i < srcs.size(); ++i) {
      auto r = bed.daemon(srcs[i]).open_session(
          dsts[i], HostAddr::from_u64(0xA0 + i), HostAddr::from_u64(0xB0 + i),
          1'000, 2'000'000);
      if (!r) continue;
      const auto eer = bed.cserv(srcs[i]).db().eer_copy(r.value().key());
      if (!eer) continue;
      const ResId res_id = r.value().key().res_id;
      sessions.push_back(std::move(r.value()));
      paths.push_back(eer->path);
      series.push_back("res." + std::to_string(res_id) + ".bytes");
    }
  }

  // One packet on session `i`: gateway admit, per-hop forward plus
  // reservation accounting. Returns whether it survived every hop.
  bool forward(std::size_t i) {
    dataplane::FastPacket pkt;
    if (sessions[i].send(1'000, pkt) != dataplane::Gateway::Verdict::kOk) {
      return false;
    }
    for (const auto& hop : paths[i]) {
      const auto v = bed.router(hop.as).process(pkt);
      if (v != dataplane::BorderRouter::Verdict::kForward &&
          v != dataplane::BorderRouter::Verdict::kDeliver) {
        return false;
      }
      bed.as_metrics(hop.as)->counter(series[i]).inc(1'000);
    }
    return true;
  }
};

constexpr TimeNs kPacketGapNs = 8'000;  // 1000 B / 8 us = 1 Gbps offered

void BM_DataPlaneBare(benchmark::State& state) {
  DataPlaneBed d;
  if (d.sessions.empty()) {
    state.SkipWithError("no session opened");
    return;
  }
  std::uint64_t delivered = 0;
  std::uint64_t n = 0;
  for (auto _ : state) {
    d.clock.advance(kPacketGapNs);
    delivered += d.forward(n++ % d.sessions.size());
  }
  state.counters["delivered"] = static_cast<double>(delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  if (delivered == 0) state.SkipWithError("nothing delivered");
}

BENCHMARK(BM_DataPlaneBare)
    ->Unit(benchmark::kNanosecond)
    ->Iterations(100'000);

void BM_DataPlaneWithCollector(benchmark::State& state) {
  DataPlaneBed d;
  if (d.sessions.empty()) {
    state.SkipWithError("no session opened");
    return;
  }
  telemetry::FleetCollectorConfig fcfg;
  fcfg.period_ns = 10'000'000;  // one fleet window per 10 ms of sim time
  telemetry::FleetCollector collector(d.clock, fcfg);
  std::vector<AsId> ases = d.bed.topology().as_ids();
  for (const AsId as : ases) {
    collector.add_member(as.to_string(), *d.bed.as_metrics(as));
  }
  collector.add_rollup("router.forwarded");
  collector.add_rollup("res.");
  d.clock.advance(fcfg.period_ns);
  (void)collector.poll();  // baseline snapshot

  std::uint64_t delivered = 0;
  std::uint64_t n = 0;
  for (auto _ : state) {
    d.clock.advance(kPacketGapNs);
    delivered += d.forward(n++ % d.sessions.size());
    benchmark::DoNotOptimize(collector.poll());
  }
  state.counters["delivered"] = static_cast<double>(delivered);
  state.counters["fleet_windows"] =
      static_cast<double>(collector.windows_sampled());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  if (delivered == 0) state.SkipWithError("nothing delivered");
  if (collector.windows_sampled() == 0) {
    state.SkipWithError("collector never cut a window");
  }
}

BENCHMARK(BM_DataPlaneWithCollector)
    ->Unit(benchmark::kNanosecond)
    ->Iterations(100'000);

// The gated row: per-packet throughput with the collector over without.
// The acceptance band is ~1.0x — federation must not tax the data path.
const bool kRatioRegistered = colibri::benchjson::request_ratio(
    "fleet_collector_overhead", "BM_DataPlaneWithCollector",
    "BM_DataPlaneBare");

}  // namespace

COLIBRI_BENCH_MAIN(bench_fleet_observability);
