// Ablation: overuse-flow-detector sketch dimensions (§4.8).
//
// Sweeps sketch width/depth and reports (a) per-packet update cost and
// (b) detection quality on a mixed workload: how fast the single
// overuser is flagged and how many honest flows are false-positive
// promoted to the deterministic watchlist (false positives are benign —
// deterministic monitoring clears them — but each one costs watchlist
// memory, which is exactly the resource the sketch exists to save).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "colibri/common/rand.hpp"
#include "colibri/dataplane/ofd.hpp"

namespace {

using namespace colibri;
using dataplane::OfdConfig;
using dataplane::OverUseFlowDetector;

void BM_OfdUpdate(benchmark::State& state) {
  OfdConfig cfg;
  cfg.width = static_cast<size_t>(state.range(0));
  cfg.depth = static_cast<int>(state.range(1));
  OverUseFlowDetector ofd(cfg);
  Rng rng(1);
  TimeNs t = 0;
  const AsId src{1, 5};
  for (auto _ : state) {
    t += 1000;
    const ResId res = static_cast<ResId>(1 + rng.below(100'000));
    benchmark::DoNotOptimize(ofd.update(src, res, 1000, 1'000'000, t));
  }
  state.counters["width"] = static_cast<double>(cfg.width);
  state.counters["depth"] = cfg.depth;
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_OfdUpdate)
    ->ArgsProduct({{1 << 10, 1 << 12, 1 << 14, 1 << 16}, {2, 4, 8}});

void BM_OfdDetectionQuality(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  const int depth = static_cast<int>(state.range(1));

  std::uint64_t detect_packets_total = 0;
  std::uint64_t false_positives_total = 0;
  for (auto _ : state) {
    OfdConfig cfg;
    cfg.width = width;
    cfg.depth = depth;
    OverUseFlowDetector ofd(cfg);
    Rng rng(99);
    const AsId src{1, 5};
    constexpr int kHonest = 5000;   // 1 Mbps flows at their rate
    constexpr ResId kOveruser = 0x70000;  // 10x its 1 Mbps reservation
    TimeNs t = 0;
    std::uint64_t detect_at = 0;
    std::uint64_t packets = 0;
    while (detect_at == 0 && packets < 3'000'000) {
      t += 2000;
      ++packets;
      // 10 % of traffic is the overuser (it sends 10x as often as one
      // honest flow would).
      if (rng.below(10) == 0) {
        const auto v = ofd.update(src, kOveruser, 250, 1'000'000, t);
        if (v == OverUseFlowDetector::Verdict::kSuspicious) {
          detect_at = packets;
        }
      } else {
        const ResId res = static_cast<ResId>(1 + rng.below(kHonest));
        (void)ofd.update(src, res, 250, 1'000'000, t);
      }
    }
    detect_packets_total += detect_at;
    // Watchlist beyond the overuser = honest flows falsely promoted.
    false_positives_total += ofd.watchlist_size() > 0
                                 ? ofd.watchlist_size() - (detect_at ? 1 : 0)
                                 : 0;
  }
  state.counters["pkts_to_detect"] =
      static_cast<double>(detect_packets_total) /
      static_cast<double>(state.iterations());
  state.counters["false_positives"] =
      static_cast<double>(false_positives_total) /
      static_cast<double>(state.iterations());
  state.counters["sketch_KiB"] =
      static_cast<double>(width * static_cast<size_t>(depth) * sizeof(double)) /
      1024.0;
}

BENCHMARK(BM_OfdDetectionQuality)
    ->ArgsProduct({{1 << 10, 1 << 12, 1 << 14}, {2, 4}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace

COLIBRI_BENCH_MAIN(bench_ablation_ofd);
