// Ablation: gateway reservation-table implementation (§7.1 deploys DPDK's
// rte_hash; DESIGN.md §4.4 motivates the open-addressing table).
//
// Compares the flat open-addressing ResTable against std::unordered_map
// on the gateway's exact access pattern: random lookups over r live
// entries — the cache-miss regime that shapes Fig. 5's r-dependence.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <unordered_map>

#include "colibri/common/rand.hpp"
#include "colibri/dataplane/restable.hpp"

namespace {

using namespace colibri;
using dataplane::GatewayEntry;
using dataplane::ResTable;

void BM_ResTableLookup(benchmark::State& state) {
  const std::int64_t r = state.range(0);
  ResTable table(static_cast<size_t>(r));
  for (std::int64_t i = 1; i <= r; ++i) {
    GatewayEntry e;
    e.resinfo.res_id = static_cast<ResId>(i);
    table.insert(static_cast<ResId>(i), std::move(e));
  }
  Rng rng(1);
  for (auto _ : state) {
    const ResId id =
        static_cast<ResId>(1 + rng.below(static_cast<std::uint64_t>(r)));
    benchmark::DoNotOptimize(table.find(id));
  }
  state.counters["entries"] = static_cast<double>(r);
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_ResTableLookup)
    ->Arg(1 << 10)
    ->Arg(1 << 15)
    ->Arg(1 << 17)
    ->Arg(1 << 20);

void BM_UnorderedMapLookup(benchmark::State& state) {
  const std::int64_t r = state.range(0);
  std::unordered_map<ResId, GatewayEntry> table;
  table.reserve(static_cast<size_t>(r));
  for (std::int64_t i = 1; i <= r; ++i) {
    GatewayEntry e;
    e.resinfo.res_id = static_cast<ResId>(i);
    table.emplace(static_cast<ResId>(i), std::move(e));
  }
  Rng rng(1);
  for (auto _ : state) {
    const ResId id =
        static_cast<ResId>(1 + rng.below(static_cast<std::uint64_t>(r)));
    auto it = table.find(id);
    benchmark::DoNotOptimize(it);
  }
  state.counters["entries"] = static_cast<double>(r);
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_UnorderedMapLookup)
    ->Arg(1 << 10)
    ->Arg(1 << 15)
    ->Arg(1 << 17)
    ->Arg(1 << 20);

void BM_ResTableChurn(benchmark::State& state) {
  // Steady-state EER turnover: insert + erase at 2^15 live entries.
  constexpr std::int64_t kLive = 1 << 15;
  ResTable table(kLive);
  for (std::int64_t i = 1; i <= kLive; ++i) {
    table.insert(static_cast<ResId>(i), GatewayEntry{});
  }
  ResId next = kLive + 1;
  ResId oldest = 1;
  for (auto _ : state) {
    table.insert(next++, GatewayEntry{});
    table.erase(oldest++);
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_ResTableChurn);

}  // namespace

COLIBRI_BENCH_MAIN(bench_ablation_restable);
