// Ablation: queuing disciplines for traffic isolation (paper App. B).
//
// Strict priority (the default; safe because admission bounds Colibri
// traffic) vs. class-based weighted fair queuing vs. plain FIFO, under a
// best-effort flood: per-class delivery rates and — the part the paper's
// Table 2 does not show — Colibri-data latency, which is where strict
// priority earns its place.
#include <cstdio>

#include "bench_json.hpp"
#include "colibri/sim/cbwfq.hpp"

namespace {

using namespace colibri;
using namespace colibri::sim;

struct Result {
  double colibri_delivery = 0;
  double be_delivery = 0;
  double colibri_p50_us = 0;
  double colibri_p99_us = 0;
  double colibri_pkts_per_sec = 0;
};

template <typename Port>
Result run(Port& port, Simulator& sim) {
  std::vector<double> latencies;
  std::unordered_map<const void*, TimeNs> unused;

  // 2 Gbps Colibri data + 30 Gbps best effort into a 10 Gbps port.
  // Latency is tracked via the flow field (packet id).
  std::unordered_map<std::uint64_t, TimeNs> sent_at;
  std::uint64_t next_id = 1;
  port.set_sink([&](SimPacket&& pkt) {
    if (pkt.cls == TrafficClass::kColibriData) {
      auto it = sent_at.find(pkt.flow);
      if (it != sent_at.end()) {
        latencies.push_back(static_cast<double>(sim.now() - it->second) /
                            1000.0);
        sent_at.erase(it);
      }
    }
  });

  constexpr TimeNs kDuration = 50'000'000;
  for (TimeNs t = 0; t < kDuration; t += 4000) {  // 2 Gbps of 1000 B
    sim.at(t, [&port, &sent_at, &next_id, &sim] {
      SimPacket p;
      p.cls = TrafficClass::kColibriData;
      p.bytes = 1000;
      p.flow = next_id++;
      sent_at[p.flow] = sim.now();
      port.enqueue(std::move(p));
    });
  }
  for (TimeNs t = 0; t < kDuration; t += 266) {  // ~30 Gbps BE
    sim.at(t, [&port] {
      SimPacket p;
      p.cls = TrafficClass::kBestEffort;
      p.bytes = 1000;
      port.enqueue(std::move(p));
    });
  }
  sim.run_until(kDuration + 10'000'000);

  Result r;
  const auto& c = port.counters(TrafficClass::kColibriData);
  const auto& b = port.counters(TrafficClass::kBestEffort);
  r.colibri_delivery = static_cast<double>(c.sent_pkts) /
                       static_cast<double>(c.enqueued_pkts + c.dropped_pkts);
  r.be_delivery = static_cast<double>(b.sent_pkts) /
                  static_cast<double>(b.enqueued_pkts + b.dropped_pkts);
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    r.colibri_p50_us = latencies[latencies.size() / 2];
    r.colibri_p99_us = latencies[latencies.size() * 99 / 100];
  }
  r.colibri_pkts_per_sec =
      static_cast<double>(c.sent_pkts) / (kDuration / 1e9);
  return r;
}

}  // namespace

int main() {
  std::printf("Queuing-discipline ablation (App. B): 2 Gbps Colibri data +\n"
              "30 Gbps best effort into a 10 Gbps port, 1 MiB buffers\n\n");
  std::printf("%-18s %18s %18s %16s\n", "discipline", "colibri delivery",
              "best-effort del.", "colibri p99 [us]");

  // ops/s = Colibri packets delivered per second; p50/p99 = queuing latency.
  colibri::benchjson::ManualBench json("bench_ablation_qdisc");
  const auto report = [&json](const char* name, const Result& r) {
    std::printf("%-18s %17.1f%% %17.1f%% %16.1f\n", name,
                r.colibri_delivery * 100, r.be_delivery * 100,
                r.colibri_p99_us);
    json.add(name, r.colibri_pkts_per_sec, r.colibri_p50_us * 1e3,
             r.colibri_p99_us * 1e3);
  };

  {
    Simulator sim;
    PriorityPort port(sim, 10e9, 1 << 20);
    report("strict priority", run(port, sim));
  }
  {
    Simulator sim;
    CbwfqPort port(sim, 10e9, CbwfqWeights{0.75, 0.05, 0.20}, 1 << 20);
    report("CBWFQ 75/5/20", run(port, sim));
  }
  {
    Simulator sim;
    FifoPort port(sim, 10e9, 1 << 20);
    report("FIFO (baseline)", run(port, sim));
  }
  std::printf("\nExpected shape: both Colibri-aware disciplines deliver all\n"
              "Colibri data; strict priority gives the lowest latency; FIFO\n"
              "drops Colibri packets once the shared queue fills.\n");
  return 0;
}
