// Figure 6: gateway and border-router forwarding vs. number of cores
// {1, 2, 4, 8, 16}; paper shows near-linear scaling (BR ≈ 2.15 Mpps/core,
// GW with 4 ASes / 2^15 reservations ≈ 1.17 Mpps/core; 34.4 Mpps at 16
// cores ≈ 312 Gbps at 1000 B payloads — the §7.2 headline).
//
// Per-packet work is embarrassingly parallel: each thread runs its own
// router (stateless) or gateway shard (the paper: "multiple gateways,
// each handling only a fraction of all reservations"). NOTE: this
// container exposes a single CPU; thread counts beyond the hardware
// parallelism time-slice one core, so aggregate Mpps saturates instead of
// scaling — per-core rates and the BR/GW ratio remain meaningful (see
// EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <map>
#include <memory>
#include <thread>

#include "colibri/common/rand.hpp"
#include "colibri/dataplane/gateway.hpp"
#include "colibri/dataplane/router.hpp"

namespace {

using namespace colibri;
using dataplane::BorderRouter;
using dataplane::FastPacket;
using dataplane::Gateway;

SystemClock g_clock;
constexpr int kPathLen = 4;

std::vector<topology::Hop> make_path() {
  std::vector<topology::Hop> path;
  for (int i = 0; i < kPathLen; ++i) {
    path.push_back(topology::Hop{AsId{1, static_cast<std::uint64_t>(100 + i)},
                                 static_cast<IfId>(i == 0 ? 0 : 1),
                                 static_cast<IfId>(i + 1 == kPathLen ? 0 : 2)});
  }
  return path;
}

drkey::Key128 router_key() {
  drkey::Key128 k;
  k.bytes.fill(0x5A);
  return k;
}

// Per-thread gateway shards, built once per r.
Gateway& gateway_shard(std::int64_t r, int thread_index) {
  static std::mutex mu;
  static std::map<std::pair<std::int64_t, int>, std::unique_ptr<Gateway>>
      cache;
  std::lock_guard<std::mutex> lock(mu);
  auto key = std::make_pair(r, thread_index);
  auto it = cache.find(key);
  if (it != cache.end()) return *it->second;

  dataplane::GatewayConfig cfg;
  cfg.expected_reservations = static_cast<size_t>(r);
  auto gw = std::make_unique<Gateway>(AsId{1, 100}, g_clock, cfg);
  const auto path = make_path();
  Rng rng(static_cast<std::uint64_t>(r) * 7 + thread_index);
  proto::EerInfo eerinfo;
  std::vector<dataplane::HopAuth> sigmas(kPathLen);
  for (std::int64_t i = 0; i < r; ++i) {
    proto::ResInfo ri;
    ri.src_as = AsId{1, 100};
    ri.res_id = static_cast<ResId>(i + 1);
    ri.bw_kbps = 0xFFFF'FFFF;
    ri.exp_time = g_clock.now_sec() + 100'000;
    for (auto& s : sigmas) rng.fill(s.data(), s.size());
    gw->install(ri, eerinfo, path, sigmas);
  }
  auto [ins, _] = cache.emplace(key, std::move(gw));
  return *ins->second;
}

void BM_GatewayMulticore(benchmark::State& state) {
  const std::int64_t r = state.range(0);
  // The paper scales the gateway out by splitting the reservation set
  // across instances ("multiple gateways, each handling only a fraction
  // of all reservations"); each thread owns a shard of r/threads.
  const std::int64_t shard_r = std::max<std::int64_t>(1, r / state.threads());
  Gateway& gw = gateway_shard(shard_r, state.thread_index());
  Rng rng(static_cast<std::uint64_t>(state.thread_index()) + 1);
  FastPacket pkt;
  std::uint64_t processed = 0;
  for (auto _ : state) {
    const ResId id =
        static_cast<ResId>(1 + rng.below(static_cast<std::uint64_t>(shard_r)));
    benchmark::DoNotOptimize(gw.process(id, 0, pkt));
    ++processed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  state.counters["reservations(r)"] = static_cast<double>(r);
  state.counters["Mpps_total"] =
      benchmark::Counter(static_cast<double>(processed) / 1e6,
                         benchmark::Counter::kIsRate);
}

BENCHMARK(BM_GatewayMulticore)
    ->ArgsProduct({{1, 1 << 10, 1 << 15, 1 << 17, 1 << 20}})
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Threads(16)
    ->UseRealTime();

// Border router: fully stateless; one instance per thread.
void BM_RouterMulticore(benchmark::State& state) {
  thread_local std::unique_ptr<BorderRouter> router;
  thread_local std::vector<FastPacket> pkts;
  if (!router) {
    router = std::make_unique<BorderRouter>(AsId{1, 101}, router_key(),
                                            g_clock);
    // Pre-authenticated packets at hop 1 (a transit AS), refreshed each
    // pass by resetting the cursor.
    const auto path = make_path();
    crypto::Aes128 cipher(router_key().bytes.data());
    Rng rng(9);
    pkts.resize(1024);
    for (auto& pkt : pkts) {
      pkt.is_eer = true;
      pkt.num_hops = kPathLen;
      pkt.current_hop = 1;
      pkt.resinfo.src_as = AsId{1, 100};
      pkt.resinfo.res_id = static_cast<ResId>(1 + rng.below(1 << 20));
      pkt.resinfo.bw_kbps = 1'000'000;
      pkt.resinfo.exp_time = g_clock.now_sec() + 100'000;
      pkt.eerinfo.src_host = HostAddr::from_u64(rng.next());
      pkt.eerinfo.dst_host = HostAddr::from_u64(rng.next());
      pkt.timestamp = static_cast<std::uint32_t>(rng.next());
      for (int i = 0; i < kPathLen; ++i) {
        pkt.ifaces[i] = dataplane::IfPair{path[i].ingress, path[i].egress};
      }
      const auto sigma = dataplane::compute_hopauth(
          cipher, pkt.resinfo, pkt.eerinfo, pkt.ifaces[1].in,
          pkt.ifaces[1].eg);
      pkt.hvfs[1] =
          dataplane::compute_data_hvf(sigma, pkt.timestamp, pkt.wire_size());
    }
  }

  std::uint64_t processed = 0;
  size_t i = 0;
  for (auto _ : state) {
    FastPacket& pkt = pkts[i & 1023];
    pkt.current_hop = 1;  // reset cursor consumed by process()
    benchmark::DoNotOptimize(router->process(pkt));
    ++i;
    ++processed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  state.counters["Mpps_total"] =
      benchmark::Counter(static_cast<double>(processed) / 1e6,
                         benchmark::Counter::kIsRate);
  // §7.2: Gbps when forwarding 1000 B-payload packets at this rate.
  const FastPacket ref = pkts[0];
  FastPacket sized = ref;
  sized.payload_bytes = 1000;
  state.counters["Gbps_at_1000B"] = benchmark::Counter(
      static_cast<double>(processed) * sized.wire_size() * 8.0 / 1e9,
      benchmark::Counter::kIsRate);
}

BENCHMARK(BM_RouterMulticore)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Threads(16)
    ->UseRealTime();

}  // namespace

COLIBRI_BENCH_MAIN(bench_fig6_multicore);
