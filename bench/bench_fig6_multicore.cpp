// Figure 6: gateway and border-router forwarding vs. number of cores
// {1, 2, 4, 8, 16}; paper shows near-linear scaling (BR ≈ 2.15 Mpps/core,
// GW with 4 ASes / 2^15 reservations ≈ 1.17 Mpps/core; 34.4 Mpps at 16
// cores ≈ 312 Gbps at 1000 B payloads — the §7.2 headline).
//
// Per-packet work is embarrassingly parallel: each thread runs its own
// router (stateless) or gateway shard (the paper: "multiple gateways,
// each handling only a fraction of all reservations"). The gateway side
// uses the library's ShardedGateway — install() hash-routes each
// reservation to its shard, and every benchmark thread drives the shard
// whose reservation subset it owns — plus BM_ShardedRuntime for the
// full submit/ring/worker path of ShardedGatewayRuntime. NOTE: this
// container exposes a single CPU; thread counts beyond the hardware
// parallelism time-slice one core, so aggregate Mpps saturates instead of
// scaling — per-core rates and the BR/GW ratio remain meaningful (see
// EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "colibri/common/rand.hpp"
#include "colibri/dataplane/batch.hpp"
#include "colibri/dataplane/gateway.hpp"
#include "colibri/dataplane/router.hpp"
#include "colibri/dataplane/shard.hpp"

namespace {

using namespace colibri;
using dataplane::BorderRouter;
using dataplane::FastPacket;
using dataplane::Gateway;
using dataplane::ShardedGateway;

SystemClock g_clock;
constexpr int kPathLen = 4;

std::vector<topology::Hop> make_path() {
  std::vector<topology::Hop> path;
  for (int i = 0; i < kPathLen; ++i) {
    path.push_back(topology::Hop{AsId{1, static_cast<std::uint64_t>(100 + i)},
                                 static_cast<IfId>(i == 0 ? 0 : 1),
                                 static_cast<IfId>(i + 1 == kPathLen ? 0 : 2)});
  }
  return path;
}

drkey::Key128 router_key() {
  drkey::Key128 k;
  k.bytes.fill(0x5A);
  return k;
}

// r reservations hash-distributed over `shards` gateways; built once per
// (r, shards) configuration and reused across repetitions. The mutex
// only guards construction — the benchmark hot paths never take it.
ShardedGateway& sharded_for(std::int64_t r, size_t shards) {
  static std::mutex mu;
  static std::map<std::pair<std::int64_t, size_t>,
                  std::unique_ptr<ShardedGateway>>
      cache;
  std::lock_guard<std::mutex> lock(mu);
  auto key = std::make_pair(r, shards);
  auto it = cache.find(key);
  if (it != cache.end()) return *it->second;

  dataplane::GatewayConfig cfg;
  cfg.expected_reservations =
      static_cast<size_t>(r) / shards + 1;  // per-shard sizing
  auto sg = std::make_unique<ShardedGateway>(AsId{1, 100}, g_clock, shards,
                                             cfg, nullptr);
  const auto path = make_path();
  Rng rng(static_cast<std::uint64_t>(r) * 7 + shards);
  proto::EerInfo eerinfo;
  std::vector<dataplane::HopAuth> sigmas(kPathLen);
  for (std::int64_t i = 0; i < r; ++i) {
    proto::ResInfo ri;
    ri.src_as = AsId{1, 100};
    ri.res_id = static_cast<ResId>(i + 1);
    ri.bw_kbps = 0xFFFF'FFFF;
    ri.exp_time = g_clock.now_sec() + 100'000;
    for (auto& s : sigmas) rng.fill(s.data(), s.size());
    sg->install(ri, eerinfo, path, sigmas);
  }
  auto [ins, _] = cache.emplace(key, std::move(sg));
  return *ins->second;
}

// Random ids from [1, r] that land on shard `t` of `shards` — the
// subset of the worst-case id stream a shard's owning thread sees.
std::vector<ResId> shard_local_ids(std::int64_t r, size_t shards, size_t t,
                                   size_t count) {
  Rng rng(static_cast<std::uint64_t>(t) * 1000003 + shards);
  std::vector<ResId> ids;
  ids.reserve(count);
  while (ids.size() < count) {
    const auto id =
        static_cast<ResId>(1 + rng.below(static_cast<std::uint64_t>(r)));
    if (ShardedGateway::shard_of(id, shards) == t) ids.push_back(id);
  }
  return ids;
}

void BM_GatewayMulticore(benchmark::State& state) {
  const std::int64_t r = state.range(0);
  // One ShardedGateway with threads() shards; thread t drives exactly
  // the shard whose reservation subset the hash assigns it, so the hot
  // path is the unmodified single-gateway fast path on private state.
  const auto shards = static_cast<size_t>(state.threads());
  const auto t = static_cast<size_t>(state.thread_index());
  ShardedGateway& sg = sharded_for(r, shards);
  Gateway& gw = sg.shard(t);
  const auto ids = shard_local_ids(r, shards, t, 1 << 14);

  FastPacket pkt;
  size_t i = 0;
  std::uint64_t processed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gw.process(ids[i & (ids.size() - 1)], 0, pkt));
    ++i;
    ++processed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  state.counters["reservations(r)"] = static_cast<double>(r);
  state.counters["Mpps_total"] =
      benchmark::Counter(static_cast<double>(processed) / 1e6,
                         benchmark::Counter::kIsRate);
}

// r = 1 is omitted: a single hash-routed reservation lives on one
// shard, so every other thread would have nothing to forward.
BENCHMARK(BM_GatewayMulticore)
    ->ArgsProduct({{1 << 10, 1 << 15, 1 << 17, 1 << 20}})
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Threads(16)
    ->UseRealTime();

// End-to-end ShardedGatewayRuntime path: one producer (the benchmark
// thread) routes random-id requests onto the per-shard SPSC rings;
// worker threads drain them through the staged batch pipeline. Measures
// the full submit -> ring -> process_batch engine, including routing
// and ring back-pressure.
void BM_ShardedRuntime(benchmark::State& state) {
  const std::int64_t r = state.range(0);
  const auto workers = static_cast<size_t>(state.range(1));
  ShardedGateway& sg = sharded_for(r, workers);
  dataplane::ShardedGatewayRuntime rt(sg, 4096);
  rt.start();

  Rng rng(7);
  constexpr size_t kBurst = 64;
  dataplane::ShardRequest reqs[kBurst];
  std::uint64_t submitted = 0;
  for (auto _ : state) {
    for (auto& q : reqs) {
      q.id = static_cast<ResId>(1 + rng.below(static_cast<std::uint64_t>(r)));
      q.payload_bytes = 0;
    }
    size_t done = 0;
    while (done < kBurst) {
      done += rt.submit_burst(reqs + done, kBurst - done);
    }
    submitted += kBurst;
  }
  rt.drain();
  rt.stop();
  state.SetItemsProcessed(static_cast<std::int64_t>(submitted));
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["reservations(r)"] = static_cast<double>(r);
  state.counters["Mpps_total"] =
      benchmark::Counter(static_cast<double>(submitted) / 1e6,
                         benchmark::Counter::kIsRate);
}

BENCHMARK(BM_ShardedRuntime)
    ->ArgsProduct({{1 << 15}, {1, 2, 4, 8, 16}});

// A transit-hop packet carrying a valid HVF for hop 1 under `cipher`.
FastPacket make_router_packet(Rng& rng, const crypto::Aes128& cipher,
                              const std::vector<topology::Hop>& path) {
  FastPacket pkt;
  pkt.is_eer = true;
  pkt.num_hops = kPathLen;
  pkt.current_hop = 1;
  pkt.resinfo.src_as = AsId{1, 100};
  pkt.resinfo.res_id = static_cast<ResId>(1 + rng.below(1 << 20));
  pkt.resinfo.bw_kbps = 1'000'000;
  pkt.resinfo.exp_time = g_clock.now_sec() + 100'000;
  pkt.eerinfo.src_host = HostAddr::from_u64(rng.next());
  pkt.eerinfo.dst_host = HostAddr::from_u64(rng.next());
  pkt.timestamp = static_cast<std::uint32_t>(rng.next());
  for (int i = 0; i < kPathLen; ++i) {
    pkt.ifaces[i] = dataplane::IfPair{path[i].ingress, path[i].egress};
  }
  const auto sigma = dataplane::compute_hopauth(
      cipher, pkt.resinfo, pkt.eerinfo, pkt.ifaces[1].in, pkt.ifaces[1].eg);
  pkt.hvfs[1] =
      dataplane::compute_data_hvf(sigma, pkt.timestamp, pkt.wire_size());
  return pkt;
}

// Border router: fully stateless; one instance per thread.
void BM_RouterMulticore(benchmark::State& state) {
  thread_local std::unique_ptr<BorderRouter> router;
  thread_local std::vector<FastPacket> pkts;
  if (!router) {
    router = std::make_unique<BorderRouter>(AsId{1, 101}, router_key(),
                                            g_clock);
    // Pre-authenticated packets at hop 1 (a transit AS), refreshed each
    // pass by resetting the cursor.
    const auto path = make_path();
    crypto::Aes128 cipher(router_key().bytes.data());
    Rng rng(9);
    pkts.resize(1024);
    for (auto& pkt : pkts) pkt = make_router_packet(rng, cipher, path);
  }

  std::uint64_t processed = 0;
  size_t i = 0;
  for (auto _ : state) {
    FastPacket& pkt = pkts[i & 1023];
    pkt.current_hop = 1;  // reset cursor consumed by process()
    benchmark::DoNotOptimize(router->process(pkt));
    ++i;
    ++processed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  state.counters["Mpps_total"] =
      benchmark::Counter(static_cast<double>(processed) / 1e6,
                         benchmark::Counter::kIsRate);
  // §7.2: Gbps when forwarding 1000 B-payload packets at this rate.
  const FastPacket ref = pkts[0];
  FastPacket sized = ref;
  sized.payload_bytes = 1000;
  state.counters["Gbps_at_1000B"] = benchmark::Counter(
      static_cast<double>(processed) * sized.wire_size() * 8.0 / 1e9,
      benchmark::Counter::kIsRate);
}

BENCHMARK(BM_RouterMulticore)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Threads(16)
    ->UseRealTime();

// Same pre-authenticated packet mix through the staged batch pipeline:
// one full PacketBatch per iteration, cursors reset between passes. The
// derived router_batched_over_scalar/<threads> JSON rows record the
// speedup over the scalar BM_RouterMulticore at the same thread count.
void BM_RouterMulticoreBatched(benchmark::State& state) {
  thread_local std::unique_ptr<BorderRouter> router;
  thread_local std::unique_ptr<dataplane::PacketBatch> batch;
  if (!router) {
    router = std::make_unique<BorderRouter>(AsId{1, 101}, router_key(),
                                            g_clock);
    const auto path = make_path();
    crypto::Aes128 cipher(router_key().bytes.data());
    Rng rng(9);
    batch = std::make_unique<dataplane::PacketBatch>();
    while (!batch->full()) {
      batch->push(make_router_packet(rng, cipher, path));
    }
  }

  BorderRouter::Verdict verdicts[dataplane::PacketBatch::kCapacity];
  std::uint64_t processed = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < batch->size; ++i) (*batch)[i].current_hop = 1;
    router->process_batch(*batch, verdicts);
    benchmark::DoNotOptimize(verdicts[0]);
    processed += batch->size;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
  state.counters["Mpps_total"] =
      benchmark::Counter(static_cast<double>(processed) / 1e6,
                         benchmark::Counter::kIsRate);
}

BENCHMARK(BM_RouterMulticoreBatched)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Threads(16)
    ->UseRealTime();

[[maybe_unused]] const bool kRatioRows = benchjson::request_ratio(
    "router_batched_over_scalar", "BM_RouterMulticoreBatched",
    "BM_RouterMulticore");

}  // namespace

COLIBRI_BENCH_MAIN(bench_fig6_multicore);
