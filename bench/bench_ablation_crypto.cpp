// Ablation: crypto primitive choices behind the data-plane numbers.
//
// (a) AES-NI vs. portable AES — quantifies how much of the Mpps headroom
//     comes from hardware AES (the paper's "native hardware-accelerated
//     instructions", §7.1);
// (b) CBC-MAC (paper's choice) vs. CMAC (subkey masking) on the actual
//     HVF input sizes;
// (c) the full per-packet crypto budgets of the gateway (Eq. 6 only,
//     h = 4 hops) and the border router (Eq. 4 + Eq. 6).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "colibri/common/rand.hpp"
#include "colibri/crypto/cbcmac.hpp"
#include "colibri/crypto/cmac.hpp"
#include "colibri/dataplane/hvf.hpp"

namespace {

using namespace colibri;
using crypto::Aes128;

void BM_AesBlock(benchmark::State& state) {
  const bool portable = state.range(0) != 0;
  Aes128::set_force_portable(portable);
  std::uint8_t key[16], block[16];
  Rng rng(1);
  rng.fill(key, 16);
  rng.fill(block, 16);
  Aes128 aes(key);
  for (auto _ : state) {
    aes.encrypt_block(block, block);
    benchmark::DoNotOptimize(block[0]);
  }
  Aes128::set_force_portable(false);
  state.SetLabel(portable ? "portable" : "aesni-if-available");
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_AesBlock)->Arg(0)->Arg(1);

void BM_AesKeyExpansion(benchmark::State& state) {
  // The router/gateway expand σ_i's schedule per packet per hop; this is
  // the non-AES-NI part of the per-packet budget.
  std::uint8_t key[16];
  Rng rng(2);
  rng.fill(key, 16);
  Aes128 aes;
  for (auto _ : state) {
    aes.set_key(key);
    benchmark::DoNotOptimize(aes.round_keys()[0]);
    ++key[0];
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_AesKeyExpansion);

template <size_t N>
void mac_input(Rng& rng, std::uint8_t (&buf)[N]) {
  rng.fill(buf, N);
}

void BM_CbcMacHopAuthInput(benchmark::State& state) {
  // Eq. 4 input: 57 bytes -> 4 CBC blocks. The router's main cost.
  std::uint8_t key[16];
  Rng rng(3);
  rng.fill(key, 16);
  Aes128 aes(key);
  std::uint8_t msg[proto::kHopAuthInputLen];
  mac_input(rng, msg);
  std::uint8_t out[16];
  for (auto _ : state) {
    dataplane::cbcmac_fixed(aes, msg, sizeof(msg), out);
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_CbcMacHopAuthInput);

void BM_CmacHopAuthInput(benchmark::State& state) {
  std::uint8_t key[16];
  Rng rng(4);
  rng.fill(key, 16);
  crypto::Cmac cmac(key);
  std::uint8_t msg[proto::kHopAuthInputLen];
  mac_input(rng, msg);
  std::uint8_t out[16];
  for (auto _ : state) {
    cmac.compute(msg, sizeof(msg), out);
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_CmacHopAuthInput);

void BM_LengthPrefixedCbcMac(benchmark::State& state) {
  std::uint8_t key[16];
  Rng rng(5);
  rng.fill(key, 16);
  crypto::CbcMac mac(key);
  std::uint8_t msg[proto::kHopAuthInputLen];
  mac_input(rng, msg);
  std::uint8_t out[16];
  for (auto _ : state) {
    mac.compute(msg, sizeof(msg), out);
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_LengthPrefixedCbcMac);

// Gateway per-packet crypto with h stored hop authenticators: h x
// (key schedule + 1 AES block), Eq. 6.
void BM_GatewayCryptoBudget(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  Rng rng(6);
  std::vector<dataplane::HopAuth> sigmas(static_cast<size_t>(hops));
  for (auto& s : sigmas) rng.fill(s.data(), s.size());
  std::uint32_t ts = 1;
  for (auto _ : state) {
    for (const auto& sigma : sigmas) {
      auto v = dataplane::compute_data_hvf(sigma, ts, 1000);
      benchmark::DoNotOptimize(v);
    }
    ++ts;
  }
  state.counters["hops"] = hops;
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_GatewayCryptoBudget)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// Router per-packet crypto: recreate σ_i (Eq. 4, 4 CBC blocks) + derive
// the per-packet HVF (Eq. 6, key schedule + 1 block).
void BM_RouterCryptoBudget(benchmark::State& state) {
  Rng rng(7);
  std::uint8_t key[16];
  rng.fill(key, 16);
  Aes128 hop_cipher(key);
  proto::ResInfo ri;
  ri.src_as = AsId{1, 1};
  ri.res_id = 1;
  proto::EerInfo ei;
  std::uint32_t ts = 1;
  for (auto _ : state) {
    const auto sigma = dataplane::compute_hopauth(hop_cipher, ri, ei, 1, 2);
    auto v = dataplane::compute_data_hvf(sigma, ts, 1000);
    benchmark::DoNotOptimize(v);
    ++ts;
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_RouterCryptoBudget);

}  // namespace

COLIBRI_BENCH_MAIN(bench_ablation_crypto);
